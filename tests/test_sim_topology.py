"""Topology data structure: validation, transforms, graph exports."""

import networkx as nx
import numpy as np
import pytest

from repro.simulator import Topology, initial_topology


@pytest.fixture
def topo():
    # 8 hosts: brokers {0, 1}, workers round-robin.
    return initial_topology(8, 2)


class TestValidation:
    def test_requires_broker(self):
        with pytest.raises(ValueError):
            Topology(4, brokers=[], assignment={})

    def test_rejects_out_of_range_broker(self):
        with pytest.raises(ValueError):
            Topology(4, brokers=[9], assignment={})

    def test_rejects_worker_as_broker(self):
        with pytest.raises(ValueError):
            Topology(4, brokers=[0], assignment={0: 0})

    def test_rejects_assignment_to_non_broker(self):
        with pytest.raises(ValueError):
            Topology(4, brokers=[0], assignment={1: 2})

    def test_rejects_out_of_range_worker(self):
        with pytest.raises(ValueError):
            Topology(4, brokers=[0], assignment={7: 0})


class TestViews:
    def test_initial_symmetric(self, topo):
        sizes = topo.lei_sizes()
        assert sizes == {0: 3, 1: 3}

    def test_workers_sorted(self, topo):
        assert topo.workers == (2, 3, 4, 5, 6, 7)

    def test_attached_and_unattached(self, topo):
        assert topo.attached == frozenset(range(8))
        assert topo.unattached == ()
        detached = topo.detach(5)
        assert detached.unattached == (5,)

    def test_lei_members(self, topo):
        assert set(topo.lei(0)) | set(topo.lei(1)) == set(range(2, 8))
        with pytest.raises(KeyError):
            topo.lei(5)

    def test_broker_of(self, topo):
        assert topo.broker_of(0) == 0
        worker = topo.workers[0]
        assert topo.broker_of(worker) == topo.assignment[worker]
        with pytest.raises(KeyError):
            topo.detach(7).broker_of(7)


class TestTransforms:
    def test_detach_worker(self, topo):
        result = topo.detach(7)
        assert 7 not in result.attached
        assert result.n_hosts == topo.n_hosts

    def test_detach_broker_orphans_workers(self, topo):
        orphans = topo.lei(1)
        result = topo.detach(1)
        assert 1 not in result.brokers
        for orphan in orphans:
            assert orphan not in result.attached

    def test_detach_unattached_noop(self, topo):
        result = topo.detach(7)
        assert result.detach(7) is result

    def test_attach_worker(self, topo):
        result = topo.detach(7).attach_worker(7, 0)
        assert result.assignment[7] == 0

    def test_attach_rejects_attached(self, topo):
        with pytest.raises(ValueError):
            topo.attach_worker(7, 0)

    def test_promote_worker(self, topo):
        result = topo.promote(7)
        assert 7 in result.brokers
        assert 7 not in result.assignment

    def test_promote_rejects_broker(self, topo):
        with pytest.raises(ValueError):
            topo.promote(0)

    def test_demote_moves_lei(self, topo):
        lei_before = topo.lei(1)
        result = topo.demote(1, 0)
        assert 1 not in result.brokers
        assert result.assignment[1] == 0
        for worker in lei_before:
            assert result.assignment[worker] == 0

    def test_demote_rejects_self(self, topo):
        with pytest.raises(ValueError):
            topo.demote(0, 0)

    def test_reassign(self, topo):
        worker = topo.lei(0)[0]
        result = topo.reassign(worker, 1)
        assert result.assignment[worker] == 1

    def test_reassign_rejects_non_worker(self, topo):
        with pytest.raises(KeyError):
            topo.reassign(0, 1)

    def test_transforms_are_pure(self, topo):
        before = topo.canonical_key()
        topo.detach(7)
        topo.promote(7)
        topo.reassign(7, 1)
        assert topo.canonical_key() == before


class TestGraph:
    def test_adjacency_symmetric(self, topo):
        adjacency = topo.adjacency()
        np.testing.assert_array_equal(adjacency, adjacency.T)

    def test_broker_clique(self):
        topo = initial_topology(9, 3)
        adjacency = topo.adjacency()
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert adjacency[a, b] == 1.0

    def test_worker_connects_only_to_broker(self, topo):
        adjacency = topo.adjacency()
        for worker, broker in topo.assignment.items():
            assert adjacency[worker, broker] == 1.0
            assert adjacency[worker].sum() == 1.0

    def test_unattached_isolated(self, topo):
        adjacency = topo.detach(7).adjacency()
        assert adjacency[7].sum() == 0.0

    def test_networkx_roles(self, topo):
        graph = topo.detach(7).to_networkx()
        assert graph.nodes[0]["role"] == "broker"
        assert graph.nodes[2]["role"] == "worker"
        assert graph.nodes[7]["role"] == "unattached"
        assert graph.number_of_nodes() == 8

    def test_networkx_connected_when_full(self, topo):
        graph = topo.to_networkx()
        assert nx.is_connected(graph)


class TestIdentity:
    def test_equal_topologies_hash_equal(self, topo):
        clone = Topology(topo.n_hosts, topo.brokers, topo.assignment)
        assert topo == clone
        assert hash(topo) == hash(clone)
        assert topo.canonical_key() == clone.canonical_key()

    def test_different_assignment_not_equal(self, topo):
        worker = topo.lei(0)[0]
        assert topo != topo.reassign(worker, 1)


class TestInitialTopology:
    def test_paper_shape(self):
        topo = initial_topology(16, 4)
        assert sorted(topo.brokers) == [0, 1, 2, 3]
        assert set(topo.lei_sizes().values()) == {3}

    def test_rejects_too_many_leis(self):
        with pytest.raises(ValueError):
            initial_topology(4, 3)
