"""Module system, layers, optimisers, init and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    FeedForward,
    LeakyReLU,
    Linear,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    clip_grad_norm,
    load_state,
    mse_loss,
    save_state,
)
from repro.nn import init as nn_init


class TestModuleSystem:
    def test_named_parameters_paths(self, rng):
        layer = Linear(3, 2, rng)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["bias", "weight"]

    def test_nested_module_discovery(self, rng):
        seq = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 2, rng))
        names = {name for name, _ in seq.named_parameters()}
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(seq.parameters()) == 4

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 3, rng)
        b = Linear(3, 3, np.random.default_rng(99))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_load_state_dict_rejects_missing_key(self, rng):
        layer = Linear(2, 2, rng)
        state = layer.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self, rng):
        layer = Linear(2, 2, rng)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_zero_grad_clears_all(self, rng):
        layer = Linear(2, 2, rng)
        mse_loss(layer(Tensor(np.ones((4, 2)))), np.zeros((4, 2))).backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Dropout(0.5, rng), Linear(2, 2, rng))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_parameter_count_and_memory(self, rng):
        layer = Linear(10, 5, rng)
        assert layer.parameter_count() == 55
        assert layer.memory_bytes() == 3 * 55 * 8


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 7, rng)
        assert layer(Tensor(np.ones((3, 4)))).shape == (3, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_affine_correct(self, rng):
        layer = Linear(2, 1, rng)
        layer.weight.data = np.array([[2.0], [3.0]])
        layer.bias.data = np.array([1.0])
        out = layer(Tensor(np.array([[1.0, 1.0]])))
        assert out.data.item() == pytest.approx(6.0)


class TestFeedForward:
    def test_depth_one(self, rng):
        net = FeedForward(3, 2, rng, layers=1)
        assert net(Tensor(np.ones(3))).shape == (2,)

    def test_hidden_width(self, rng):
        net = FeedForward(3, 2, rng, hidden=16, layers=3)
        assert net.blocks[0].out_features == 16
        assert net.blocks[1].in_features == 16

    def test_final_sigmoid_bounds(self, rng):
        net = FeedForward(3, 1, rng, layers=2, final_activation="sigmoid")
        out = net(Tensor(np.full(3, 100.0)))
        assert 0.0 <= out.data.item() <= 1.0

    def test_rejects_zero_layers(self, rng):
        with pytest.raises(ValueError):
            FeedForward(3, 2, rng, layers=0)

    def test_unknown_activation(self, rng):
        net = FeedForward(3, 2, rng, layers=2, activation="bogus")
        with pytest.raises(ValueError):
            net(Tensor(np.ones(3)))


class TestActivationsAndDropout:
    def test_leaky_relu_negative_slope(self):
        layer = LeakyReLU(0.1)
        out = layer(Tensor(np.array([-10.0, 10.0])))
        np.testing.assert_allclose(out.data, [-1.0, 10.0])

    def test_sigmoid_tanh_layers(self):
        assert Sigmoid()(Tensor(np.zeros(1))).data.item() == pytest.approx(0.5)
        assert Tanh()(Tensor(np.zeros(1))).data.item() == pytest.approx(0.0)

    def test_dropout_eval_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = np.ones((10, 10))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_dropout_train_zeroes_and_scales(self, rng):
        layer = Dropout(0.5, rng)
        out = layer(Tensor(np.ones((100, 100)))).data
        zero_fraction = float((out == 0).mean())
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_dropout_rejects_p_one(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestOptimisers:
    def _fit(self, optimizer_cls, **kwargs):
        rng = np.random.default_rng(0)
        layer = Linear(1, 1, rng)
        opt = optimizer_cls(layer.parameters(), **kwargs)
        x = rng.normal(size=(32, 1))
        y = 3.0 * x - 1.0
        for _ in range(400):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(x)), y)
            loss.backward()
            opt.step()
        return float(loss.data)

    def test_sgd_converges(self):
        assert self._fit(SGD, lr=0.05) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._fit(SGD, lr=0.02, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert self._fit(Adam, lr=0.05, weight_decay=0.0) < 1e-3

    def test_adam_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        opt = Adam([param], lr=0.1, weight_decay=1.0)
        param.grad = np.array([0.0])
        opt.step()
        assert abs(param.data.item()) < 10.0

    def test_step_skips_gradless_params(self):
        param = Parameter(np.array([1.0]))
        Adam([param]).step()
        assert param.data.item() == 1.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_clip_grad_norm(self):
        params = [Parameter(np.zeros(3)) for _ in range(2)]
        for p in params:
            p.grad = np.full(3, 10.0)
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(np.sqrt(6 * 100))
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
        assert total == pytest.approx(1.0)


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        w = nn_init.xavier_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit

    def test_kaiming_nonzero(self, rng):
        w = nn_init.kaiming_uniform((50, 50), rng)
        assert w.std() > 0

    def test_orthogonal_columns(self, rng):
        w = nn_init.orthogonal((8, 8), rng)
        np.testing.assert_allclose(w.T @ w, np.eye(8), atol=1e-8)

    def test_orthogonal_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            nn_init.orthogonal((2, 2, 2), rng)

    def test_zeros(self):
        np.testing.assert_array_equal(nn_init.zeros((3,)), np.zeros(3))


class TestSerialization:
    def test_npz_roundtrip(self, tmp_path, rng):
        layer = Linear(4, 4, rng)
        path = str(tmp_path / "model.npz")
        save_state(layer.state_dict(), path)
        loaded = load_state(path)
        np.testing.assert_array_equal(loaded["weight"], layer.weight.data)
        np.testing.assert_array_equal(loaded["bias"], layer.bias.data)
