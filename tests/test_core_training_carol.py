"""Algorithm-1 training, fine-tuning and the CAROL loop (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    CAROL,
    CAROLConfig,
    GONDiscriminator,
    GONInput,
    TrainingConfig,
    evaluate,
    fine_tune,
    train_gon,
)
from repro.nn import EarlyStopping
from repro.experiments import run_experiment


class TestTrainingConfigAndHistory:
    def test_training_improves_loss(self, session_samples):
        model = GONDiscriminator(np.random.default_rng(1), hidden=16, n_layers=2)
        config = TrainingConfig(
            epochs=4, batch_size=8, learning_rate=2e-3,
            generation_steps=8, seed=1,
        )
        history = train_gon(model, session_samples, config)
        assert history.losses[-1] < history.losses[0]
        assert len(history.losses) == history.stopped_epoch
        assert history.wall_seconds > 0

    def test_confidence_rises(self, session_samples):
        model = GONDiscriminator(np.random.default_rng(2), hidden=16, n_layers=2)
        config = TrainingConfig(
            epochs=5, batch_size=8, learning_rate=2e-3,
            generation_steps=8, seed=2,
        )
        history = train_gon(model, session_samples, config)
        assert history.confidences[-1] > history.confidences[0]

    def test_history_rows(self, trained_gon, session_samples):
        config = TrainingConfig(epochs=2, batch_size=8, generation_steps=5)
        model = GONDiscriminator(np.random.default_rng(3), hidden=8, n_layers=1)
        history = train_gon(model, session_samples, config)
        rows = history.rows()
        assert rows[0][0] == 1
        assert len(rows) == len(history.losses)

    def test_train_requires_samples(self):
        model = GONDiscriminator(np.random.default_rng(0), hidden=8, n_layers=1)
        with pytest.raises(ValueError):
            train_gon(model, [])

    def test_early_stopping_honoured(self, session_samples):
        model = GONDiscriminator(np.random.default_rng(4), hidden=8, n_layers=1)
        config = TrainingConfig(
            epochs=50, batch_size=8, learning_rate=0.0,
            generation_steps=2, early_stopping_patience=2,
        )
        history = train_gon(model, session_samples, config)
        # Zero learning rate -> no systematic improvement -> early stop
        # long before the 50-epoch budget (generation noise can reset
        # patience a few times, so the bound is loose).
        assert history.stopped_epoch < 30

    def test_early_stopping_unit(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(1.0, 1)
        assert not stopper.update(1.0, 2)
        assert stopper.update(1.0, 3)
        assert stopper.best_epoch == 1


class TestEvaluateAndFineTune:
    def test_evaluate_returns_mse_and_confidence(self, trained_gon, session_samples):
        mse, confidence = evaluate(trained_gon, session_samples[:5], steps=5)
        assert mse >= 0
        assert 0 <= confidence <= 1

    def test_evaluate_requires_samples(self, trained_gon):
        with pytest.raises(ValueError):
            evaluate(trained_gon, [])

    def test_fine_tune_changes_parameters(self, session_samples):
        model = GONDiscriminator(np.random.default_rng(5), hidden=8, n_layers=1)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        fine_tune(
            model, session_samples[:8],
            config=TrainingConfig(generation_steps=4, learning_rate=1e-3),
            iterations=1,
        )
        after = model.state_dict()
        assert any(
            not np.allclose(before[key], after[key]) for key in before
        )

    def test_fine_tune_empty_buffer_rejected(self, trained_gon):
        with pytest.raises(ValueError):
            fine_tune(trained_gon, [])


class TestCAROL:
    @pytest.fixture
    def carol(self, trained_gon):
        # Small search bounds keep the test fast; behaviour identical.
        config = CAROLConfig(
            surrogate_steps=4, tabu_iterations=2, tabu_patience=1,
            neighbourhood_sample=8, pot_calibration=6, min_buffer=3,
            seed=0,
        )
        gon = trained_gon.clone_architecture(np.random.default_rng(0))
        gon.load_state_dict(trained_gon.state_dict())
        return CAROL(gon, 0.5, 0.5, config)

    def test_full_run_produces_diagnostics(self, carol, small_config):
        result = run_experiment(carol, small_config)
        diag = carol.diagnostics
        assert len(diag.confidences) == small_config.n_intervals
        assert len(diag.thresholds) == small_config.n_intervals
        assert all(0 <= c <= 1 for c in diag.confidences)
        summary = result.summary()
        assert summary["energy_kwh"] > 0

    def test_repair_keeps_live_hosts_attached(self, carol, small_config):
        from repro.simulator import EdgeFederation

        federation = EdgeFederation(small_config)
        for _ in range(15):
            report = federation.begin_interval()
            proposal = federation.propose_topology()
            topology = carol.repair(federation.view, report, proposal)
            live = {h.host_id for h in federation.hosts if h.alive}
            assert live <= topology.attached
            federation.set_topology(topology)
            metrics = federation.run_interval()
            carol.observe(metrics, federation.view)

    def test_no_failure_no_maintenance_returns_proposal(self, trained_gon, small_config):
        from repro.simulator import EdgeFederation

        config = CAROLConfig(maintenance_candidates=0, seed=0)
        gon = trained_gon.clone_architecture(np.random.default_rng(0))
        gon.load_state_dict(trained_gon.state_dict())
        strict = CAROL(gon, 0.5, 0.5, config)
        federation = EdgeFederation(small_config)
        # Warm-up interval so last_metrics exists.
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        metrics = federation.run_interval()
        strict.observe(metrics, federation.view)
        report = federation.begin_interval()
        proposal = federation.propose_topology()
        if not report.failed_brokers:
            assert strict.repair(federation.view, report, proposal) == proposal

    def test_maintenance_picks_incumbent_or_better(self, carol, small_config):
        """Per-interval maintenance never adopts a topology the
        surrogate scores worse than the engine's proposal."""
        from repro.core.surrogate import predict_qos
        from repro.core.features import GONInput
        from repro.simulator import EdgeFederation

        federation = EdgeFederation(small_config)
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        metrics = federation.run_interval()
        carol.observe(metrics, federation.view)
        report = federation.begin_interval()
        proposal = federation.propose_topology()
        if report.failed_brokers:
            return
        chosen = carol.repair(federation.view, report, proposal)
        last = federation.view.last_metrics

        def omega(topology):
            sample = GONInput(
                np.asarray(last.host_metrics, float),
                np.asarray(last.schedule_encoding, float),
                topology.adjacency(),
            )
            score, _ = predict_qos(
                carol.model, sample, carol.objective,
                gamma=carol.config.gamma,
                max_steps=carol.config.surrogate_steps,
            )
            return score

        assert omega(chosen) <= omega(proposal) + 1e-9

    def test_fine_tune_triggers_on_confidence_dip(self, carol, small_config):
        """Force a dip below the POT threshold and observe a fine-tune."""
        from repro.simulator import EdgeFederation

        federation = EdgeFederation(small_config)
        # Warm up POT and the buffer with normal operation.
        for _ in range(8):
            federation.begin_interval()
            federation.set_topology(federation.propose_topology())
            metrics = federation.run_interval()
            carol.observe(metrics, federation.view)
        # Replace the model scoring with a forced low-confidence answer
        # by injecting an out-of-distribution metric matrix.
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        metrics = federation.run_interval()
        metrics.host_metrics[:] = 3.0  # wildly out of distribution
        carol.pot.threshold = 1.0      # guarantee the gate opens
        buffer_before = len(carol.buffer)
        carol.observe(metrics, federation.view)
        if buffer_before >= carol.config.min_buffer:
            assert carol.diagnostics.fine_tuned[-1]
            assert len(carol.buffer) == 0

    def test_memory_accounts_buffer(self, carol, sample_input):
        base = carol.memory_bytes()
        carol.buffer.append(sample_input)
        assert carol.memory_bytes() > base

    def test_buffer_capacity_respected(self, carol, sample_input, small_config):
        for _ in range(carol.config.buffer_capacity + 50):
            carol.buffer.append(sample_input)
            if len(carol.buffer) > carol.config.buffer_capacity:
                carol.buffer.pop(0)
        assert len(carol.buffer) <= carol.config.buffer_capacity
