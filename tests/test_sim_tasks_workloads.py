"""Tasks, workload generators and gateway routing."""

import numpy as np
import pytest

from repro.simulator import (
    AIOT_PROFILES,
    ApplicationProfile,
    DEFOG_PROFILES,
    GatewayFleet,
    NetworkModel,
    Task,
    TaskSpec,
    WorkloadGenerator,
    make_aiot_generator,
    make_generator,
)
from repro.simulator.workloads.aiot import HEAVY_APPS, LIGHT_APPS


def spec(**overrides):
    defaults = dict(
        application="test", total_mi=1000.0, ram_gb=0.5,
        disk_mb=10.0, net_mb=5.0, slo_seconds=100.0,
    )
    defaults.update(overrides)
    return TaskSpec(**defaults)


class TestTaskSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            spec(total_mi=0)
        with pytest.raises(ValueError):
            spec(ram_gb=-1)
        with pytest.raises(ValueError):
            spec(slo_seconds=0)
        with pytest.raises(ValueError):
            spec(cpu_share=0)

    def test_default_cpu_share(self):
        assert spec().cpu_share == 0.5


class TestTask:
    def test_progress_to_completion(self):
        task = Task(spec(total_mi=100.0), created_at=0.0, lei_broker=0)
        task.progress(mips_share=10.0, seconds=5.0, now=0.0)
        assert not task.finished
        task.progress(mips_share=10.0, seconds=10.0, now=5.0)
        assert task.finished
        # 50 MI done, 50 left at 10 MIPS -> finishes 5s into the window.
        assert task.finished_at == pytest.approx(10.0)

    def test_finish_interpolated(self):
        task = Task(spec(total_mi=50.0), created_at=0.0, lei_broker=0)
        task.progress(mips_share=10.0, seconds=10.0, now=0.0)
        assert task.finished_at == pytest.approx(5.0)

    def test_response_time_includes_stall(self):
        task = Task(spec(total_mi=50.0), created_at=0.0, lei_broker=0)
        task.stall_seconds = 20.0
        task.progress(10.0, 10.0, now=0.0)
        assert task.response_time == pytest.approx(25.0)

    def test_response_time_before_finish_raises(self):
        task = Task(spec(), created_at=0.0, lei_broker=0)
        with pytest.raises(RuntimeError):
            _ = task.response_time

    def test_slo_violation(self):
        task = Task(spec(total_mi=50.0, slo_seconds=4.0), created_at=0.0, lei_broker=0)
        task.progress(10.0, 10.0, now=0.0)
        assert task.violates_slo
        ok = Task(spec(total_mi=50.0, slo_seconds=6.0), created_at=0.0, lei_broker=0)
        ok.progress(10.0, 10.0, now=0.0)
        assert not ok.violates_slo

    def test_no_progress_when_finished(self):
        task = Task(spec(total_mi=10.0), created_at=0.0, lei_broker=0)
        task.progress(10.0, 10.0, now=0.0)
        finished_at = task.finished_at
        task.progress(10.0, 10.0, now=10.0)
        assert task.finished_at == finished_at

    def test_zero_window_no_progress(self):
        task = Task(spec(total_mi=10.0), created_at=0.0, lei_broker=0)
        task.progress(10.0, 0.0, now=0.0)
        assert task.remaining_mi == 10.0

    def test_migration_charges_stall(self):
        task = Task(spec(), created_at=0.0, lei_broker=0)
        task.host = 1
        task.migrate(2, migration_seconds=7.0)
        assert task.migrations == 1
        assert task.stall_seconds == pytest.approx(7.0)
        # Same-host migration is free.
        task.migrate(2, migration_seconds=7.0)
        assert task.migrations == 1

    def test_unique_ids(self):
        a = Task(spec(), 0.0, 0)
        b = Task(spec(), 0.0, 0)
        assert a.task_id != b.task_id


class TestProfiles:
    def test_defog_apps(self):
        names = {p.name for p in DEFOG_PROFILES}
        assert names == {"yolo", "pocketsphinx", "aeneas"}

    def test_aiot_seven_apps(self):
        names = {p.name for p in AIOT_PROFILES}
        assert names == set(HEAVY_APPS) | set(LIGHT_APPS)
        assert len(names) == 7

    def test_heavy_demand_more_than_light(self):
        by_name = {p.name: p for p in AIOT_PROFILES}
        heavy_mean = np.mean([by_name[n].mean_mi for n in HEAVY_APPS])
        light_mean = np.mean([by_name[n].mean_mi for n in LIGHT_APPS])
        assert heavy_mean > 2 * light_mean

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ApplicationProfile("x", mean_mi=0, mean_ram_gb=1,
                               mean_disk_mb=1, mean_net_mb=1, slo_seconds=1)
        with pytest.raises(ValueError):
            ApplicationProfile("x", mean_mi=1, mean_ram_gb=1,
                               mean_disk_mb=1, mean_net_mb=1, slo_seconds=1, cv=1.5)


class TestWorkloadGenerator:
    def test_poisson_rate(self, rng):
        generator = WorkloadGenerator(
            DEFOG_PROFILES, arrival_rate=1.2, rng=rng,
            drift_scale=0.0, jump_probability=0.0,
        )
        counts = [len(generator.tasks_for_interval(4)) for _ in range(300)]
        assert np.mean(counts) == pytest.approx(4.8, rel=0.15)

    def test_regime_bounded(self, rng):
        generator = WorkloadGenerator(
            DEFOG_PROFILES, arrival_rate=1.0, rng=rng,
            drift_scale=0.3, jump_probability=0.5,
        )
        for _ in range(200):
            generator.advance_regime()
            regime = generator.regime_snapshot()
            assert np.all(regime >= 0.4) and np.all(regime <= 2.5)

    def test_tasks_positive_demands(self, rng):
        generator = make_aiot_generator(rng)
        for task in generator.tasks_for_interval(4):
            assert task.total_mi > 0
            assert task.slo_seconds > 0

    def test_drift_changes_demands(self):
        base = np.random.default_rng(0)
        generator = WorkloadGenerator(
            DEFOG_PROFILES, arrival_rate=1.0, rng=base,
            drift_scale=0.2, jump_probability=0.2,
        )
        start = generator.regime_snapshot()
        for _ in range(50):
            generator.advance_regime()
        assert not np.allclose(start, generator.regime_snapshot())

    def test_factory(self, rng):
        assert make_generator("defog", rng).profiles[0].name == "yolo"
        assert len(make_generator("aiot", rng).profiles) == 7
        with pytest.raises(ValueError):
            make_generator("bogus", rng)

    def test_rejects_empty_profiles(self, rng):
        with pytest.raises(ValueError):
            WorkloadGenerator([], 1.0, rng)


class TestGateways:
    def test_routing_targets_live_brokers(self, rng):
        network = NetworkModel(8, 2, rng)
        fleet = GatewayFleet(4, network, rng)
        specs = [spec() for _ in range(20)]
        routed = fleet.route_tasks(specs, brokers=[0, 1], now=0.0)
        assert set(routed) == {0, 1}
        assert sum(len(tasks) for tasks in routed.values()) == 20
        for broker, tasks in routed.items():
            for task in tasks:
                assert task.entry_broker == broker

    def test_routing_requires_brokers(self, rng):
        network = NetworkModel(4, 2, rng)
        fleet = GatewayFleet(2, network, rng)
        with pytest.raises(ValueError):
            fleet.route_tasks([spec()], brokers=[], now=0.0)

    def test_gateways_move(self, rng):
        network = NetworkModel(4, 2, rng)
        fleet = GatewayFleet(3, network, rng)
        before = [g.position.copy() for g in fleet.gateways]
        fleet.route_tasks([], brokers=[0], now=0.0)
        after = [g.position for g in fleet.gateways]
        assert any(not np.allclose(b, a) for b, a in zip(before, after))

    def test_ingress_stall_charged(self, rng):
        network = NetworkModel(4, 2, rng)
        fleet = GatewayFleet(2, network, rng)
        routed = fleet.route_tasks([spec()], brokers=[0], now=0.0)
        task = routed[0][0]
        assert task.stall_seconds > 0
