"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PeakOverThreshold, neighbours, random_node_shift
from repro.core.tabu import tabu_search
from repro.nn import Tensor
from repro.nn.tensor import _unbroadcast
from repro.simulator import Topology
from repro.simulator.task import Task, TaskSpec


# ----------------------------------------------------------------------
# Topology strategies
# ----------------------------------------------------------------------
@st.composite
def topologies(draw):
    n_hosts = draw(st.integers(min_value=4, max_value=14))
    n_brokers = draw(st.integers(min_value=1, max_value=max(1, n_hosts // 2)))
    hosts = list(range(n_hosts))
    rng_seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(rng_seed)
    brokers = sorted(rng.choice(hosts, size=n_brokers, replace=False).tolist())
    assignment = {}
    for host in hosts:
        if host in brokers:
            continue
        # Some hosts stay unattached.
        if rng.random() < 0.85:
            assignment[host] = int(rng.choice(brokers))
    return Topology(n_hosts, brokers, assignment)


class TestTopologyProperties:
    @given(topologies())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_symmetric_with_zero_diagonal(self, topo):
        adjacency = topo.adjacency()
        assert np.array_equal(adjacency, adjacency.T)
        assert np.all(np.diag(adjacency) == 0)

    @given(topologies())
    @settings(max_examples=60, deadline=None)
    def test_partition_invariant(self, topo):
        brokers = set(topo.brokers)
        workers = set(topo.assignment)
        unattached = set(topo.unattached)
        assert brokers | workers | unattached == set(range(topo.n_hosts))
        assert not brokers & workers
        assert not brokers & unattached
        assert not workers & unattached

    @given(topologies())
    @settings(max_examples=40, deadline=None)
    def test_neighbours_preserve_attached_set(self, topo):
        for neighbour in neighbours(topo)[:10]:
            assert neighbour.attached == topo.attached
            assert neighbour.n_hosts == topo.n_hosts

    @given(topologies(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_random_shift_valid(self, topo, seed):
        shifted = random_node_shift(topo, np.random.default_rng(seed))
        # Constructor validation ran; attached set unchanged.
        assert shifted.attached == topo.attached

    @given(topologies())
    @settings(max_examples=40, deadline=None)
    def test_detach_then_reattach_roundtrip(self, topo):
        workers = list(topo.assignment)
        if not workers:
            return
        worker = workers[0]
        broker = topo.assignment[worker]
        roundtrip = topo.detach(worker).attach_worker(worker, broker)
        assert roundtrip == topo

    @given(topologies())
    @settings(max_examples=40, deadline=None)
    def test_canonical_key_is_identity(self, topo):
        clone = Topology(topo.n_hosts, topo.brokers, dict(topo.assignment))
        assert clone.canonical_key() == topo.canonical_key()
        assert hash(clone) == hash(topo)


class TestTabuProperties:
    @given(topologies(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_tabu_result_never_worse_than_start(self, topo, target):
        def objective(t):
            return abs(len(t.brokers) - target) + 0.01 * len(t.unattached)

        result = tabu_search(topo, objective, neighbours, max_iterations=4)
        assert result.best_score <= objective(topo)


class TestUnbroadcastProperties:
    @given(
        st.sampled_from([(3, 4), (1, 4), (3, 1), (4,), (1,), ()]),
    )
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shape):
        rng = np.random.default_rng(0)
        full_shape = (3, 4)
        grad = rng.normal(size=full_shape)
        reduced = _unbroadcast(grad, shape)
        assert reduced.shape == shape
        # Total mass is conserved by summation.
        assert np.isclose(reduced.sum(), grad.sum())

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_broadcast_add_grad_matches_counts(self, rows, cols):
        x = Tensor(np.zeros((rows, cols)), requires_grad=True)
        b = Tensor(np.zeros(cols), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_array_equal(b.grad, np.full(cols, float(rows)))


class TestTensorAlgebraProperties:
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_ops_match_numpy(self, values):
        array = np.array(values)
        t = Tensor(array)
        np.testing.assert_allclose((t * 2 + 1).data, array * 2 + 1)
        np.testing.assert_allclose(t.tanh().data, np.tanh(array))
        np.testing.assert_allclose(t.exp().data, np.exp(array), rtol=1e-10)

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_bounded(self, values):
        out = Tensor(np.array(values)).sigmoid().data
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestPOTProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=30,
            max_size=120,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_threshold_never_exceeds_observed_range(self, values):
        pot = PeakOverThreshold(calibration_size=20)
        threshold = -np.inf
        for value in values:
            threshold = pot.update(value)
        if np.isfinite(threshold):
            # Lower-tail threshold sits at or below the data's bulk.
            assert threshold <= max(values) + 1e-9

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20, deadline=None)
    def test_constant_stream_threshold_at_or_below_value(self, constant):
        pot = PeakOverThreshold(calibration_size=20)
        threshold = -np.inf
        for _ in range(60):
            threshold = pot.update(constant)
        assert threshold <= constant + 1e-9


class TestTaskProperties:
    @given(
        st.floats(min_value=10.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=5000.0),
        st.floats(min_value=1.0, max_value=1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_work_is_conserved(self, total_mi, mips, seconds):
        spec = TaskSpec(
            application="p", total_mi=total_mi, ram_gb=0.1,
            disk_mb=1.0, net_mb=1.0, slo_seconds=100.0,
        )
        task = Task(spec, created_at=0.0, lei_broker=0)
        task.progress(mips, seconds, now=0.0)
        done = total_mi - task.remaining_mi
        assert 0.0 <= done <= min(total_mi, mips * seconds) + 1e-6
        if task.finished:
            assert task.finished_at <= seconds + 1e-9

    @given(st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=30, deadline=None)
    def test_finish_time_proportional_to_work(self, total_mi):
        spec = TaskSpec(
            application="p", total_mi=total_mi, ram_gb=0.1,
            disk_mb=1.0, net_mb=1.0, slo_seconds=100.0,
        )
        task = Task(spec, created_at=0.0, lei_broker=0)
        task.progress(mips_share=1.0, seconds=total_mi * 2, now=0.0)
        assert task.finished
        assert task.finished_at == pytest.approx(total_mi, rel=1e-9)
