"""Scenario subsystem: spec round-trip, registry, compiler, presets."""

import json

import pytest

from repro.config import ExperimentConfig, FaultConfig, WorkloadConfig
from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    TOPOLOGY_PRESETS,
    all_scenarios,
    build_topology,
    get_scenario,
    register,
    scenario_names,
)
from repro.simulator import EdgeFederation, HOST_CLASSES

REQUIRED_SCENARIOS = {
    "paper-default",
    "fault-free",
    "hetero-fleet",
    "correlated-rack",
    "cascading-overload",
    "network-partition",
    "flash-crowd",
    "diurnal-load",
}


class TestRegistry:
    def test_at_least_eight_builtins(self):
        assert len(scenario_names()) >= 8

    def test_required_catalog_present(self):
        assert REQUIRED_SCENARIOS <= set(scenario_names())

    def test_names_match_keys(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name

    def test_get_unknown_raises_with_catalog(self):
        with pytest.raises(KeyError, match="paper-default"):
            get_scenario("no-such-world")

    def test_register_rejects_duplicates(self):
        spec = get_scenario("paper-default")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)

    def test_register_overwrite(self):
        spec = get_scenario("paper-default")
        assert register(spec, overwrite=True) is spec

    def test_all_scenarios_sorted(self):
        assert [s.name for s in all_scenarios()] == scenario_names()

    def test_every_builtin_documented_in_package_docstring(self):
        import repro.scenarios as pkg

        for name in scenario_names():
            assert f"``{name}``" in pkg.__doc__

    def test_hetero_fleet_is_heterogeneous(self):
        assert get_scenario("hetero-fleet").is_heterogeneous
        uniform = ScenarioSpec(
            name="uniform", description="", fleet=(("pi4b-4gb", 4),),
        )
        assert not uniform.is_heterogeneous


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(REQUIRED_SCENARIOS) + ["skewed-hub"])
    def test_to_from_dict_identity(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_dict_is_json_serialisable(self):
        for spec in all_scenarios():
            payload = json.dumps(spec.to_dict())
            assert ScenarioSpec.from_dict(json.loads(payload)) == spec

    def test_from_dict_minimal_entry_uses_defaults(self):
        spec = ScenarioSpec.from_dict({"name": "minimal", "description": "d"})
        reference = ScenarioSpec(name="minimal", description="d")
        assert spec == reference
        assert spec.fleet  # default Pi fleet, not an empty tuple

    def test_from_dict_rejects_unknown_fields(self):
        data = get_scenario("paper-default").to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            ScenarioSpec.from_dict(data)


class TestValidation:
    def test_unknown_host_class(self):
        with pytest.raises(ValueError, match="unknown host class"):
            ScenarioSpec(name="bad", description="", fleet=(("cray", 2),))

    def test_empty_fleet(self):
        with pytest.raises(ValueError, match="empty fleet"):
            ScenarioSpec(name="bad", description="", fleet=())

    def test_infeasible_leis(self):
        with pytest.raises(ValueError, match="n_leis"):
            ScenarioSpec(
                name="bad", description="",
                fleet=(("pi4b-4gb", 4),), n_leis=3,
            )

    def test_group_size_exceeding_fleet(self):
        with pytest.raises(ValueError, match="correlated_group_size"):
            ScenarioSpec(
                name="bad", description="",
                fleet=(("pi4b-4gb", 4),), n_leis=2,
                faults=FaultConfig(
                    correlated_rate=0.5, correlated_group_size=9
                ),
            )

    def test_unknown_topology_preset(self):
        with pytest.raises(ValueError, match="topology preset"):
            ScenarioSpec(name="bad", description="", topology="ring")

    def test_qos_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="alpha"):
            ScenarioSpec(name="bad", description="", alpha=0.7, beta=0.5)

    def test_fault_config_field_validation(self):
        with pytest.raises(ValueError, match="partition_fraction"):
            FaultConfig(partition_rate=0.5, partition_fraction=1.5)
        with pytest.raises(ValueError, match="partition_fraction"):
            FaultConfig(partition_rate=0.5, partition_fraction=0.0)
        with pytest.raises(ValueError, match="correlated_group_size"):
            FaultConfig(correlated_rate=0.5, correlated_group_size=0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultConfig(surge_rate=-1.0)
        with pytest.raises(ValueError, match="surge_multiplier"):
            FaultConfig(surge_rate=0.5, surge_multiplier=0.5)
        with pytest.raises(ValueError, match="cascade_probability"):
            FaultConfig(cascade_probability=1.5)

    def test_workload_diurnal_validation(self):
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            WorkloadConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError, match="diurnal_period"):
            WorkloadConfig(diurnal_period=0.0)


class TestCompiler:
    def test_compile_produces_experiment_config(self):
        spec = get_scenario("paper-default")
        config = spec.compile(seed=11)
        assert isinstance(config, ExperimentConfig)
        assert config.seed == 11
        assert config.n_intervals == spec.n_intervals
        assert config.federation.n_hosts == spec.n_hosts
        assert config.federation.n_leis == spec.n_leis
        assert config.faults == spec.faults
        assert config.workload == spec.workload

    def test_compile_interval_override(self):
        config = get_scenario("paper-default").compile(seed=0, n_intervals=7)
        assert config.n_intervals == 7

    def test_compile_plumbs_fleet(self):
        spec = get_scenario("hetero-fleet")
        config = spec.compile()
        assert config.federation.fleet == spec.fleet
        federation = EdgeFederation(config)
        names = [h.spec.name for h in federation.hosts]
        expected = []
        for class_name, count in spec.fleet:
            expected.extend([HOST_CLASSES[class_name].name] * count)
        assert names == expected

    def test_every_builtin_compiles_and_boots(self):
        for spec in all_scenarios():
            config = spec.compile(seed=1, n_intervals=2)
            federation = EdgeFederation(config, topology=build_topology(spec))
            assert len(federation.hosts) == spec.n_hosts

    def test_with_overrides(self):
        spec = get_scenario("paper-default")
        bigger = spec.with_overrides(n_intervals=50)
        assert bigger.n_intervals == 50
        assert bigger.name == spec.name


class TestTopologyPresets:
    def test_presets_enumerated(self):
        assert set(TOPOLOGY_PRESETS) == {"balanced", "skewed"}

    def test_balanced_matches_initial_topology(self):
        from repro.simulator import initial_topology

        spec = get_scenario("paper-default")
        assert build_topology(spec) == initial_topology(spec.n_hosts, spec.n_leis)

    def test_skewed_concentrates_workers(self):
        spec = get_scenario("skewed-hub")
        topo = build_topology(spec)
        sizes = topo.lei_sizes()
        heavy = max(sizes.values())
        assert heavy > min(sizes.values())
        # Every host is attached despite the skew.
        assert topo.attached == frozenset(range(spec.n_hosts))
