"""TCP fleet transport: wire codec, socket scoring, failure modes.

The contract under test mirrors ``TestOverlayLifecycle``'s semantics
over the network hop:

* the wire codec round-trips every protocol dataclass bit-exactly and
  refuses malformed or truncated frames loudly;
* a scoring service behind :class:`TcpTransport` answers ascents
  bitwise-identical to in-process execution, overlays included;
* every failure mode -- garbage frames, truncated frames, a client
  disconnecting mid-ascent, stale-generation requests, unknown asset
  packs -- surfaces as a loud ``TransportError`` on both sides of the
  socket, never as a hang.
"""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.core.surrogate import generate_metrics_batch
from repro.nn.serialization import pack_state
from repro.serving import (
    AscentRequest,
    FleetScorer,
    GONScoringService,
    QueueTransport,
    ScoringClient,
    TcpTransport,
    TcpWorkerChannel,
    TransportError,
    fetch_array_pack,
    parse_address,
    serve_transport,
)
from repro.serving import wire
from repro.serving.service import AscentReply, ClientDone, OverlayUpdate


def _stacks(samples):
    return (
        np.stack([s.metrics for s in samples]),
        np.stack([s.schedule for s in samples]),
        np.stack([s.adjacency for s in samples]),
    )


def _decode_frame(frame: bytes):
    """Parse one encoded frame the way ``recv_message`` would."""
    magic, code, header_len, body_len = wire._PREFIX.unpack(
        frame[: wire._PREFIX.size]
    )
    assert magic == wire.MAGIC
    header_end = wire._PREFIX.size + header_len
    assert len(frame) == header_end + body_len
    return wire.decode_payload(
        code, frame[wire._PREFIX.size : header_end], frame[header_end:]
    )


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_ascent_request_roundtrip(self, rng):
        request = AscentRequest(
            client_id=3,
            request_id=17,
            model_key="paper-default",
            metrics=rng.standard_normal((4, 8, 7)),
            schedules=rng.standard_normal((4, 8, 5)),
            adjacencies=rng.standard_normal((4, 8, 8)),
            gamma=1e-2,
            max_steps=25,
            generation=2,
        )
        decoded = _decode_frame(wire.encode_message(request))
        assert isinstance(decoded, AscentRequest)
        assert decoded.client_id == 3
        assert decoded.request_id == 17
        assert decoded.model_key == "paper-default"
        assert decoded.gamma == request.gamma
        assert decoded.max_steps == 25
        assert decoded.generation == 2
        for field in ("metrics", "schedules", "adjacencies"):
            sent, received = getattr(request, field), getattr(decoded, field)
            assert np.array_equal(sent, received)
            assert received.dtype == sent.dtype
        # The request's bucket key survives the hop unchanged.
        assert decoded.bucket == request.bucket

    def test_ascent_reply_roundtrip_is_writable(self, rng):
        reply = AscentReply(
            request_id=5,
            metrics=rng.standard_normal((3, 8, 7)),
            confidences=rng.random(3),
            n_steps=np.array([4, 9, 2], dtype=int),
            converged=np.array([True, False, True]),
        )
        decoded = _decode_frame(wire.encode_message(reply))
        assert np.array_equal(decoded.metrics, reply.metrics)
        assert np.array_equal(decoded.n_steps, reply.n_steps)
        assert decoded.n_steps.dtype == reply.n_steps.dtype
        assert np.array_equal(decoded.converged, reply.converged)
        # Replies decode to private writable copies (the queue
        # transport hands out pickled copies; parity of semantics).
        assert decoded.metrics.flags.writeable

    def test_overlay_update_roundtrip(self, rng):
        state = {"w": rng.standard_normal((3, 4)), "b": rng.standard_normal(4)}
        buffer, manifest = pack_state(state)
        update = OverlayUpdate(
            client_id=1,
            model_key="scenario",
            generation=2,
            buffer=buffer,
            manifest=tuple(manifest),
        )
        decoded = _decode_frame(wire.encode_message(update))
        assert decoded.manifest == tuple(manifest)
        assert np.array_equal(decoded.buffer, buffer)

    def test_control_messages_roundtrip(self):
        done = _decode_frame(wire.encode_message(ClientDone(client_id=4)))
        assert done == ClientDone(client_id=4)
        index = _decode_frame(
            wire.encode_message(
                wire.AssetIndex(index={"s": {"gon_hidden": 8, "seed": 3}})
            )
        )
        assert index.index["s"]["gon_hidden"] == 8

    def test_bad_magic_is_loud(self):
        frame = bytearray(wire.encode_message(ClientDone(client_id=0)))
        frame[:4] = b"EVIL"
        left, right = socket.socketpair()
        try:
            left.sendall(bytes(frame))
            with pytest.raises(wire.WireError, match="magic"):
                wire.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_unknown_type_code_is_loud(self):
        with pytest.raises(wire.WireError, match="unknown wire message"):
            wire.decode_payload(99, b"{}", b"")

    def test_garbage_header_is_loud(self):
        with pytest.raises(wire.WireError, match="malformed"):
            wire.decode_payload(1, b"\xff\xfenot json", b"")

    def test_oversized_frame_is_refused(self):
        prefix = wire._PREFIX.pack(wire.MAGIC, 1, 1, wire.MAX_BODY_BYTES + 1)
        left, right = socket.socketpair()
        try:
            left.sendall(prefix)
            with pytest.raises(wire.WireError, match="cap"):
                wire.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_is_loud(self, rng):
        frame = wire.encode_message(
            AscentRequest(
                client_id=0, request_id=1, model_key="s",
                metrics=rng.standard_normal((2, 4, 3)),
                schedules=rng.standard_normal((2, 4, 2)),
                adjacencies=rng.standard_normal((2, 4, 4)),
                gamma=1e-2, max_steps=3,
            )
        )
        left, right = socket.socketpair()
        try:
            left.sendall(frame[: len(frame) // 2])
            left.close()
            with pytest.raises(wire.WireError, match="mid-frame"):
                wire.recv_message(right)
        finally:
            right.close()

    def test_eof_at_boundary_is_connection_closed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(wire.ConnectionClosed):
                wire.recv_message(right)
        finally:
            right.close()

    def test_body_shorter_than_manifest_is_loud(self, rng):
        frame = wire.encode_message(
            wire.AssetReply(
                pack="p",
                manifest=(("w", (4,), "<f8", 0),),
                buffer=np.zeros(32, dtype=np.uint8),
            )
        )
        magic, code, header_len, body_len = wire._PREFIX.unpack(
            frame[: wire._PREFIX.size]
        )
        header = frame[wire._PREFIX.size : wire._PREFIX.size + header_len]
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode_payload(code, header, b"\x00" * 4)

    def test_bogus_manifest_dtype_is_wire_error(self):
        # A lying header (invalid dtype string) must decode to a
        # WireError -- not a stray TypeError that a reader thread's
        # except clause would miss, stranding the service in a hang.
        import json as json_module

        header = json_module.dumps({
            "pack": "p",
            "manifest": [["w", [4], "<f8", 0]],
            "__pack__": [["buffer", [32], "bogus64", 0]],
        }).encode()
        code = wire._CODE_BY_CLASS[wire.AssetReply]
        with pytest.raises(wire.WireError, match="invalid"):
            wire.decode_payload(code, header, b"\x00" * 32)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7911") == ("127.0.0.1", 7911)
        with pytest.raises(TransportError, match="host:port"):
            parse_address("localhost")
        with pytest.raises(TransportError, match="host:port"):
            parse_address("host:port")


# ----------------------------------------------------------------------
# Queue transport (the preserved historical plumbing)
# ----------------------------------------------------------------------
class TestQueueTransport:
    def test_endpoints_are_the_service_queues(self):
        transport = QueueTransport(2)
        transport.start()
        request_queue, reply_queue = transport.worker_endpoints(1)
        assert request_queue is transport.request_queue
        assert reply_queue is transport.reply_queues[1]
        assert set(transport.reply_queues) == {0, 1}
        transport.close()


# ----------------------------------------------------------------------
# TCP scoring service
# ----------------------------------------------------------------------
@pytest.fixture
def tcp_service(trained_gon):
    """Start a TCP-fronted scoring service; yields a factory."""
    transports = []

    def start(n_clients=1, asset_packs=None, asset_index=None):
        transport = TcpTransport(
            n_clients, asset_packs=asset_packs, asset_index=asset_index
        )
        transports.append(transport)
        transport.start()
        service = GONScoringService(
            {"scenario": trained_gon},
            transport.request_queue,
            transport.reply_queues,
        )
        outcome = {}

        def run():
            try:
                outcome["stats"] = serve_transport(service, transport)
            except BaseException as error:
                outcome["error"] = error

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return transport, service, thread, outcome

    yield start
    for transport in transports:
        transport.close()


class TestTcpScoringService:
    def test_ascent_bitwise_equals_local(
        self, tcp_service, trained_gon, session_samples
    ):
        transport, _service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        client = ScoringClient(channel.client_id, "scenario", channel, channel)
        metrics, schedules, adjacencies = _stacks(session_samples[:6])
        remote = client.ascent(metrics, schedules, adjacencies,
                               gamma=1e-2, max_steps=5)
        local = generate_metrics_batch(
            trained_gon, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        for r, ref in zip(remote, local):
            assert np.array_equal(r.metrics, ref.metrics)
            assert r.confidence == ref.confidence
            assert r.n_steps == ref.n_steps
            assert r.converged == ref.converged
        client.close()
        channel.close()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert "error" not in outcome

    def test_overlay_lifecycle_over_tcp(
        self, tcp_service, trained_gon, session_samples
    ):
        """fine-tune -> overlay install -> TCP-scored ascents bitwise
        equal to worker-local scoring on the fine-tuned weights."""
        from repro.nn.serialization import freeze_state

        transport, service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        client = ScoringClient(channel.client_id, "scenario", channel, channel)
        replica = trained_gon.clone_architecture(np.random.default_rng(9))
        replica.load_state_dict(
            freeze_state(trained_gon.state_dict()), copy=False
        )
        scorer = FleetScorer(client, replica)
        scorer.fine_tune(
            session_samples[:6],
            TrainingConfig(epochs=1, generation_steps=2, seed=0),
            iterations=1,
            rng=np.random.default_rng(0),
        )
        metrics, schedules, adjacencies = _stacks(session_samples[:5])
        remote = scorer.ascent(metrics, schedules, adjacencies,
                               gamma=1e-2, max_steps=5)
        local = generate_metrics_batch(
            scorer.model, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        for r, ref in zip(remote, local):
            assert np.array_equal(r.metrics, ref.metrics)
            assert r.confidence == ref.confidence
        assert scorer.diagnostics["local_fallbacks"] == 0
        client.close()
        channel.close()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert outcome["stats"].overlay_installs == 1
        assert outcome["stats"].overlay_evictions == 1

    def test_asset_fetch_is_cached_per_process(self, tcp_service, rng):
        arrays = {"w": rng.standard_normal((6, 4)), "b": rng.standard_normal(4)}
        packs = {"scenario/weights": pack_state(arrays)}
        index = {"scenario": {"gon_hidden": 8, "gon_layers": 2,
                              "seed": 1, "gan_seed": 1}}
        transport, _service, thread, _outcome = tcp_service(
            asset_packs=packs, asset_index=index
        )
        channel = TcpWorkerChannel(transport.address)
        assert channel.fetch_index() == index
        fetched = fetch_array_pack(channel, "scenario/weights")
        for name, array in arrays.items():
            assert np.array_equal(fetched.arrays[name], array)
            assert not fetched.arrays[name].flags.writeable
        # Second fetch is served from the per-process cache.
        again = fetch_array_pack(channel, "scenario/weights")
        assert again is fetched
        channel.put(ClientDone(channel.client_id))
        channel.close()
        thread.join(timeout=15)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
# Failure modes: loud protocol errors, never hangs
# ----------------------------------------------------------------------
class TestTransportFailureModes:
    def test_malformed_frame_kills_service_and_client_loudly(
        self, tcp_service, session_samples
    ):
        transport, _service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        channel._sock.sendall(b"this is not a CRL1 frame at all........")
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert isinstance(outcome["error"], TransportError)
        assert "protocol error" in str(outcome["error"])
        # The client is notified (ServiceError broadcast), not hung.
        with pytest.raises(TransportError):
            channel.get()
        channel.close()

    def test_truncated_frame_is_a_loud_protocol_error(
        self, tcp_service, session_samples
    ):
        transport, _service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        metrics, schedules, adjacencies = _stacks(session_samples[:2])
        frame = wire.encode_message(AscentRequest(
            client_id=channel.client_id, request_id=1, model_key="scenario",
            metrics=metrics, schedules=schedules, adjacencies=adjacencies,
            gamma=1e-2, max_steps=2,
        ))
        channel._sock.sendall(frame[: len(frame) - 40])
        channel.close()  # EOF mid-frame
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert isinstance(outcome["error"], TransportError)

    def test_disconnect_mid_ascent_fails_fast(
        self, tcp_service, session_samples
    ):
        transport, _service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        metrics, schedules, adjacencies = _stacks(session_samples[:3])
        channel.put(AscentRequest(
            client_id=channel.client_id, request_id=1, model_key="scenario",
            metrics=metrics, schedules=schedules, adjacencies=adjacencies,
            gamma=1e-2, max_steps=5,
        ))
        channel.close()  # vanish without ClientDone, reply undeliverable
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert isinstance(outcome["error"], TransportError)

    def test_stale_generation_over_tcp_is_loud_on_both_sides(
        self, tcp_service, session_samples
    ):
        transport, _service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        metrics, schedules, adjacencies = _stacks(session_samples[:1])
        channel.put(AscentRequest(
            client_id=channel.client_id, request_id=1, model_key="scenario",
            metrics=metrics, schedules=schedules, adjacencies=adjacencies,
            gamma=1e-2, max_steps=2, generation=3,
        ))
        thread.join(timeout=15)
        assert not thread.is_alive()
        # The service died on the overlay-protocol violation...
        assert "overlay" in str(outcome["error"])
        # ...and the blocked client hears about it instead of hanging.
        with pytest.raises(TransportError, match="overlay"):
            channel.get()
        channel.close()

    def test_client_id_spoofing_is_rejected(
        self, tcp_service, session_samples
    ):
        transport, _service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        metrics, schedules, adjacencies = _stacks(session_samples[:1])
        channel.put(AscentRequest(
            client_id=channel.client_id + 7, request_id=1,
            model_key="scenario", metrics=metrics, schedules=schedules,
            adjacencies=adjacencies, gamma=1e-2, max_steps=2,
        ))
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert "claiming client id" in str(outcome["error"])
        channel.close()

    def test_unknown_asset_pack_is_loud(self, tcp_service):
        transport, _service, thread, outcome = tcp_service()
        channel = TcpWorkerChannel(transport.address)
        with pytest.raises(TransportError):
            channel.fetch_pack("no-such-scenario/weights")
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert "unknown asset pack" in str(outcome["error"])
        channel.close()

    def test_handshake_without_hello_is_loud(self, tcp_service):
        transport, _service, thread, outcome = tcp_service()
        raw = socket.create_connection((transport.host, transport.port))
        raw.sendall(struct.pack("!I", 0xDEADBEEF) * 8)
        raw.close()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert "handshake" in str(outcome["error"])

    def test_connect_to_dead_address_times_out_loudly(self):
        # Grab a port and close it again: nothing listens there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(TransportError, match="could not reach"):
            TcpWorkerChannel(f"127.0.0.1:{port}", connect_timeout=0.5)
