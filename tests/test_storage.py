"""The durable campaign store: identity hashing, backends, resume.

Pins the storage contracts end to end:

* the config hash covers exactly the grid-identity surface -- execution
  topology (workers, mode, transport, store settings) must never change
  it, anything that changes record content must;
* backend parity -- the ``memory`` and ``sqlite`` stores are
  observationally identical for every register/put/get/list path,
  including their refusal semantics (first-wins, tamper-loud);
* lossless serialization -- a restored record round-trips bit-identical
  metrics through the JSON text layer;
* crash-shaped durability -- records written by a never-closed
  connection are visible to a fresh open of the same file;
* resume -- ``run_campaign`` restores stored cells instead of
  re-executing them (counted in ``fleet.cells_resumed``), refuses a
  store whose grid identity disagrees, and produces bit-identical
  records either way; the :class:`CellCoordinator` pre-completes stored
  cells so a resumed service never leases them;
* the CLI (``campaign --store``, ``store list|show|export``,
  ``telemetry`` on a store file) and the stdlib-only benchmark reader
  (``benchmarks/compare_records.py``), which must agree byte-for-byte
  with ``repro.storage``'s own export.
"""

import dataclasses
import json
import os
import sqlite3
import sys

import pytest

from repro.experiments.campaign import (
    CampaignConfig,
    GRID_IDENTITY_FIELDS,
    campaign_config_hash,
    campaign_grid_identity,
    record_from_payload,
    record_to_payload,
    run_campaign,
)
from repro.serving.coordinator import CellCoordinator
from repro.storage import (
    MemoryCampaignStore,
    SqliteCampaignStore,
    StoreError,
    canonical_json,
    is_sqlite_store,
    open_store,
)

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))
import compare_records  # noqa: E402


def tiny_config(**overrides) -> CampaignConfig:
    """A seconds-fast heuristic-only grid (no GON training)."""
    defaults = dict(
        scenarios=("fault-free",),
        models=("DYVERSE",),
        n_seeds=3,
        workers=1,
        n_intervals=2,
        shared_assets=False,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def payloads(result) -> list:
    return [record_to_payload(record) for record in result.records]


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    path = str(tmp_path / "store.db") if request.param == "sqlite" else ""
    with open_store(request.param, path) as opened:
        yield opened


SAMPLE_GRID = {"scenarios": ["fault-free"], "models": ["DYVERSE"], "n_seeds": 2}


def sample_payload(seed_index: int = 0, **extra) -> dict:
    payload = {
        "run_index": seed_index,
        "scenario": "fault-free",
        "model": "DYVERSE",
        "seed_index": seed_index,
        "seed": 1234 + seed_index,
        "energy_kwh": 0.1,
        "response_time_s": 1.0 / 3.0,
        "slo_violation_rate": 1e-300,
        "downtime_s": 6.02214076e23,
        "diagnostics": {"cache_hits": 3, "decision_digest": "abc123"},
    }
    payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# Config hash surface
# ----------------------------------------------------------------------
class TestConfigHash:
    def test_execution_topology_never_changes_the_hash(self):
        # Fleet mode forces shared_assets (an identity field), so the
        # cross-mode comparisons run from a shared-assets base.
        base = tiny_config(shared_assets=True)
        h = campaign_config_hash(base)
        for change in (
            dict(workers=8),
            dict(mode="fleet", workers=2),
            dict(mode="fleet", transport="tcp"),
            dict(heartbeat_timeout=1.5),
            dict(cell_retry_budget=9),
            dict(auth_token="secret"),
            dict(store="sqlite", store_path="/tmp/x.db"),
        ):
            changed = dataclasses.replace(base, **change)
            assert campaign_config_hash(changed) == h, change

    def test_grid_identity_fields_all_change_the_hash(self):
        base = tiny_config()
        h = campaign_config_hash(base)
        for change in (
            dict(scenarios=("paper-default",)),
            dict(models=("CAROL",)),
            dict(n_seeds=4),
            dict(seed=99),
            dict(n_intervals=5),
            dict(trace_intervals=13),
            dict(gon_hidden=16),
            dict(gon_layers=3),
            dict(gon_epochs=7),
            dict(shared_assets=True),
            dict(fleet_merge=True),
            dict(carol_overrides=(("gamma", 0.5),)),
            dict(scorer_backend="fast"),
        ):
            changed = dataclasses.replace(base, **change)
            assert campaign_config_hash(changed) != h, change

    def test_identity_covers_every_declared_field(self):
        grid = campaign_grid_identity(tiny_config())
        assert set(grid) == set(GRID_IDENTITY_FIELDS)

    def test_model_aliases_canonicalize_before_hashing(self):
        lower = tiny_config(models=("carol",))
        upper = tiny_config(models=("CAROL",))
        assert campaign_config_hash(lower) == campaign_config_hash(upper)


# ----------------------------------------------------------------------
# Backend contract (parametrized over memory and sqlite)
# ----------------------------------------------------------------------
class TestStoreContract:
    def test_register_then_lookup(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        assert store.grid("h1") == SAMPLE_GRID
        rows = store.campaigns()
        assert [row.config_hash for row in rows] == ["h1"]
        assert rows[0].cells_completed == 0
        assert rows[0].cells_total == 2

    def test_register_is_idempotent_but_mismatch_is_loud(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        store.register_campaign("h1", dict(SAMPLE_GRID))  # same grid: fine
        with pytest.raises(StoreError, match="different grid identity"):
            store.register_campaign("h1", {**SAMPLE_GRID, "n_seeds": 3})

    def test_put_get_roundtrip_is_bitwise(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        payload = sample_payload()
        assert store.put_record("h1", payload) is True
        stored = store.get_record("h1", "fault-free", "DYVERSE", 0)
        assert canonical_json(stored) == canonical_json(payload)
        # Float bits, not approximate equality.
        for key in ("energy_kwh", "response_time_s", "slo_violation_rate",
                    "downtime_s"):
            assert stored[key].hex() == payload[key].hex()

    def test_duplicate_put_is_counted_noop(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        payload = sample_payload()
        assert store.put_record("h1", payload) is True
        assert store.put_record("h1", dict(payload)) is False
        assert len(store.records("h1")) == 1

    def test_conflicting_record_is_refused(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        store.put_record("h1", sample_payload())
        with pytest.raises(StoreError, match="different record"):
            store.put_record("h1", sample_payload(energy_kwh=0.2))

    def test_put_against_unregistered_campaign_is_refused(self, store):
        with pytest.raises(StoreError, match="unknown campaign"):
            store.put_record("nope", sample_payload())

    def test_records_sorted_and_completed_cells(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        store.put_record("h1", sample_payload(1))
        store.put_record("h1", sample_payload(0))
        assert [r["run_index"] for r in store.records("h1")] == [0, 1]
        assert store.completed_cells("h1") == {
            ("fault-free", "DYVERSE", 0),
            ("fault-free", "DYVERSE", 1),
        }

    def test_telemetry_accumulates_across_merges(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        assert store.telemetry("h1") == {}
        store.merge_telemetry("h1", {"counters": {"fleet.leases": 2}})
        store.merge_telemetry("h1", {"counters": {"fleet.leases": 3}})
        assert store.telemetry("h1")["counters"]["fleet.leases"] == 5

    def test_resolve_campaign_prefixes(self, store):
        store.register_campaign("aaa1", SAMPLE_GRID)
        store.register_campaign("bbb2", SAMPLE_GRID)
        assert store.resolve_campaign("aaa") == "aaa1"
        with pytest.raises(StoreError, match="several campaigns"):
            store.only_campaign()
        with pytest.raises(StoreError, match="no campaign matches"):
            store.resolve_campaign("zzz")

    def test_export_payload_shape(self, store):
        store.register_campaign("h1", SAMPLE_GRID)
        store.put_record("h1", sample_payload())
        exported = store.export_payload("h1")
        assert exported["config"]["config_hash"] == "h1"
        assert exported["config"]["n_seeds"] == 2
        assert len(exported["records"]) == 1


class TestBackendParity:
    def test_memory_and_sqlite_exports_are_byte_identical(self, tmp_path):
        memory = MemoryCampaignStore()
        sqlite_store = SqliteCampaignStore(str(tmp_path / "p.db"))
        for backend in (memory, sqlite_store):
            backend.register_campaign("h1", SAMPLE_GRID)
            backend.put_record("h1", sample_payload(0))
            backend.put_record("h1", sample_payload(1))
            backend.merge_telemetry("h1", {"counters": {"fleet.leases": 4}})
        assert canonical_json(memory.export_payload("h1")) == canonical_json(
            sqlite_store.export_payload("h1")
        )
        sqlite_store.close()


# ----------------------------------------------------------------------
# SQLite durability specifics
# ----------------------------------------------------------------------
class TestSqliteDurability:
    def test_reopen_without_close_sees_every_committed_record(self, tmp_path):
        path = str(tmp_path / "crash.db")
        writer = SqliteCampaignStore(path)
        writer.register_campaign("h1", SAMPLE_GRID)
        writer.put_record("h1", sample_payload(0))
        writer.put_record("h1", sample_payload(1))
        # No close(): the writer "was SIGKILLed".  WAL autocommit means
        # everything already put is durable for the next open.
        reader = SqliteCampaignStore(path)
        try:
            assert len(reader.records("h1")) == 2
            assert canonical_json(reader.get_record(
                "h1", "fault-free", "DYVERSE", 0
            )) == canonical_json(sample_payload(0))
        finally:
            reader.close()
            writer.close()

    def test_magic_sniffing(self, tmp_path):
        db = tmp_path / "real.db"
        SqliteCampaignStore(str(db)).close()
        assert is_sqlite_store(str(db))
        plain = tmp_path / "plain.json"
        plain.write_text("{}")
        assert not is_sqlite_store(str(plain))
        assert not is_sqlite_store(str(tmp_path / "absent"))

    def test_wrong_schema_version_is_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        SqliteCampaignStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version=99")
        conn.close()
        with pytest.raises(StoreError, match="schema version 99"):
            SqliteCampaignStore(path)

    def test_non_database_file_is_refused(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"not a database at all, but long enough to sniff")
        with pytest.raises(StoreError, match="not a campaign store"):
            SqliteCampaignStore(str(path))

    def test_unknown_store_kind(self):
        with pytest.raises(StoreError, match="unknown campaign store"):
            open_store("redis")


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_sqlite_requires_a_path(self):
        with pytest.raises(ValueError, match="requires store_path"):
            tiny_config(store="sqlite")

    def test_path_requires_sqlite(self):
        with pytest.raises(ValueError, match="store_path requires"):
            tiny_config(store_path="/tmp/x.db")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="store"):
            tiny_config(store="redis")


# ----------------------------------------------------------------------
# Record payload round-trip
# ----------------------------------------------------------------------
class TestRecordPayloads:
    def test_json_text_roundtrip_is_bitwise(self, tmp_path):
        result = run_campaign(tiny_config(n_seeds=1))
        record = result.records[0]
        text = canonical_json(record_to_payload(record))
        restored = record_from_payload(json.loads(text))
        assert restored == record
        for key, value in record.metrics.items():
            assert restored.metrics[key].hex() == value.hex()

    def test_missing_metric_column_fails_loudly(self):
        payload = sample_payload()
        del payload["energy_kwh"]
        with pytest.raises(ValueError, match="incompatible record schema"):
            record_from_payload(payload)


# ----------------------------------------------------------------------
# Coordinator resume preload
# ----------------------------------------------------------------------
class TestCoordinatorPreload:
    def test_preloaded_cells_are_never_leased(self):
        coordinator = CellCoordinator([0, 1, 2, 3], completed=[1, 3])
        assert coordinator.resumed == (1, 3)
        assert coordinator.completed == {1: -1, 3: -1}
        leased = set()
        while True:
            cell, _attempt, drained = coordinator.lease(worker_id=0)
            if cell is None:
                break
            leased.add(cell)
            coordinator.complete(cell, 0)
        assert leased == {0, 2}
        assert coordinator.finished

    def test_all_cells_preloaded_is_born_finished(self):
        coordinator = CellCoordinator([0, 1], completed=[0, 1])
        assert coordinator.finished
        assert coordinator.lease(worker_id=0) == (None, 0, True)

    def test_unknown_preloaded_cell_is_refused(self):
        with pytest.raises(ValueError, match="not in the campaign grid"):
            CellCoordinator([0, 1], completed=[7])

    def test_status_reports_resumed(self):
        coordinator = CellCoordinator([0, 1, 2], completed=[2])
        status = coordinator.status()
        assert status["cells_resumed"] == 1
        assert status["completed"] == 1
        assert status["pending"] == 2


# ----------------------------------------------------------------------
# run_campaign resume (serial + fleet)
# ----------------------------------------------------------------------
class TestCampaignResume:
    def test_full_resume_restores_every_cell_bitwise(self, tmp_path):
        config = tiny_config(
            store="sqlite", store_path=str(tmp_path / "runs.db")
        )
        first = run_campaign(config)
        second = run_campaign(config)
        assert canonical_json(payloads(first)) == canonical_json(
            payloads(second)
        )
        counters = second.telemetry["counters"]
        assert counters["fleet.cells_resumed"] == len(first.records)
        assert counters.get("campaign.cells_started", 0) == 0

    def test_partial_resume_runs_only_missing_cells(self, tmp_path):
        config = tiny_config(
            store="sqlite", store_path=str(tmp_path / "full.db")
        )
        full = run_campaign(config)
        partial_path = str(tmp_path / "partial.db")
        config_hash = campaign_config_hash(config)
        with open_store("sqlite", partial_path) as seed_store:
            seed_store.register_campaign(
                config_hash, campaign_grid_identity(config)
            )
            seed_store.put_record(
                config_hash, record_to_payload(full.records[1])
            )
        resumed = run_campaign(
            dataclasses.replace(config, store_path=partial_path)
        )
        assert canonical_json(payloads(resumed)) == canonical_json(
            payloads(full)
        )
        counters = resumed.telemetry["counters"]
        assert counters["fleet.cells_resumed"] == 1
        assert counters["campaign.cells_started"] == len(full.records) - 1
        with open_store("sqlite", partial_path) as check:
            assert len(check.records(config_hash)) == len(full.records)

    def test_resume_refuses_a_mismatched_grid(self, tmp_path):
        path = str(tmp_path / "runs.db")
        config = tiny_config(store="sqlite", store_path=path)
        run_campaign(config)
        config_hash = campaign_config_hash(config)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE campaigns SET grid_json=? WHERE config_hash=?",
            (canonical_json({"scenarios": ["tampered"]}), config_hash),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="different grid identity"):
            run_campaign(config)

    def test_memory_store_preserves_run_everything_semantics(self):
        config = tiny_config()
        first = run_campaign(config)
        second = run_campaign(config)
        assert canonical_json(payloads(first)) == canonical_json(
            payloads(second)
        )
        # The registry snapshot lists every registered counter; with a
        # memory store nothing was ever resumed.
        assert second.telemetry["counters"].get("fleet.cells_resumed", 0) == 0

    def test_fleet_mode_resumes_from_a_serial_store(self, tmp_path):
        path = str(tmp_path / "fleet.db")
        serial = tiny_config(
            shared_assets=True, store="sqlite", store_path=path
        )
        first = run_campaign(serial)
        fleet = dataclasses.replace(
            serial, mode="fleet", workers=2, shared_assets=True
        )
        assert campaign_config_hash(fleet) == campaign_config_hash(serial)
        resumed = run_campaign(fleet)
        # Metric rows are the cross-mode bit-identity surface
        # (diagnostics legitimately differ between fleet and serial).
        assert canonical_json([r.row() for r in resumed.records]) == (
            canonical_json([r.row() for r in first.records])
        )
        counters = resumed.telemetry["counters"]
        assert counters["fleet.cells_resumed"] == len(first.records)

    def test_interrupted_fleet_store_completes_on_serial_rerun(self, tmp_path):
        """The SIGKILL-resume shape, in-process: a partially filled
        store (as an interrupted fleet campaign leaves behind thanks to
        incremental persistence) is completed by a rerun, bit-identical
        to an uninterrupted serial run."""
        path = str(tmp_path / "interrupted.db")
        config = tiny_config(
            shared_assets=True, store="sqlite", store_path=path
        )
        fresh = run_campaign(tiny_config(shared_assets=True))
        config_hash = campaign_config_hash(config)
        with open_store("sqlite", path) as seed_store:
            seed_store.register_campaign(
                config_hash, campaign_grid_identity(config)
            )
            seed_store.put_record(
                config_hash, record_to_payload(fresh.records[0])
            )
        completed = run_campaign(config)
        assert canonical_json(payloads(completed)) == canonical_json(
            payloads(fresh)
        )


# ----------------------------------------------------------------------
# CLI: campaign --store, store list/show/export, telemetry on a store
# ----------------------------------------------------------------------
class TestStoreCli:
    CAMPAIGN_FLAGS = [
        "campaign", "--scenarios", "fault-free", "--models", "dyverse",
        "--seeds", "2", "--intervals", "2",
    ]

    def run_cli(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_campaign_store_flags_resume_via_cli(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        flags = self.CAMPAIGN_FLAGS + ["--store", "sqlite", "--store-path", db]
        assert self.run_cli(flags) == 0
        capsys.readouterr()
        assert self.run_cli(flags) == 0
        capsys.readouterr()
        with open_store("sqlite", db) as store:
            config_hash = store.only_campaign()
            counters = store.telemetry(config_hash)["counters"]
            assert counters["fleet.cells_resumed"] == 2
            assert len(store.records(config_hash)) == 2

    def test_store_path_without_sqlite_fails_validation(self, tmp_path, capsys):
        rc = self.run_cli(
            self.CAMPAIGN_FLAGS + ["--store-path", str(tmp_path / "x.db")]
        )
        assert rc == 2
        assert "store_path requires" in capsys.readouterr().err

    @pytest.fixture
    def populated_db(self, tmp_path):
        db = str(tmp_path / "populated.db")
        assert self.run_cli(
            self.CAMPAIGN_FLAGS + ["--store", "sqlite", "--store-path", db]
        ) == 0
        return db

    def test_store_list_show_export(self, populated_db, tmp_path, capsys):
        assert self.run_cli(["store", "list", populated_db]) == 0
        out = capsys.readouterr().out
        assert "1 campaign(s)" in out and "2/2 cells" in out

        assert self.run_cli(["store", "show", populated_db]) == 0
        out = capsys.readouterr().out
        assert "fault-free / DYVERSE / seed 1" in out

        assert self.run_cli(["store", "show", populated_db, "--json"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert len(shown["records"]) == 2

        export_path = str(tmp_path / "export.json")
        assert self.run_cli(
            ["store", "export", populated_db, export_path]
        ) == 0
        capsys.readouterr()
        with open(export_path) as source:
            exported = json.load(source)
        assert canonical_json(exported) == canonical_json(shown)

    def test_store_export_requires_output(self, populated_db, capsys):
        assert self.run_cli(["store", "export", populated_db]) == 2
        assert "output path" in capsys.readouterr().err

    def test_store_rejects_non_database(self, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        plain.write_text("{}")
        assert self.run_cli(["store", "list", str(plain)]) == 2
        assert "not a campaign store" in capsys.readouterr().err

    def test_telemetry_reads_a_store_file(self, populated_db, capsys):
        assert self.run_cli(["telemetry", populated_db]) == 0
        out = capsys.readouterr().out
        assert "campaign.cells_completed" in out

    def test_telemetry_json_extraction_from_store(
        self, populated_db, tmp_path, capsys
    ):
        out_path = str(tmp_path / "telemetry.json")
        assert self.run_cli(
            ["telemetry", populated_db, "--json", out_path]
        ) == 0
        with open(out_path) as source:
            snapshot = json.load(source)
        assert snapshot["counters"]["campaign.cells_completed"] == 2


# ----------------------------------------------------------------------
# Benchmark reader parity (stdlib sqlite3 vs repro.storage)
# ----------------------------------------------------------------------
class TestBenchmarkReader:
    def test_load_payload_matches_storage_export(self, tmp_path):
        db = str(tmp_path / "bench.db")
        config = tiny_config(store="sqlite", store_path=db)
        run_campaign(config)
        with open_store("sqlite", db) as store:
            config_hash = store.only_campaign()
            ours = store.export_payload(config_hash)
        theirs = compare_records.load_payload(db)
        assert canonical_json(ours) == canonical_json(theirs)

    def test_record_rows_from_store_match_json_dump(self, tmp_path):
        db = str(tmp_path / "bench.db")
        config = tiny_config(store="sqlite", store_path=db)
        result = run_campaign(config)
        dump = tmp_path / "dump.json"
        dump.write_text(json.dumps(result.to_payload()))
        assert compare_records.record_rows(db) == compare_records.record_rows(
            str(dump)
        )

    def test_compare_records_main_accepts_a_store(self, tmp_path, capsys):
        db = str(tmp_path / "bench.db")
        config = tiny_config(store="sqlite", store_path=db)
        result = run_campaign(config)
        dump = tmp_path / "dump.json"
        dump.write_text(json.dumps(result.to_payload()))
        assert compare_records.main([db, str(dump)]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_ambiguous_campaign_needs_a_prefix(self, tmp_path):
        db = str(tmp_path / "two.db")
        with open_store("sqlite", db) as store:
            store.register_campaign("aaa", SAMPLE_GRID)
            store.register_campaign("bbb", SAMPLE_GRID)
            store.put_record("aaa", sample_payload(0))
            store.put_record("bbb", sample_payload(0))
        with pytest.raises(SystemExit, match="matches 0 of 2|matches 2"):
            compare_records.load_payload(db)
        assert compare_records.load_payload(db, campaign="aaa")["config"][
            "config_hash"
        ] == "aaa"
