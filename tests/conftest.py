"""Shared fixtures.

Expensive assets (traces, trained GONs) are session-scoped: the tiny
models they produce are deterministic for a fixed seed, so every test
observing them sees identical state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExperimentConfig, FaultConfig, FederationConfig, WorkloadConfig
from repro.core import GONDiscriminator, GONInput, TrainingConfig, train_gon
from repro.core.nodeshift import random_node_shift
from repro.simulator import EdgeFederation, collect_trace, initial_topology


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_config():
    """8 hosts, 2 LEIs, 10 intervals -- fast but exercises everything."""
    return ExperimentConfig(
        federation=FederationConfig(n_hosts=8, n_leis=2, n_large_hosts=4),
        workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=10,
        seed=7,
    )


@pytest.fixture
def small_topology():
    return initial_topology(n_hosts=8, n_leis=2)


@pytest.fixture
def federation(small_config):
    return EdgeFederation(small_config)


@pytest.fixture(scope="session")
def session_trace():
    """A 40-interval DeFog trace shared by training-dependent tests."""
    config = ExperimentConfig(
        federation=FederationConfig(n_hosts=8, n_leis=2, n_large_hosts=4),
        workload=WorkloadConfig(suite="defog", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=40,
        seed=3,
    )
    return collect_trace(
        config, n_intervals=40,
        topology_mutator=random_node_shift, mutate_every=10,
    )


@pytest.fixture(scope="session")
def session_samples(session_trace):
    return [
        GONInput(s.metrics, s.schedule, s.adjacency)
        for s in session_trace.samples
    ]


@pytest.fixture(scope="session")
def trained_gon(session_samples):
    """A tiny GON trained for a handful of epochs."""
    model = GONDiscriminator(np.random.default_rng(0), hidden=16, n_layers=2)
    config = TrainingConfig(
        epochs=4, batch_size=8, learning_rate=1e-3,
        generation_steps=10, seed=0,
    )
    train_gon(model, session_samples, config)
    return model


@pytest.fixture
def sample_input(session_samples):
    return session_samples[0]
