"""Fault injection, failure detection and recovery."""

import numpy as np
import pytest

from repro.config import FaultConfig
from repro.simulator import (
    DetectionProtocol,
    FaultInjector,
    NetworkModel,
    Topology,
    ensure_brokered,
    initial_topology,
    make_pi_cluster,
    reattach_recovered,
    strip_failed,
)
from repro.simulator.faults import (
    ATTACK_AXIS,
    ATTACK_INTENSITY,
    PARTITION_INTENSITY,
    ArrivalSurgeModel,
    CascadeAttackModel,
    CorrelatedGroupAttackModel,
    PartitionFaultModel,
    PoissonAttackModel,
    default_fault_models,
)


@pytest.fixture
def hosts():
    return make_pi_cluster(8, 4)


@pytest.fixture
def topo():
    return initial_topology(8, 2)


@pytest.fixture
def injector(rng):
    return FaultInjector(FaultConfig(rate=1.0), rng)


class TestFaultInjection:
    def test_attack_rate(self, topo, hosts):
        injector = FaultInjector(FaultConfig(rate=0.5), np.random.default_rng(0))
        counts = [
            len(injector.inject(t, topo, hosts)) for t in range(400)
        ]
        assert np.mean(counts) == pytest.approx(0.5, rel=0.2)

    def test_attack_types_cover_paper_set(self, topo, hosts):
        injector = FaultInjector(FaultConfig(rate=3.0), np.random.default_rng(1))
        seen = set()
        for t in range(100):
            for event in injector.inject(t, topo, hosts):
                seen.add(event.attack_type)
        assert seen == {"cpu_overload", "ram_contention", "disk_attack", "ddos_attack"}

    def test_attack_axis_mapping(self):
        assert ATTACK_AXIS["cpu_overload"] == "cpu"
        assert ATTACK_AXIS["ram_contention"] == "ram"
        assert ATTACK_AXIS["disk_attack"] == "disk"
        assert ATTACK_AXIS["ddos_attack"] == "net"

    def test_intensity_within_bounds(self, topo, hosts, injector):
        for t in range(50):
            for event in injector.inject(t, topo, hosts):
                low, high = ATTACK_INTENSITY[event.attack_type]
                assert low <= event.intensity <= high

    def test_loads_applied_to_hosts(self, topo, hosts, injector):
        for t in range(20):
            injector.inject(t, topo, hosts)
        injector.apply_loads(hosts)
        total = sum(sum(h.fault_load.values()) for h in hosts)
        assert total > 0

    def test_decay_expires_attacks(self, topo, hosts, injector):
        for t in range(10):
            injector.inject(t, topo, hosts)
        for _ in range(5):
            injector.decay()
        injector.apply_loads(hosts)
        assert all(sum(h.fault_load.values()) == 0 for h in hosts)

    def test_broker_bias(self, topo, hosts):
        injector = FaultInjector(
            FaultConfig(rate=2.0), np.random.default_rng(2), broker_bias=1.0
        )
        for t in range(50):
            for event in injector.inject(t, topo, hosts):
                assert event.target in topo.brokers

    def test_check_failures_crashes_overloaded(self, topo, hosts, injector):
        hosts[0].compute_utilisation({"cpu": 9000.0})
        failed = injector.check_failures(hosts, topo)
        assert failed == [0]
        assert not hosts[0].alive

    def test_check_failures_skips_healthy(self, topo, hosts, injector):
        for host in hosts:
            host.compute_utilisation({"cpu": 1000.0})
        assert injector.check_failures(hosts, topo) == []

    def test_recovery_draw_in_bounds(self, injector):
        for _ in range(100):
            seconds = injector.draw_recovery_seconds()
            assert 60.0 <= seconds <= 300.0

    def test_clear_host(self, topo, hosts, injector):
        for t in range(20):
            injector.inject(t, topo, hosts)
        target = injector.history[0].target
        injector.clear_host(target)
        injector.apply_loads(hosts)
        assert sum(hosts[target].fault_load.values()) == 0.0


class TestFaultModelPlugins:
    def test_default_models_for_stock_config(self):
        models = default_fault_models(FaultConfig(rate=0.5))
        assert [type(m) for m in models] == [PoissonAttackModel]

    def test_default_models_for_full_campaign(self):
        config = FaultConfig(
            rate=0.5, correlated_rate=0.2, correlated_group_size=2,
            cascade_probability=0.3, partition_rate=0.1,
            partition_fraction=0.5, surge_rate=0.1, surge_multiplier=2.0,
        )
        models = default_fault_models(config)
        assert [type(m) for m in models] == [
            PoissonAttackModel,
            CorrelatedGroupAttackModel,
            CascadeAttackModel,
            PartitionFaultModel,
            ArrivalSurgeModel,
        ]

    def test_fault_free_config_has_no_models(self):
        assert default_fault_models(FaultConfig(rate=0.0)) == []

    def test_events_tagged_with_model(self, topo, hosts):
        injector = FaultInjector(FaultConfig(rate=2.0), np.random.default_rng(0))
        events = []
        for t in range(20):
            events.extend(injector.inject(t, topo, hosts))
        assert events and all(e.model == "poisson" for e in events)


class TestCorrelatedAttacks:
    @pytest.fixture
    def injector(self):
        config = FaultConfig(
            rate=0.0, correlated_rate=1.0, correlated_group_size=4
        )
        return FaultInjector(config, np.random.default_rng(0))

    def test_groups_share_rack_type_and_intensity(self, topo, hosts, injector):
        for t in range(30):
            events = injector.inject(t, topo, hosts)
            if not events:
                continue
            racks = {e.target // 4 for e in events}
            # One event may hit several racks only via several draws;
            # every burst shares attack type/intensity within its rack.
            by_intensity = {}
            for event in events:
                by_intensity.setdefault(event.intensity, []).append(event)
            for burst in by_intensity.values():
                assert len({e.attack_type for e in burst}) == 1
                assert len({e.target // 4 for e in burst}) == 1
                assert len({e.target for e in burst}) == len(burst)
            assert all(e.model == "correlated" for e in events)
            assert racks <= {0, 1}

    def test_whole_live_rack_is_hit(self, topo, hosts):
        config = FaultConfig(
            rate=0.0, correlated_rate=5.0, correlated_group_size=4
        )
        injector = FaultInjector(config, np.random.default_rng(3))
        events = injector.inject(0, topo, hosts)
        assert events
        bursts = {}
        for event in events:
            bursts.setdefault((event.intensity, event.target // 4), set()).add(
                event.target
            )
        for (_, rack), targets in bursts.items():
            expected = {h for h in range(8) if h // 4 == rack}
            assert targets == expected


class TestCascadeAttacks:
    def test_neighbors_recorded_on_failure(self, topo, hosts):
        config = FaultConfig(rate=0.0, cascade_probability=1.0)
        injector = FaultInjector(config, np.random.default_rng(0))
        hosts[0].compute_utilisation({"cpu": 9000.0})  # broker 0 overloads
        failed = injector.check_failures(hosts, topo)
        assert failed == [0]
        # Broker 0's LEI plus the other broker, minus the failed host.
        assert injector.recent_failure_neighbors == set(topo.lei(0)) | {1}

    def test_cascade_targets_neighbors_next_interval(self, topo, hosts):
        config = FaultConfig(
            rate=0.0, cascade_probability=1.0, cascade_intensity=0.9
        )
        injector = FaultInjector(config, np.random.default_rng(0))
        hosts[0].compute_utilisation({"cpu": 9000.0})
        injector.check_failures(hosts, topo)
        neighbors = set(injector.recent_failure_neighbors)
        events = injector.inject(1, topo, hosts)
        cascades = [e for e in events if e.model == "cascade"]
        assert cascades
        assert {e.target for e in cascades} <= neighbors
        # Dead hosts are never cascade targets.
        assert all(e.target != 0 for e in cascades)
        # Triggers are consumed: the next interval is quiet.
        assert injector.inject(2, topo, hosts) == []

    def test_worker_failure_hits_its_broker(self, topo, hosts):
        config = FaultConfig(rate=0.0, cascade_probability=1.0)
        injector = FaultInjector(config, np.random.default_rng(0))
        hosts[5].compute_utilisation({"cpu": 9000.0})
        injector.check_failures(hosts, topo)
        assert injector.recent_failure_neighbors == {topo.assignment[5]}

    def test_zero_probability_never_fires(self, topo, hosts):
        model = CascadeAttackModel(probability=0.0)
        injector = FaultInjector(
            FaultConfig(rate=0.0), np.random.default_rng(0), models=[model]
        )
        injector.recent_failure_neighbors = {1, 2}
        assert injector.inject(1, topo, hosts) == []


class TestPartitionFaults:
    def test_partition_severs_expected_fraction(self, topo, hosts):
        config = FaultConfig(
            rate=0.0, partition_rate=50.0, partition_fraction=0.5,
            partition_duration=2,
        )
        injector = FaultInjector(config, np.random.default_rng(0))
        events = injector.inject(0, topo, hosts)
        partitions = [e for e in events if e.model == "partition"]
        assert partitions
        first_burst = partitions[:4]
        assert len({e.target for e in first_burst}) == 4  # 0.5 * 8 hosts
        for event in partitions:
            assert event.axis == "net"
            assert event.intensity == PARTITION_INTENSITY
            assert event.intensity > config.failure_threshold
            assert event.duration == 2

    def test_partitioned_hosts_fail_together(self, topo, hosts):
        config = FaultConfig(
            rate=0.0, partition_rate=50.0, partition_fraction=0.4
        )
        injector = FaultInjector(config, np.random.default_rng(1))
        events = injector.inject(0, topo, hosts)
        injector.apply_loads(hosts)
        for host in hosts:
            host.compute_utilisation({})
        failed = injector.check_failures(hosts, topo)
        assert set(failed) >= {e.target for e in events[:3]}

    def test_single_partition_never_severs_everyone(self, topo, hosts):
        model = PartitionFaultModel(rate=10.0, fraction=0.99)
        injector = FaultInjector(
            FaultConfig(rate=0.0), np.random.default_rng(0), models=[model]
        )
        events = injector.inject(0, topo, hosts)
        assert events
        # fraction=0.99 rounds to the whole fleet but each event is
        # capped at n-1: a partition always leaves a surviving side.
        burst = {e.target for e in events[: len(hosts) - 1]}
        assert len(burst) == len(hosts) - 1


class TestArrivalSurges:
    def test_surge_effective_for_duration_intervals(self, topo, hosts):
        """Engine ordering: arrivals are drawn before faults are sampled
        and ``decay`` closes each interval, so a duration-2 surge fired
        in interval t must cover the draws of t+1 and t+2 exactly."""
        config = FaultConfig(
            rate=0.0, surge_rate=50.0, surge_multiplier=3.0, surge_duration=2
        )
        injector = FaultInjector(config, np.random.default_rng(0))
        # Interval t: draw (pre-surge), sample, close.
        assert injector.arrival_multiplier() == 1.0
        events = injector.inject(0, topo, hosts)
        surges = [e for e in events if e.model == "surge"]
        assert surges and all(e.target == -1 for e in surges)
        injector.decay()
        expected = pytest.approx(3.0 ** len(surges))
        # Intervals t+1 and t+2 draw under the surge...
        assert injector.arrival_multiplier() == expected
        injector.decay()
        assert injector.arrival_multiplier() == expected
        injector.decay()
        # ...and t+3 is back to normal.
        assert injector.arrival_multiplier() == 1.0

    def test_duration_one_surge_still_has_effect(self, topo, hosts):
        config = FaultConfig(
            rate=0.0, surge_rate=50.0, surge_multiplier=2.0, surge_duration=1
        )
        injector = FaultInjector(config, np.random.default_rng(0))
        injector.inject(0, topo, hosts)
        injector.decay()
        assert injector.arrival_multiplier() > 1.0
        injector.decay()
        assert injector.arrival_multiplier() == 1.0

    def test_surge_events_touch_no_host(self, topo, hosts):
        config = FaultConfig(
            rate=0.0, surge_rate=50.0, surge_multiplier=2.0
        )
        injector = FaultInjector(config, np.random.default_rng(0))
        injector.inject(0, topo, hosts)
        injector.apply_loads(hosts)
        assert all(sum(h.fault_load.values()) == 0.0 for h in hosts)


class TestDetection:
    def test_detects_dead_broker(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng, audit_failure_probability=0.0)
        hosts[0].crash(120.0)
        report = protocol.detect(1, topo, hosts)
        assert report.failed_brokers == (0,)
        assert report.any_broker_failed

    def test_detects_dead_worker(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng, audit_failure_probability=0.0)
        hosts[5].crash(120.0)
        report = protocol.detect(1, topo, hosts)
        assert 5 in report.failed_workers
        assert not report.any_broker_failed

    def test_detection_delay(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng)
        report = protocol.detect(1, topo, hosts)
        assert report.detection_delay_seconds == pytest.approx(25.0)

    def test_audit_flags_attacked_broker(self, topo, hosts):
        protocol = DetectionProtocol(
            np.random.default_rng(0), audit_failure_probability=1.0
        )
        hosts[0].fault_load["cpu"] = 0.5
        report = protocol.detect(1, topo, hosts)
        assert 0 in report.audit_failures
        assert 0 in report.failed_brokers

    def test_healthy_system_clean_report(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng, audit_failure_probability=0.0)
        report = protocol.detect(1, topo, hosts)
        assert report.all_failed == ()


class TestRecovery:
    def test_strip_failed_removes_dead(self, topo, hosts):
        hosts[5].crash(60.0)
        result = strip_failed(topo, hosts)
        assert 5 not in result.attached

    def test_reattach_recovered_to_closest(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        stripped = topo.detach(5)
        result = reattach_recovered(stripped, hosts, network)
        assert 5 in result.assignment
        assert result.assignment[5] in topo.brokers

    def test_ensure_brokered_promotes_when_all_brokers_dead(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        hosts[0].crash(60.0)
        hosts[1].crash(60.0)
        result = ensure_brokered(topo, hosts, network)
        live_brokers = [b for b in result.brokers if hosts[b].alive]
        assert live_brokers
        # Every live host is attached.
        live = {h.host_id for h in hosts if h.alive}
        assert live <= result.attached

    def test_ensure_brokered_total_outage_is_graceful(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        for host in hosts:
            host.crash(60.0)
        result = ensure_brokered(topo, hosts, network)
        assert isinstance(result, Topology)

    def test_ensure_brokered_noop_when_healthy(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        assert ensure_brokered(topo, hosts, network) == topo


class TestNetworkModel:
    def test_latency_symmetric_zero_diagonal(self, rng):
        network = NetworkModel(6, 2, rng)
        np.testing.assert_allclose(network.latency, network.latency.T)
        np.testing.assert_allclose(np.diag(network.latency), 0.0)

    def test_transfer_time_includes_serialisation(self, rng):
        network = NetworkModel(4, 2, rng, link_mbps=1000.0)
        transfer = network.transfer_seconds(0, 1, megabytes=125.0)
        # 125 MB over 1 Gbps = 1 s plus latency.
        assert transfer > 1.0
        assert network.transfer_seconds(0, 0, 125.0) == 0.0

    def test_transfer_rejects_negative(self, rng):
        network = NetworkModel(4, 2, rng)
        with pytest.raises(ValueError):
            network.transfer_seconds(0, 1, -1.0)

    def test_closest_host(self, rng):
        network = NetworkModel(6, 2, rng)
        position = network.positions[3]
        assert network.closest_host(position, [3, 0]) == 3

    def test_closest_requires_candidates(self, rng):
        network = NetworkModel(4, 2, rng)
        with pytest.raises(ValueError):
            network.closest_host(np.zeros(2), [])
