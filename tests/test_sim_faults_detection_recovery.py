"""Fault injection, failure detection and recovery."""

import numpy as np
import pytest

from repro.config import FaultConfig
from repro.simulator import (
    DetectionProtocol,
    FaultInjector,
    NetworkModel,
    Topology,
    ensure_brokered,
    initial_topology,
    make_pi_cluster,
    reattach_recovered,
    strip_failed,
)
from repro.simulator.faults import ATTACK_AXIS, ATTACK_INTENSITY


@pytest.fixture
def hosts():
    return make_pi_cluster(8, 4)


@pytest.fixture
def topo():
    return initial_topology(8, 2)


@pytest.fixture
def injector(rng):
    return FaultInjector(FaultConfig(rate=1.0), rng)


class TestFaultInjection:
    def test_attack_rate(self, topo, hosts):
        injector = FaultInjector(FaultConfig(rate=0.5), np.random.default_rng(0))
        counts = [
            len(injector.inject(t, topo, hosts)) for t in range(400)
        ]
        assert np.mean(counts) == pytest.approx(0.5, rel=0.2)

    def test_attack_types_cover_paper_set(self, topo, hosts):
        injector = FaultInjector(FaultConfig(rate=3.0), np.random.default_rng(1))
        seen = set()
        for t in range(100):
            for event in injector.inject(t, topo, hosts):
                seen.add(event.attack_type)
        assert seen == {"cpu_overload", "ram_contention", "disk_attack", "ddos_attack"}

    def test_attack_axis_mapping(self):
        assert ATTACK_AXIS["cpu_overload"] == "cpu"
        assert ATTACK_AXIS["ram_contention"] == "ram"
        assert ATTACK_AXIS["disk_attack"] == "disk"
        assert ATTACK_AXIS["ddos_attack"] == "net"

    def test_intensity_within_bounds(self, topo, hosts, injector):
        for t in range(50):
            for event in injector.inject(t, topo, hosts):
                low, high = ATTACK_INTENSITY[event.attack_type]
                assert low <= event.intensity <= high

    def test_loads_applied_to_hosts(self, topo, hosts, injector):
        for t in range(20):
            injector.inject(t, topo, hosts)
        injector.apply_loads(hosts)
        total = sum(sum(h.fault_load.values()) for h in hosts)
        assert total > 0

    def test_decay_expires_attacks(self, topo, hosts, injector):
        for t in range(10):
            injector.inject(t, topo, hosts)
        for _ in range(5):
            injector.decay()
        injector.apply_loads(hosts)
        assert all(sum(h.fault_load.values()) == 0 for h in hosts)

    def test_broker_bias(self, topo, hosts):
        injector = FaultInjector(
            FaultConfig(rate=2.0), np.random.default_rng(2), broker_bias=1.0
        )
        for t in range(50):
            for event in injector.inject(t, topo, hosts):
                assert event.target in topo.brokers

    def test_check_failures_crashes_overloaded(self, topo, hosts, injector):
        hosts[0].compute_utilisation({"cpu": 9000.0})
        failed = injector.check_failures(hosts, topo)
        assert failed == [0]
        assert not hosts[0].alive

    def test_check_failures_skips_healthy(self, topo, hosts, injector):
        for host in hosts:
            host.compute_utilisation({"cpu": 1000.0})
        assert injector.check_failures(hosts, topo) == []

    def test_recovery_draw_in_bounds(self, injector):
        for _ in range(100):
            seconds = injector.draw_recovery_seconds()
            assert 60.0 <= seconds <= 300.0

    def test_clear_host(self, topo, hosts, injector):
        for t in range(20):
            injector.inject(t, topo, hosts)
        target = injector.history[0].target
        injector.clear_host(target)
        injector.apply_loads(hosts)
        assert sum(hosts[target].fault_load.values()) == 0.0


class TestDetection:
    def test_detects_dead_broker(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng, audit_failure_probability=0.0)
        hosts[0].crash(120.0)
        report = protocol.detect(1, topo, hosts)
        assert report.failed_brokers == (0,)
        assert report.any_broker_failed

    def test_detects_dead_worker(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng, audit_failure_probability=0.0)
        hosts[5].crash(120.0)
        report = protocol.detect(1, topo, hosts)
        assert 5 in report.failed_workers
        assert not report.any_broker_failed

    def test_detection_delay(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng)
        report = protocol.detect(1, topo, hosts)
        assert report.detection_delay_seconds == pytest.approx(25.0)

    def test_audit_flags_attacked_broker(self, topo, hosts):
        protocol = DetectionProtocol(
            np.random.default_rng(0), audit_failure_probability=1.0
        )
        hosts[0].fault_load["cpu"] = 0.5
        report = protocol.detect(1, topo, hosts)
        assert 0 in report.audit_failures
        assert 0 in report.failed_brokers

    def test_healthy_system_clean_report(self, topo, hosts, rng):
        protocol = DetectionProtocol(rng, audit_failure_probability=0.0)
        report = protocol.detect(1, topo, hosts)
        assert report.all_failed == ()


class TestRecovery:
    def test_strip_failed_removes_dead(self, topo, hosts):
        hosts[5].crash(60.0)
        result = strip_failed(topo, hosts)
        assert 5 not in result.attached

    def test_reattach_recovered_to_closest(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        stripped = topo.detach(5)
        result = reattach_recovered(stripped, hosts, network)
        assert 5 in result.assignment
        assert result.assignment[5] in topo.brokers

    def test_ensure_brokered_promotes_when_all_brokers_dead(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        hosts[0].crash(60.0)
        hosts[1].crash(60.0)
        result = ensure_brokered(topo, hosts, network)
        live_brokers = [b for b in result.brokers if hosts[b].alive]
        assert live_brokers
        # Every live host is attached.
        live = {h.host_id for h in hosts if h.alive}
        assert live <= result.attached

    def test_ensure_brokered_total_outage_is_graceful(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        for host in hosts:
            host.crash(60.0)
        result = ensure_brokered(topo, hosts, network)
        assert isinstance(result, Topology)

    def test_ensure_brokered_noop_when_healthy(self, topo, hosts, rng):
        network = NetworkModel(8, 2, rng)
        assert ensure_brokered(topo, hosts, network) == topo


class TestNetworkModel:
    def test_latency_symmetric_zero_diagonal(self, rng):
        network = NetworkModel(6, 2, rng)
        np.testing.assert_allclose(network.latency, network.latency.T)
        np.testing.assert_allclose(np.diag(network.latency), 0.0)

    def test_transfer_time_includes_serialisation(self, rng):
        network = NetworkModel(4, 2, rng, link_mbps=1000.0)
        transfer = network.transfer_seconds(0, 1, megabytes=125.0)
        # 125 MB over 1 Gbps = 1 s plus latency.
        assert transfer > 1.0
        assert network.transfer_seconds(0, 0, 125.0) == 0.0

    def test_transfer_rejects_negative(self, rng):
        network = NetworkModel(4, 2, rng)
        with pytest.raises(ValueError):
            network.transfer_seconds(0, 1, -1.0)

    def test_closest_host(self, rng):
        network = NetworkModel(6, 2, rng)
        position = network.positions[3]
        assert network.closest_host(position, [3, 0]) == 3

    def test_closest_requires_candidates(self, rng):
        network = NetworkModel(4, 2, rng)
        with pytest.raises(ValueError):
            network.closest_host(np.zeros(2), [])
