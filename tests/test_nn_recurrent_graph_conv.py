"""LSTM, graph attention and Conv1d layers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv1d,
    GraphAttention,
    GraphEncoder,
    LSTM,
    LSTMAutoencoder,
    LSTMCell,
    Tensor,
    adjacency_with_self_loops,
    max_pool1d,
    mse_loss,
)


class TestLSTM:
    def test_cell_shapes_unbatched(self, rng):
        cell = LSTMCell(3, 5, rng)
        h, c = cell(Tensor(np.ones(3)))
        assert h.shape == (5,) and c.shape == (5,)

    def test_cell_shapes_batched(self, rng):
        cell = LSTMCell(3, 5, rng)
        h, c = cell(Tensor(np.ones((7, 3))))
        assert h.shape == (7, 5) and c.shape == (7, 5)

    def test_forget_bias_initialised_to_one(self, rng):
        cell = LSTMCell(2, 4, rng)
        np.testing.assert_array_equal(cell.bias.data[4:8], np.ones(4))

    def test_sequence_output_shape(self, rng):
        lstm = LSTM(3, 6, rng)
        outputs, (h, c) = lstm(Tensor(np.ones((10, 3))))
        assert outputs.shape == (10, 6)
        assert h.shape == (6,)

    def test_state_threads_through_time(self, rng):
        lstm = LSTM(2, 4, rng)
        seq = Tensor(np.random.default_rng(0).normal(size=(5, 2)))
        outputs, _ = lstm(seq)
        # Hidden state evolves: consecutive outputs differ.
        assert not np.allclose(outputs.data[0], outputs.data[-1])

    def test_gradient_reaches_input(self, rng):
        lstm = LSTM(2, 4, rng)
        seq = Tensor(np.ones((5, 2)), requires_grad=True)
        outputs, _ = lstm(seq)
        outputs.sum().backward()
        assert seq.grad is not None and np.abs(seq.grad).sum() > 0

    def test_lstm_learns_to_sum(self, rng):
        """Regression check: fit the cumulative mean of a short sequence."""
        lstm = LSTM(1, 8, rng)
        from repro.nn import Linear

        head = Linear(8, 1, rng)
        opt = Adam(lstm.parameters() + head.parameters(), lr=0.02, weight_decay=0)
        data_rng = np.random.default_rng(1)
        losses = []
        for _ in range(150):
            seq = data_rng.uniform(size=(6, 1))
            target = np.array([seq.mean()])
            opt.zero_grad()
            _, (h, _c) = lstm(Tensor(seq))
            loss = mse_loss(head(h), target)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert np.mean(losses[-20:]) < np.mean(losses[:20])

    def test_autoencoder_shapes(self, rng):
        ae = LSTMAutoencoder(4, 8, rng)
        seq = np.random.default_rng(0).normal(size=(6, 4))
        out = ae(Tensor(seq))
        assert out.shape == (6, 4)


class TestGraphAttention:
    def test_output_shape_and_range(self, rng):
        layer = GraphAttention(4, 8, rng)
        adjacency = np.array([[0, 1], [1, 0]], float)
        out = layer(Tensor(np.ones((2, 4))), adjacency)
        assert out.shape == (2, 8)
        assert np.all(out.data >= 0) and np.all(out.data <= 1)

    def test_self_loops_added(self):
        adjacency = np.zeros((3, 3))
        looped = adjacency_with_self_loops(adjacency)
        np.testing.assert_array_equal(np.diag(looped), np.ones(3))
        # Original untouched.
        assert adjacency[0, 0] == 0.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            adjacency_with_self_loops(np.zeros((2, 3)))

    def test_isolated_node_gets_own_features_only(self, rng):
        layer = GraphAttention(2, 4, rng)
        features = np.array([[1.0, 0.0], [0.0, 1.0], [5.0, 5.0]])
        # Node 2 is isolated; nodes 0-1 are connected.
        adjacency = np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], float)
        out_with = layer(Tensor(features), adjacency)
        features_changed = features.copy()
        features_changed[0] = [9.0, 9.0]
        out_changed = layer(Tensor(features_changed), adjacency)
        # Changing node 0 must not change isolated node 2's embedding.
        np.testing.assert_allclose(out_with.data[2], out_changed.data[2])
        # But it must change node 1's (its neighbour).
        assert not np.allclose(out_with.data[1], out_changed.data[1])

    def test_mismatched_features_rejected(self, rng):
        layer = GraphAttention(2, 4, rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((3, 2))), np.zeros((2, 2)))

    def test_gradient_flows_to_features(self, rng):
        layer = GraphAttention(3, 5, rng)
        features = Tensor(np.ones((4, 3)), requires_grad=True)
        adjacency = np.ones((4, 4)) - np.eye(4)
        layer(features, adjacency).sum().backward()
        assert features.grad is not None
        assert np.abs(features.grad).sum() > 0

    def test_encoder_pools_to_fixed_size(self, rng):
        encoder = GraphEncoder(3, 8, rng, layers=2)
        for n_nodes in (2, 5, 9):
            adjacency = np.ones((n_nodes, n_nodes)) - np.eye(n_nodes)
            out = encoder(Tensor(np.ones((n_nodes, 3))), adjacency)
            assert out.shape == (8,)

    def test_encoder_rejects_zero_layers(self, rng):
        with pytest.raises(ValueError):
            GraphEncoder(3, 8, rng, layers=0)


class TestConv1d:
    def test_output_shape_with_padding(self, rng):
        conv = Conv1d(2, 3, 3, rng, padding=1)
        out = conv(Tensor(np.ones((2, 10))))
        assert out.shape == (3, 10)

    def test_output_shape_no_padding(self, rng):
        conv = Conv1d(1, 1, 3, rng)
        out = conv(Tensor(np.ones((1, 10))))
        assert out.shape == (1, 8)

    def test_matches_manual_convolution(self, rng):
        conv = Conv1d(1, 1, 3, rng)
        kernel = conv.weight.data.reshape(3)
        bias = conv.bias.data.item()
        signal = np.arange(8.0)
        out = conv(Tensor(signal.reshape(1, 8))).data.reshape(-1)
        expected = np.array(
            [signal[i:i + 3] @ kernel + bias for i in range(6)]
        )
        np.testing.assert_allclose(out, expected)

    def test_rejects_wrong_channels(self, rng):
        conv = Conv1d(2, 3, 3, rng)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((3, 10))))

    def test_rejects_too_short_input(self, rng):
        conv = Conv1d(1, 1, 5, rng)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((1, 3))))

    def test_gradient_flows(self, rng):
        conv = Conv1d(2, 4, 3, rng, padding=1)
        x = Tensor(np.ones((2, 6)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None

    def test_max_pool_values(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0, 8.0, 3.0]]))
        out = max_pool1d(x, 2)
        np.testing.assert_array_equal(out.data, [[5.0, 8.0]])

    def test_max_pool_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            max_pool1d(Tensor(np.ones((1, 2))), 4)
