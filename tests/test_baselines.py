"""All seven baselines plus the shared fuzzy/GA substrates."""

import numpy as np
import pytest

from repro.baselines import (
    DYVERSE,
    ECLB,
    ELBS,
    FRAS,
    FuzzyRule,
    FuzzySystem,
    FuzzyVariable,
    GAConfig,
    GaussianNaiveBayes,
    GeneticAlgorithm,
    LBOS,
    PNNSurrogate,
    StepGAN,
    TopoMAD,
    TriangularMF,
    build_priority_system,
)
from repro.experiments import run_experiment
from repro.simulator import EdgeFederation


class TestFuzzySubstrate:
    def test_triangular_peak_and_feet(self):
        mf = TriangularMF(0.0, 0.5, 1.0)
        assert mf(0.5) == 1.0
        assert mf(0.0) == 0.0
        assert mf(0.25) == pytest.approx(0.5)

    def test_shoulder_saturation(self):
        left = TriangularMF(0.0, 0.0, 1.0)
        assert left(-5.0) == 1.0
        right = TriangularMF(0.0, 1.0, 1.0)
        assert right(5.0) == 1.0

    def test_mf_validation(self):
        with pytest.raises(ValueError):
            TriangularMF(1.0, 0.5, 0.0)

    def test_uniform_variable_covers_range(self):
        var = FuzzyVariable.uniform("x", ("low", "mid", "high"), 0.0, 1.0)
        memberships = var.fuzzify(0.5)
        assert memberships["mid"] == pytest.approx(1.0)
        assert var.fuzzify(0.0)["low"] == pytest.approx(1.0)

    def test_rule_strength_min_and(self):
        var = FuzzyVariable.uniform("x", ("low", "high"), 0.0, 1.0)
        rule = FuzzyRule((("x", "low"), ("x", "high")), "out")
        memberships = {"x": {"low": 0.3, "high": 0.8}}
        assert rule.strength(memberships) == pytest.approx(0.3)

    def test_inference_bounded_by_output_range(self):
        system = build_priority_system()
        for d in (0.0, 0.5, 1.0):
            score = system.infer({"deadline": d, "priority": 0.5, "proc_time": 0.5})
            assert 0.0 <= score <= 1.0

    def test_tight_deadline_scores_higher(self):
        system = build_priority_system()
        tight = system.infer({"deadline": 0.05, "priority": 0.5, "proc_time": 0.5})
        loose = system.infer({"deadline": 0.95, "priority": 0.1, "proc_time": 0.1})
        assert tight > loose

    def test_unknown_rule_terms_rejected(self):
        var = FuzzyVariable.uniform("x", ("low", "high"), 0, 1)
        out = FuzzyVariable.uniform("y", ("a", "b"), 0, 1)
        with pytest.raises(KeyError):
            FuzzySystem([var], out, [FuzzyRule((("x", "bogus"),), "a")])
        with pytest.raises(KeyError):
            FuzzySystem([var], out, [FuzzyRule((("x", "low"),), "bogus")])


class TestGeneticAlgorithm:
    def test_maximises_simple_function(self, rng):
        target = np.array([0.7, 0.2, 0.9])

        def fitness(v):
            return -float(((v - target) ** 2).sum())

        ga = GeneticAlgorithm(
            3, fitness, rng, GAConfig(population_size=24, generations=20)
        )
        best, score = ga.run()
        assert score > -0.05
        np.testing.assert_allclose(best, target, atol=0.25)

    def test_respects_bounds(self, rng):
        ga = GeneticAlgorithm(
            4, lambda v: float(v.sum()), rng,
            GAConfig(population_size=10, generations=5, lower=0.0, upper=1.0),
        )
        best, _ = ga.run()
        assert np.all(best >= 0.0) and np.all(best <= 1.0)

    def test_elitism_keeps_best(self, rng):
        calls = []

        def fitness(v):
            calls.append(v.copy())
            return float(v[0])

        ga = GeneticAlgorithm(1, fitness, rng,
                              GAConfig(population_size=8, generations=6))
        _, score = ga.run()
        best_seen = max(float(c[0]) for c in calls)
        assert score == pytest.approx(best_seen)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=1)
        with pytest.raises(ValueError):
            GAConfig(lower=1.0, upper=0.0)


class TestNaiveBayes:
    def test_threshold_fallback_before_training(self):
        clf = GaussianNaiveBayes(4)
        assert clf.predict(np.array([0.9, 0, 0, 0])) == "overloaded"
        assert clf.predict(np.array([0.1, 0, 0, 0])) == "underloaded"
        assert clf.predict(np.array([0.5, 0, 0, 0])) == "normal"

    def test_learns_from_labels(self):
        clf = GaussianNaiveBayes(2)
        rng = np.random.default_rng(0)
        for _ in range(100):
            clf.update(np.array([0.9, 0.8]) + 0.05 * rng.normal(2), "overloaded")
            clf.update(np.array([0.1, 0.2]) + 0.05 * rng.normal(2), "underloaded")
            clf.update(np.array([0.5, 0.5]) + 0.05 * rng.normal(2), "normal")
        assert clf.predict(np.array([0.92, 0.85])) == "overloaded"
        assert clf.predict(np.array([0.05, 0.15])) == "underloaded"

    def test_rejects_unknown_label(self):
        with pytest.raises(KeyError):
            GaussianNaiveBayes(2).update(np.zeros(2), "bogus")


class TestPNN:
    def test_prediction_interpolates(self):
        pnn = PNNSurrogate(bandwidth=0.5)
        pnn.add(np.zeros(3), 0.0)
        pnn.add(np.ones(3), 1.0)
        mid = pnn.predict(np.full(3, 0.5))
        assert 0.2 < mid < 0.8

    def test_empty_predicts_zero(self):
        assert PNNSurrogate().predict(np.zeros(3)) == 0.0

    def test_capacity_evicts_oldest(self):
        pnn = PNNSurrogate(capacity=5)
        for i in range(10):
            pnn.add(np.full(2, float(i)), float(i))
        assert len(pnn) == 5

    def test_bandwidth_tuning_picks_candidate(self):
        pnn = PNNSurrogate(bandwidth=99.0)
        rng = np.random.default_rng(0)
        for _ in range(30):
            x = rng.uniform(size=2)
            pnn.add(x, float(x.sum()))
        chosen = pnn.tune_bandwidth(candidates=(0.1, 0.5))
        assert chosen in (0.1, 0.5)

    def test_memory_grows_with_exemplars(self):
        pnn = PNNSurrogate()
        before = pnn.memory_bytes()
        pnn.add(np.zeros(8), 1.0)
        assert pnn.memory_bytes() > before


def _drive(model, config, n=12):
    """Run a model through n intervals and sanity-check invariants."""
    federation = EdgeFederation(config)
    for _ in range(n):
        report = federation.begin_interval()
        proposal = federation.propose_topology()
        topology = model.repair(federation.view, report, proposal)
        live = {h.host_id for h in federation.hosts if h.alive}
        assert live <= topology.attached, f"{model.name} stranded live hosts"
        federation.set_topology(topology)
        metrics = federation.run_interval()
        model.observe(metrics, federation.view)
    return federation


@pytest.mark.parametrize("factory", [
    lambda: DYVERSE(),
    lambda: ECLB(),
    lambda: LBOS(seed=0),
    lambda: ELBS(),
    lambda: FRAS(seed=0, fit_steps_per_interval=2),
    lambda: TopoMAD(seed=0, fit_steps_per_interval=2),
    lambda: StepGAN(seed=0, adversarial_steps=1),
])
class TestBaselineContract:
    def test_valid_topologies_and_state(self, factory, small_config):
        model = factory()
        _drive(model, small_config)
        assert model.memory_bytes() > 0

    def test_full_run_summary(self, factory, small_config):
        from dataclasses import replace

        model = factory()
        config = replace(small_config, n_intervals=6)
        result = run_experiment(model, config)
        summary = result.summary()
        assert summary["energy_kwh"] > 0
        assert summary["decision_time_s"] >= 0
        assert summary["memory_percent"] > 0


class TestBaselineSpecifics:
    def test_dyverse_promotes_least_cpu_worker(self, small_config):
        model = DYVERSE()
        federation = _drive(model, small_config, n=8)
        assert model.priorities  # ensemble scores maintained

    def test_eclb_classifier_trains(self, small_config):
        model = ECLB()
        _drive(model, small_config, n=8)
        total = sum(model.classifier._counts.values())
        assert total >= 8 * small_config.federation.n_hosts

    def test_lbos_q_table_grows_and_weights_simplex(self, small_config):
        model = LBOS(seed=0, ga_period=3)
        _drive(model, small_config, n=10)
        assert len(model.q_table) >= 1
        assert model.weights.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(model.weights >= 0)

    def test_elbs_accumulates_exemplars(self, small_config):
        model = ELBS()
        _drive(model, small_config, n=10)
        assert len(model.surrogate) == 10

    def test_fras_window_grows(self, small_config):
        model = FRAS(seed=0, fit_steps_per_interval=1)
        _drive(model, small_config, n=10)
        assert len(model._window) == 10

    def test_topomad_scores_recorded(self, small_config):
        model = TopoMAD(seed=0, fit_steps_per_interval=1)
        _drive(model, small_config, n=10)
        assert len(model._scores) >= 5

    def test_topomad_training_reduces_reconstruction_error(self):
        from repro.baselines.topomad import LSTMVAE

        vae = LSTMVAE(hidden=16, seed=0)
        rng = np.random.default_rng(0)
        window = rng.uniform(0.2, 0.4, size=(8, 6))
        before = vae.reconstruction_error(window)
        for _ in range(60):
            vae.fit_step(window)
        after = vae.reconstruction_error(window)
        assert after < before

    def test_stepgan_scores_bounded(self, small_config):
        model = StepGAN(seed=0, adversarial_steps=1)
        _drive(model, small_config, n=10)
        assert all(0.0 <= s <= 1.0 for s in model._scores)

    def test_stepgan_prefix_curriculum_grows(self, small_config):
        model = StepGAN(seed=0, adversarial_steps=1)
        start = model._prefix
        _drive(model, small_config, n=10)
        assert model._prefix > start
