"""Failure matrix for the elastic fault-tolerant fleet (PR 8).

Exercises the lease-based cell queue end to end:

* :class:`CellCoordinator` unit semantics (FIFO leases, attempt
  numbering, first-wins completion, requeue-to-front on worker loss,
  poison quarantine at the retry budget);
* the elastic :meth:`GONScoringService.serve` loop driven over plain
  in-process queues (lease round trips, ``WorkerLost`` re-queue,
  dropped-reply injection, heartbeat-timeout eviction);
* TCP auth (token mismatch rejected before ``Welcome``, the accept
  loop surviving the rejection) and the configurable post-handshake
  read timeout;
* full campaign chaos: SIGKILL mid-cell, late-joining workers,
  poisoned cells, and duplicate-result delivery -- every surviving
  record must stay bit-identical to the serial reference;
* the ``POST /inject`` HTTP control plane and the ``export-gon`` CLI.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    fleet_ci_campaign_config,
    prepare_campaign_assets,
    run_campaign,
)
from repro.experiments.campaign import CampaignConfig, plan_tasks
from repro.experiments.fleet import run_fleet_campaign
from repro.serving import (
    CellCoordinator,
    CellDone,
    ClientDone,
    GONScoringService,
    LeaseGrant,
    LeaseRequest,
    Ping,
    StatusServer,
    TcpTransport,
    TcpWorkerChannel,
    TransportError,
    WorkerLost,
)


def _wait_for(predicate, timeout=30.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout}s waiting for {message}")


# ---------------------------------------------------------------------------
# CellCoordinator unit semantics
# ---------------------------------------------------------------------------


class TestCellCoordinator:
    def test_leases_cells_fifo_with_attempt_numbers(self):
        coord = CellCoordinator([5, 2, 9])
        assert coord.lease(0) == (5, 1, False)
        assert coord.lease(1) == (2, 1, False)
        assert coord.lease(0) == (9, 1, False)
        # Queue empty but cells still leased: wait, not drained.
        assert coord.lease(1) == (None, 0, False)
        assert not coord.finished

    def test_complete_is_first_wins_and_counts_duplicates(self):
        coord = CellCoordinator([7])
        coord.lease(0)
        assert coord.complete(7, worker_id=0)
        assert coord.completed == {7: 0}
        assert not coord.complete(7, worker_id=1)
        assert coord.completed == {7: 0}
        assert coord.duplicate_completions == 1
        assert coord.finished
        assert coord.lease(1) == (None, 0, True)

    def test_release_worker_requeues_to_front(self):
        coord = CellCoordinator([1, 2, 3])
        coord.lease(0)  # cell 1
        requeued, poisoned = coord.release_worker(0)
        assert requeued == [1]
        assert poisoned == []
        assert coord.requeued_total == 1
        # The revoked cell comes back before the untouched tail.
        assert coord.lease(1) == (1, 2, False)

    def test_poison_after_retry_budget_exhausted(self):
        coord = CellCoordinator([4], retry_budget=2)
        coord.lease(0)
        requeued, poisoned = coord.release_worker(0)
        assert (requeued, poisoned) == ([4], [])
        coord.lease(1)
        requeued, poisoned = coord.release_worker(1)
        assert (requeued, poisoned) == ([], [4])
        assert coord.poisoned == {4}
        # Poisoned cells count as resolved: the campaign can finish.
        assert coord.finished
        cell, attempt, drained = coord.lease(2)
        assert (cell, drained) == (None, True)

    def test_completion_unpoisons_a_cell(self):
        coord = CellCoordinator([4], retry_budget=1)
        coord.lease(0)
        coord.release_worker(0)
        assert coord.poisoned == {4}
        # A straggler's result still lands: real data beats quarantine.
        assert coord.complete(4, worker_id=0)
        assert coord.poisoned == set()
        assert coord.completed == {4: 0}

    def test_requeue_cell_injection_charges_no_failure(self):
        coord = CellCoordinator([6], retry_budget=1)
        coord.lease(0)
        assert coord.requeue_cell(6)
        assert not coord.requeue_cell(6)  # no longer leased
        assert coord.requeued_total == 1
        # No failure charged: with budget 1 the cell would otherwise
        # have been poisoned by this revocation.
        assert coord.poisoned == set()
        assert coord.lease(1) == (6, 2, False)

    def test_status_is_json_safe(self):
        coord = CellCoordinator([1, 2])
        coord.lease(0)
        json.dumps(coord.status())


# ---------------------------------------------------------------------------
# Elastic service loop over in-process queues
# ---------------------------------------------------------------------------


def _start_elastic_service(cells, n_clients, retry_budget=3, heartbeat_timeout=0.0):
    coordinator = CellCoordinator(cells, retry_budget=retry_budget)
    request_queue = queue.Queue()
    reply_queues = {i: queue.Queue() for i in range(n_clients)}
    service = GONScoringService(
        {},
        request_queue,
        reply_queues,
        poll_seconds=0.05,
        coordinator=coordinator,
        heartbeat_timeout=heartbeat_timeout,
    )
    thread = threading.Thread(target=service.serve, daemon=True)
    thread.start()
    return coordinator, service, request_queue, reply_queues, thread


class TestElasticServiceLoop:
    def test_lease_roundtrip_and_drain(self):
        coordinator, service, requests, replies, thread = _start_elastic_service(
            [3], n_clients=1
        )
        requests.put(LeaseRequest(client_id=0, request_id=1))
        grant = replies[0].get(timeout=5.0)
        assert isinstance(grant, LeaseGrant)
        assert (grant.request_id, grant.cell_id, grant.attempt) == (1, 3, 1)
        assert not grant.drained
        requests.put(CellDone(client_id=0, cell_id=3))
        requests.put(LeaseRequest(client_id=0, request_id=2))
        grant = replies[0].get(timeout=5.0)
        assert grant.drained
        assert grant.cell_id < 0
        assert grant.poisoned == ()
        requests.put(ClientDone(client_id=0))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert coordinator.completed == {3: 0}

    def test_worker_lost_requeues_lease_for_surviving_client(self):
        coordinator, service, requests, replies, thread = _start_elastic_service(
            [7], n_clients=2
        )
        requests.put(LeaseRequest(client_id=0, request_id=1))
        grant = replies[0].get(timeout=5.0)
        assert (grant.cell_id, grant.attempt) == (7, 1)
        requests.put(WorkerLost(client_id=0, reason="unit test kill"))
        requests.put(LeaseRequest(client_id=1, request_id=1))
        grant = replies[1].get(timeout=5.0)
        assert (grant.cell_id, grant.attempt) == (7, 2)
        requests.put(CellDone(client_id=1, cell_id=7))
        requests.put(LeaseRequest(client_id=1, request_id=2))
        assert replies[1].get(timeout=5.0).drained
        requests.put(ClientDone(client_id=1))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert service.lost == {0}
        assert service.signed_off == {1}
        assert coordinator.requeued_total == 1
        assert coordinator.completed == {7: 1}

    def test_dropped_reply_then_timeout_death_requeues(self):
        coordinator, service, requests, replies, thread = _start_elastic_service(
            [3], n_clients=2
        )
        service.inject_drop_next_reply(0)
        requests.put(LeaseRequest(client_id=0, request_id=1))
        with pytest.raises(queue.Empty):
            replies[0].get(timeout=0.4)
        assert service.replies_dropped == 1
        # The dropped grant still leased the cell; in production the
        # client dies on its read timeout and the watchdog reports it.
        requests.put(WorkerLost(client_id=0, reason="client read timeout"))
        requests.put(LeaseRequest(client_id=1, request_id=1))
        grant = replies[1].get(timeout=5.0)
        assert (grant.cell_id, grant.attempt) == (3, 2)
        requests.put(CellDone(client_id=1, cell_id=3))
        requests.put(LeaseRequest(client_id=1, request_id=2))
        assert replies[1].get(timeout=5.0).drained
        requests.put(ClientDone(client_id=1))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert coordinator.requeued_total == 1

    def test_heartbeat_timeout_evicts_silent_worker_and_poisons(self):
        coordinator, service, requests, replies, thread = _start_elastic_service(
            [0], n_clients=1, retry_budget=1, heartbeat_timeout=0.3
        )
        requests.put(LeaseRequest(client_id=0, request_id=1))
        grant = replies[0].get(timeout=5.0)
        assert grant.cell_id == 0
        # Go silent: no pings, no frames.  The liveness check must
        # declare the worker dead, poison its cell (budget 1), and
        # let the campaign finish instead of hanging forever.
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert service.lost == {0}
        assert coordinator.poisoned == {0}

    def test_pings_keep_a_slow_worker_alive(self):
        coordinator, service, requests, replies, thread = _start_elastic_service(
            [5], n_clients=1, heartbeat_timeout=0.5
        )
        requests.put(LeaseRequest(client_id=0, request_id=1))
        assert replies[0].get(timeout=5.0).cell_id == 5
        # Heartbeat for well past the timeout while "computing".
        for _ in range(8):
            time.sleep(0.15)
            requests.put(Ping(client_id=0))
        assert thread.is_alive()
        assert service.lost == set()
        requests.put(CellDone(client_id=0, cell_id=5))
        requests.put(ClientDone(client_id=0))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert coordinator.completed == {5: 0}


# ---------------------------------------------------------------------------
# TCP auth + read timeout
# ---------------------------------------------------------------------------


class TestTcpAuthAndTimeouts:
    def test_wrong_token_rejected_and_accept_loop_survives(self):
        transport = TcpTransport(
            1, asset_packs={}, asset_index={}, auth_token="hunter2", elastic=True
        )
        transport.start()
        try:
            with pytest.raises(TransportError, match="authentication"):
                TcpWorkerChannel(
                    transport.address, connect_timeout=5.0, auth_token="wrong"
                )
            assert transport.auth_rejections == 1
            # The accept loop survived the rejection: a correctly
            # authenticated worker still joins afterwards.
            channel = TcpWorkerChannel(
                transport.address, connect_timeout=5.0, auth_token="hunter2"
            )
            assert channel.client_id == 0
            channel.close()
        finally:
            transport.close()

    def test_missing_token_rejected_when_service_requires_one(self):
        transport = TcpTransport(
            1, asset_packs={}, asset_index={}, auth_token="hunter2", elastic=True
        )
        transport.start()
        try:
            with pytest.raises(TransportError, match="authentication"):
                TcpWorkerChannel(transport.address, connect_timeout=5.0)
        finally:
            transport.close()

    def test_read_timeout_fails_loudly_instead_of_hanging(self):
        transport = TcpTransport(1, asset_packs={}, asset_index={}, elastic=True)
        transport.start()
        channel = None
        try:
            channel = TcpWorkerChannel(
                transport.address, connect_timeout=5.0, read_timeout=0.3
            )
            started = time.monotonic()
            with pytest.raises(TransportError, match="read timeout"):
                channel.get()
            assert time.monotonic() - started < 5.0
        finally:
            if channel is not None:
                channel.close()
            transport.close()

    def test_heartbeats_do_not_count_as_activity(self):
        transport = TcpTransport(1, asset_packs={}, asset_index={}, elastic=True)
        transport.start()
        channel = None
        try:
            channel = TcpWorkerChannel(transport.address, connect_timeout=5.0)
            before = transport.last_activity
            channel.put(Ping(client_id=channel.client_id))
            time.sleep(0.3)
            assert transport.last_activity == before
            # A real frame does refresh the idle clock.
            channel.put(LeaseRequest(client_id=channel.client_id, request_id=1))
            _wait_for(
                lambda: transport.last_activity > before,
                timeout=5.0,
                message="last_activity refresh",
            )
        finally:
            if channel is not None:
                channel.close()
            transport.close()


# ---------------------------------------------------------------------------
# Campaign-level chaos: every surviving record bit-identical to serial
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def chaos_grid() -> CampaignConfig:
    return replace(fleet_ci_campaign_config(workers=3), n_seeds=3, transport="tcp")


@pytest.fixture(scope="module")
def chaos_assets(chaos_grid):
    return prepare_campaign_assets(chaos_grid)


@pytest.fixture(scope="module")
def serial_rows(chaos_grid, chaos_assets):
    serial = replace(chaos_grid, mode="process", workers=1, transport="queue")
    result = run_campaign(serial, prepared_assets=chaos_assets)
    return {record.run_index: record.row() for record in result.records}


def _rows_by_cell(records):
    return {record.run_index: record.row() for record in records}


class TestCampaignChaos:
    def test_sigkill_mid_cell_stays_bit_identical_to_serial(
        self, chaos_grid, chaos_assets, serial_rows
    ):
        tasks = plan_tasks(chaos_grid)
        state = {}

        def chaos(handle):
            # All three workers hold a lease => all are mid-cell.
            _wait_for(
                lambda: len(handle.coordinator.lease_view()) >= 3,
                message="three concurrent leases",
            )
            os.kill(handle.workers[0].pid, signal.SIGKILL)
            state["coordinator"] = handle.coordinator
            state["service"] = handle.service

        records = run_fleet_campaign(chaos_grid, tasks, chaos_assets, chaos=chaos)
        assert _rows_by_cell(records) == serial_rows
        assert len(state["service"].lost) >= 1
        assert state["coordinator"].requeued_total >= 1
        assert state["coordinator"].poisoned == set()

    def test_late_joining_worker_drains_running_queue(
        self, chaos_grid, chaos_assets, serial_rows
    ):
        solo = replace(chaos_grid, workers=1)
        tasks = plan_tasks(solo)
        state = {}

        def chaos(handle):
            _wait_for(
                lambda: len(handle.coordinator.lease_view()) >= 1,
                message="first lease granted",
            )
            # Slow the founding worker's replies so the joiner has
            # queued cells left to steal, then spawn the joiner into
            # the already-running campaign.
            handle.service.inject_delay(0, 0.2)
            state["joiner"] = handle.spawn_worker()
            _wait_for(
                lambda: len(set(handle.coordinator.completed.values())) >= 2
                or handle.coordinator.finished,
                timeout=120.0,
                message="late joiner to complete a cell",
            )
            handle.service.inject_delay(0, 0.0)
            state["coordinator"] = handle.coordinator

        records = run_fleet_campaign(solo, tasks, chaos_assets, chaos=chaos)
        assert _rows_by_cell(records) == serial_rows
        # Both the founder and the late joiner completed cells.
        assert len(set(state["coordinator"].completed.values())) == 2

    def test_poison_cell_quarantined_and_campaign_survives(
        self, chaos_grid, chaos_assets, serial_rows
    ):
        grid = replace(chaos_grid, cell_retry_budget=1)
        tasks = plan_tasks(grid)
        state = {}

        def chaos(handle):
            _wait_for(
                lambda: len(handle.coordinator.lease_view()) >= 3,
                message="three concurrent leases",
            )
            os.kill(handle.workers[0].pid, signal.SIGKILL)
            state["coordinator"] = handle.coordinator

        records = run_fleet_campaign(grid, tasks, chaos_assets, chaos=chaos)
        poisoned = state["coordinator"].poisoned
        assert len(poisoned) == 1
        expected = set(serial_rows) - poisoned
        got = _rows_by_cell(records)
        assert set(got) == expected
        assert got == {cell: serial_rows[cell] for cell in expected}

    def test_duplicate_results_after_forced_requeue_are_deduplicated(
        self, chaos_grid, chaos_assets, serial_rows
    ):
        tasks = plan_tasks(chaos_grid)
        state = {}

        def chaos(handle):
            coordinator = handle.coordinator
            state["coordinator"] = coordinator
            # Keep revoking live leases until a revoked attempt and
            # its re-run overlap: both then deliver a CellDone and the
            # coordinator must drop the second one.  A lone requeue
            # can resolve without overlap (the zombie finishes before
            # the cell is re-leased), so loop until the race lands.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and not coordinator.finished:
                if coordinator.duplicate_completions:
                    break
                for cell in sorted(coordinator.lease_view()):
                    coordinator.requeue_cell(cell)
                time.sleep(0.05)

        records = run_fleet_campaign(chaos_grid, tasks, chaos_assets, chaos=chaos)
        # Both the original lease holder and the re-lease worker ran
        # the cell; the coordinator kept the first result and the
        # parent deduplicated the record stream.
        assert _rows_by_cell(records) == serial_rows
        assert state["coordinator"].duplicate_completions >= 1


# ---------------------------------------------------------------------------
# POST /inject control plane plumbing
# ---------------------------------------------------------------------------


def _post(url: str, body: bytes):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    with urllib.request.urlopen(request, timeout=5.0) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestInjectEndpoint:
    def test_inject_roundtrip_and_error_codes(self):
        def handler(action, params):
            if action == "boom":
                raise ValueError("refused")
            return {"applied": action, "params": params}

        server = StatusServer(lambda: {"telemetry": {}}, inject_handler=handler).start()
        base = f"http://{server.address}"
        try:
            status, payload = _post(
                f"{base}/inject", json.dumps({"action": "kill_worker", "x": 1}).encode()
            )
            assert status == 200
            assert payload == {"applied": "kill_worker", "params": {"x": 1}}

            with pytest.raises(urllib.error.HTTPError) as err:
                _post(f"{base}/inject", json.dumps({"action": "boom"}).encode())
            assert err.value.code == 400

            with pytest.raises(urllib.error.HTTPError) as err:
                _post(f"{base}/inject", b"not json")
            assert err.value.code == 400

            with pytest.raises(urllib.error.HTTPError) as err:
                _post(f"{base}/inject", json.dumps({"no_action": 1}).encode())
            assert err.value.code == 400

            with pytest.raises(urllib.error.HTTPError) as err:
                _post(f"{base}/nope", json.dumps({"action": "x"}).encode())
            assert err.value.code == 404
        finally:
            server.close()

    def test_post_without_handler_is_rejected(self):
        server = StatusServer(lambda: {"telemetry": {}}).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(
                    f"http://{server.address}/inject",
                    json.dumps({"action": "kill_worker"}).encode(),
                )
            assert err.value.code == 405
        finally:
            server.close()


# ---------------------------------------------------------------------------
# export-gon CLI
# ---------------------------------------------------------------------------


def test_export_gon_cli_writes_verified_pack(tmp_path):
    from repro.__main__ import main

    output = tmp_path / "gon.npz"
    rc = main(
        [
            "export-gon",
            str(output),
            "--trace-intervals",
            "6",
            "--gon-hidden",
            "6",
            "--gon-epochs",
            "1",
        ]
    )
    assert rc == 0
    assert output.exists()
    with np.load(output) as archive:
        names = set(archive.files)
        assert "__meta__" in names
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        assert meta["scenario"] == "paper-default"
        arrays = names - {"__meta__"}
        assert arrays
        for name in arrays:
            assert archive[name].size > 0
