"""Losses and functional ops."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    bce_with_logits,
    binary_cross_entropy,
    kl_gaussian,
    l1_loss,
    log_softmax,
    mse_loss,
    relu,
    sigmoid,
    softmax,
    tanh,
)


class TestActivations:
    def test_relu_values(self):
        out = relu(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_bounds(self):
        out = sigmoid(np.array([-100.0, 0.0, 100.0]))
        assert 0.0 <= out.data[0] < 1e-6
        assert out.data[1] == pytest.approx(0.5)
        assert 1.0 - 1e-6 < out.data[2] <= 1.0

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 7)
        np.testing.assert_allclose(tanh(x).data, np.tanh(x))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        out = softmax(rng.normal(size=(4, 5)), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(
            softmax(x).data, softmax(x + 100.0).data, rtol=1e-10
        )

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), rtol=1e-10
        )

    def test_large_values_stable(self):
        out = softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.5, 0.5])


class TestLosses:
    def test_mse_zero_at_target(self):
        x = np.ones((3, 3))
        assert float(mse_loss(Tensor(x), x).data) == 0.0

    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert float(mse_loss(pred, np.array([0.0, 0.0])).data) == pytest.approx(2.5)

    def test_l1_value(self):
        pred = Tensor(np.array([1.0, -2.0]))
        assert float(l1_loss(pred, np.zeros(2)).data) == pytest.approx(1.5)

    def test_bce_perfect_prediction_near_zero(self):
        pred = Tensor(np.array([0.9999999, 0.0000001]))
        loss = binary_cross_entropy(pred, np.array([1.0, 0.0]))
        assert float(loss.data) < 1e-4

    def test_bce_wrong_prediction_large(self):
        pred = Tensor(np.array([0.01]))
        loss = binary_cross_entropy(pred, np.array([1.0]))
        assert float(loss.data) > 4.0

    def test_bce_survives_exact_zero_one(self):
        pred = Tensor(np.array([0.0, 1.0]))
        loss = binary_cross_entropy(pred, np.array([0.0, 1.0]))
        assert np.isfinite(loss.data)

    def test_bce_with_logits_matches_sigmoid_bce(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=8)
        targets = (rng.random(8) > 0.5).astype(float)
        direct = bce_with_logits(Tensor(logits), targets)
        via_sigmoid = binary_cross_entropy(sigmoid(logits), targets)
        assert float(direct.data) == pytest.approx(float(via_sigmoid.data), rel=1e-6)

    def test_bce_with_logits_gradient_finite_for_extreme_logits(self):
        logits = Tensor(np.array([60.0, -60.0]), requires_grad=True)
        bce_with_logits(logits, np.array([0.0, 1.0])).backward()
        assert np.all(np.isfinite(logits.grad))

    def test_kl_standard_normal_is_zero(self):
        mu = np.zeros((2, 3))
        log_var = np.zeros((2, 3))
        assert float(kl_gaussian(mu, log_var).data) == pytest.approx(0.0)

    def test_kl_positive(self):
        mu = np.ones((2, 3))
        log_var = np.zeros((2, 3))
        assert float(kl_gaussian(mu, log_var).data) > 0.0

    def test_mse_detaches_target(self):
        target = Tensor(np.ones(3), requires_grad=True)
        pred = Tensor(np.zeros(3), requires_grad=True)
        mse_loss(pred, target).backward()
        assert pred.grad is not None
        assert target.grad is None
