"""Fleet serving stack: shared memory, scoring service, persistent cache.

Covers the PR-3 subsystems end to end:

* read-only state export and zero-copy loading (``repro.nn``);
* shared-memory array packs (publish / attach / unlink);
* the bucketed scoring service -- exact-policy results bitwise equal
  to in-process scoring, merged policy equal to tight tolerance;
* ``FleetScorer`` copy-on-write divergence on fine-tune;
* CAROL's persistent surrogate cache: counters monotone, entries
  reused across intervals, full invalidation exactly when fine-tuning
  fires, capacity-bounded eviction, both cache scopes;
* fleet-mode campaigns bit-identical to serial execution.
"""

import queue
import threading

import numpy as np
import pytest

from repro.core import (
    CAROL,
    CAROLConfig,
    GONDiscriminator,
    LocalScorer,
    TrainingConfig,
)
from repro.core.surrogate import generate_metrics_batch
from repro.nn.serialization import freeze_state, pack_state, unpack_state
from repro.serving import (
    AscentRequest,
    AttachedArrayPack,
    FleetScorer,
    GONScoringService,
    ScoringClient,
    SharedArrayPack,
)
from repro.simulator import EdgeFederation
from repro.simulator.detection import FailureReport


# ----------------------------------------------------------------------
# nn-layer export primitives
# ----------------------------------------------------------------------
class TestStateExport:
    def test_pack_unpack_roundtrip(self, rng):
        state = {
            "a.weight": rng.standard_normal((3, 5)),
            "a.bias": rng.standard_normal(5),
            "b": np.arange(7, dtype=np.int64),
        }
        buffer, manifest = pack_state(state)
        views = unpack_state(buffer, manifest)
        assert set(views) == set(state)
        for name in state:
            assert np.array_equal(views[name], state[name])
            assert views[name].dtype == state[name].dtype
            assert not views[name].flags.writeable

    def test_pack_layout_is_name_order_invariant(self, rng):
        a, b = rng.standard_normal(4), rng.standard_normal((2, 2))
        buffer_1, manifest_1 = pack_state({"x": a, "y": b})
        buffer_2, manifest_2 = pack_state({"y": b, "x": a})
        assert manifest_1 == manifest_2
        assert np.array_equal(buffer_1, buffer_2)

    def test_freeze_state_views_are_read_only(self, rng):
        state = {"w": rng.standard_normal((2, 2))}
        frozen = freeze_state(state)
        assert not frozen["w"].flags.writeable
        with pytest.raises(ValueError):
            frozen["w"][0, 0] = 1.0
        # Zero-copy: the view shares the original's memory.
        state["w"][0, 0] = 42.0
        assert frozen["w"][0, 0] == 42.0

    def test_load_state_dict_zero_copy(self, rng):
        model = GONDiscriminator(rng, hidden=8, n_layers=2)
        donor = GONDiscriminator(np.random.default_rng(5), hidden=8, n_layers=2)
        frozen = freeze_state(donor.state_dict())
        model.load_state_dict(frozen, copy=False)
        for name, parameter in model.named_parameters():
            # Adopted directly: the read-only donor view, not a copy.
            assert not parameter.data.flags.writeable
            assert parameter.data is frozen[name]
        # state_dict() still hands out private copies of the views.
        first = next(iter(frozen))
        assert model.state_dict()[first] is not frozen[first]


# ----------------------------------------------------------------------
# Shared-memory packs
# ----------------------------------------------------------------------
class TestSharedArrayPack:
    def test_publish_attach_roundtrip(self, rng):
        arrays = {"m": rng.standard_normal((4, 6)), "v": np.arange(3.0)}
        pack = SharedArrayPack(arrays)
        try:
            attached = AttachedArrayPack(pack.handle)
            try:
                for name in arrays:
                    assert np.array_equal(attached.arrays[name], arrays[name])
                    assert not attached.arrays[name].flags.writeable
            finally:
                attached.close()
        finally:
            pack.close()
            pack.unlink()

    def test_owner_views_share_the_segment(self, rng):
        pack = SharedArrayPack({"w": rng.standard_normal(8)})
        try:
            assert not pack.arrays["w"].flags.writeable
            assert pack.arrays["w"].nbytes == 64
        finally:
            pack.close()
            pack.unlink()


# ----------------------------------------------------------------------
# Scoring service (in-process: plain queues + a thread)
# ----------------------------------------------------------------------
@pytest.fixture
def service_setup(trained_gon):
    request_queue, reply_queue = queue.Queue(), queue.Queue()

    def start(merge_requests=False):
        service = GONScoringService(
            {"scenario": trained_gon},
            request_queue,
            {0: reply_queue},
            merge_requests=merge_requests,
        )
        thread = threading.Thread(target=service.serve, daemon=True)
        thread.start()
        client = ScoringClient(0, "scenario", request_queue, reply_queue)
        return service, thread, client

    return start


def _stacks(samples):
    return (
        np.stack([s.metrics for s in samples]),
        np.stack([s.schedule for s in samples]),
        np.stack([s.adjacency for s in samples]),
    )


class TestScoringService:
    def test_exact_policy_bitwise_equals_local(
        self, service_setup, trained_gon, session_samples
    ):
        _service, thread, client = service_setup()
        metrics, schedules, adjacencies = _stacks(session_samples[:6])
        remote = client.ascent(metrics, schedules, adjacencies,
                               gamma=1e-2, max_steps=5)
        local = generate_metrics_batch(
            trained_gon, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        for r, l in zip(remote, local):
            assert np.array_equal(r.metrics, l.metrics)
            assert r.confidence == l.confidence
            assert r.n_steps == l.n_steps
            assert r.converged == l.converged
        client.close()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_confidence_requests(self, service_setup, trained_gon,
                                 session_samples):
        _service, thread, client = service_setup()
        metrics, schedules, adjacencies = _stacks(session_samples[:4])
        remote = client.confidences(metrics, schedules, adjacencies)
        local = trained_gon.forward_batch(
            metrics, schedules, adjacencies
        ).data
        assert np.array_equal(remote, local)
        client.close()
        thread.join(timeout=10)

    def test_merged_policy_matches_to_tolerance(
        self, trained_gon, session_samples
    ):
        # Both clients are registered before serve() starts, so the
        # service cannot wind down until each has signed off -- no
        # startup race -- and two concurrent requests genuinely merge.
        request_queue = queue.Queue()
        replies = {0: queue.Queue(), 1: queue.Queue()}
        service = GONScoringService(
            {"scenario": trained_gon}, request_queue, replies,
            merge_requests=True,
        )
        thread = threading.Thread(target=service.serve, daemon=True)
        thread.start()
        client = ScoringClient(0, "scenario", request_queue, replies[0])
        metrics, schedules, adjacencies = _stacks(session_samples[:4])
        other = {}

        def second_client():
            peer = ScoringClient(1, "scenario", request_queue, replies[1])
            other["result"] = peer.ascent(
                metrics, schedules, adjacencies, gamma=1e-2, max_steps=5
            )
            peer.close()

        peer_thread = threading.Thread(target=second_client, daemon=True)
        peer_thread.start()
        mine = client.ascent(metrics, schedules, adjacencies,
                             gamma=1e-2, max_steps=5)
        peer_thread.join(timeout=10)
        assert "result" in other
        local = generate_metrics_batch(
            trained_gon, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        for result_set in (mine, other["result"]):
            for r, l in zip(result_set, local):
                np.testing.assert_allclose(
                    r.metrics, l.metrics, rtol=1e-9, atol=1e-12
                )
                np.testing.assert_allclose(
                    r.confidence, l.confidence, rtol=1e-9, atol=1e-12
                )
        client.close()
        thread.join(timeout=10)
        stats = service.stats
        assert stats.n_requests == 2
        assert stats.n_elements == 8

    def test_service_stats_track_elements(self, service_setup,
                                          session_samples):
        service, thread, client = service_setup()
        metrics, schedules, adjacencies = _stacks(session_samples[:3])
        client.ascent(metrics, schedules, adjacencies, gamma=1e-2, max_steps=2)
        client.confidences(metrics, schedules, adjacencies)
        client.close()
        thread.join(timeout=10)
        assert service.stats.n_requests == 2
        assert service.stats.n_elements == 6
        assert service.stats.n_batches == 2


def _shared_replica(trained_gon):
    """A worker-side replica mounted read-only over the base weights."""
    replica = GONDiscriminator(np.random.default_rng(9), hidden=16,
                               n_layers=2)
    replica.load_state_dict(
        freeze_state(trained_gon.state_dict()), copy=False
    )
    return replica


class TestFleetScorer:
    def test_copy_on_write_divergence(self, service_setup, trained_gon,
                                      session_samples):
        _service, thread, client = service_setup()
        replica = _shared_replica(trained_gon)
        scorer = FleetScorer(client, replica, overlays=False)
        assert scorer.generation == 0
        assert not replica.parameters()[0].data.flags.writeable

        sample = session_samples[0]
        assert scorer.confidence(sample) == trained_gon.score(sample)

        scorer.fine_tune(
            session_samples[:6],
            TrainingConfig(epochs=1, generation_steps=2, seed=0),
            iterations=1,
            rng=np.random.default_rng(0),
        )
        assert scorer.generation == 1
        assert replica.parameters()[0].data.flags.writeable
        # The published weights must be untouched by the divergence.
        assert np.array_equal(
            trained_gon.parameters()[0].data,
            freeze_state(trained_gon.state_dict())[
                next(iter(trained_gon.state_dict()))
            ],
        )
        # Post-divergence ascents run locally (no service round-trip)
        # in the pre-overlay mode -- and are counted, never silent.
        metrics, schedules, adjacencies = _stacks(session_samples[:2])
        local = scorer.ascent(metrics, schedules, adjacencies,
                              gamma=1e-2, max_steps=2)
        assert len(local) == 2
        assert scorer.diagnostics["local_fallbacks"] == 1
        assert scorer.diagnostics["overlay_installs"] == 0
        client.close()
        thread.join(timeout=10)


# ----------------------------------------------------------------------
# Per-client weight overlays
# ----------------------------------------------------------------------
class TestOverlayLifecycle:
    def test_fine_tune_installs_overlay_scores_bitwise(
        self, service_setup, trained_gon, session_samples
    ):
        """fine-tune -> overlay install -> service scores bit-identical
        to worker-local scoring on the fine-tuned weights."""
        service, thread, client = service_setup()
        scorer = FleetScorer(client, _shared_replica(trained_gon))

        scorer.fine_tune(
            session_samples[:6],
            TrainingConfig(epochs=1, generation_steps=2, seed=0),
            iterations=1,
            rng=np.random.default_rng(0),
        )
        assert scorer.generation == 1
        assert scorer.diagnostics["overlay_installs"] == 1

        metrics, schedules, adjacencies = _stacks(session_samples[:5])
        remote = scorer.ascent(metrics, schedules, adjacencies,
                               gamma=1e-2, max_steps=5)
        local = generate_metrics_batch(
            scorer.model, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        for r, ref in zip(remote, local):
            assert np.array_equal(r.metrics, ref.metrics)
            assert r.confidence == ref.confidence
            assert r.n_steps == ref.n_steps
        # The diverged replica stayed in the consolidated stream.
        assert scorer.diagnostics["local_fallbacks"] == 0
        client.close()
        thread.join(timeout=10)
        assert service.stats.overlay_installs == 1
        assert service.stats.overlay_elements == 5
        # Base weights are untouched by the overlay.
        state = trained_gon.state_dict()
        assert np.array_equal(
            trained_gon.parameters()[0].data, state[next(iter(state))]
        )

    def test_second_fine_tune_replaces_overlay(
        self, service_setup, trained_gon, session_samples
    ):
        service, thread, client = service_setup()
        scorer = FleetScorer(client, _shared_replica(trained_gon))
        for seed in (0, 1):
            scorer.fine_tune(
                session_samples[:4],
                TrainingConfig(epochs=1, generation_steps=2, seed=seed),
                iterations=1,
                rng=np.random.default_rng(seed),
            )
        assert scorer.generation == 2
        metrics, schedules, adjacencies = _stacks(session_samples[:3])
        remote = scorer.ascent(metrics, schedules, adjacencies,
                               gamma=1e-2, max_steps=3)
        local = generate_metrics_batch(
            scorer.model, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=3,
        )
        for r, ref in zip(remote, local):
            assert np.array_equal(r.metrics, ref.metrics)
        client.close()
        thread.join(timeout=10)
        assert service.stats.overlay_installs == 2
        assert scorer.diagnostics["local_fallbacks"] == 0

    def test_overlay_evicted_on_disconnect(
        self, service_setup, trained_gon, session_samples
    ):
        service, thread, client = service_setup()
        scorer = FleetScorer(client, _shared_replica(trained_gon))
        scorer.fine_tune(
            session_samples[:4],
            TrainingConfig(epochs=1, generation_steps=2, seed=0),
            iterations=1,
            rng=np.random.default_rng(0),
        )
        # One scored request so the install is definitely applied.
        metrics, schedules, adjacencies = _stacks(session_samples[:2])
        scorer.ascent(metrics, schedules, adjacencies, gamma=1e-2, max_steps=2)
        client.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert service._overlays == {}
        assert service.stats.overlay_evictions == 1

    def test_remote_confidences_on_overlay(
        self, service_setup, trained_gon, session_samples
    ):
        """The overlay protocol covers confidence forwards too: a
        diverged client can score D(M, S, G) stacks on the service."""
        _service, thread, client = service_setup()
        scorer = FleetScorer(client, _shared_replica(trained_gon))
        scorer.fine_tune(
            session_samples[:4],
            TrainingConfig(epochs=1, generation_steps=2, seed=0),
            iterations=1,
            rng=np.random.default_rng(0),
        )
        metrics, schedules, adjacencies = _stacks(session_samples[:4])
        remote = client.confidences(
            metrics, schedules, adjacencies, generation=scorer.generation
        )
        local = scorer.model.forward_batch(
            metrics, schedules, adjacencies
        ).data
        assert np.array_equal(remote, local)
        # And at generation 0 the same call still hits the base model.
        base = client.confidences(metrics, schedules, adjacencies)
        assert np.array_equal(
            base, trained_gon.forward_batch(metrics, schedules, adjacencies).data
        )
        client.close()
        thread.join(timeout=10)

    def test_generations_never_share_a_bucket(self, session_samples):
        metrics, schedules, adjacencies = _stacks(session_samples[:2])

        def request(client_id, generation):
            return AscentRequest(
                client_id=client_id, request_id=1, model_key="scenario",
                metrics=metrics, schedules=schedules,
                adjacencies=adjacencies, gamma=1e-2, max_steps=5,
                generation=generation,
            )

        # Generation 0 is the shared base model: clients may merge.
        assert request(0, 0).bucket == request(1, 0).bucket
        # Different generations never share a bucket...
        assert request(0, 0).bucket != request(0, 1).bucket
        assert request(0, 1).bucket != request(0, 2).bucket
        # ...and neither do two diverged clients at equal generation
        # (their overlay weights are private).
        assert request(0, 1).bucket != request(1, 1).bucket

    def test_stale_generation_request_is_a_protocol_error(
        self, trained_gon, session_samples
    ):
        service = GONScoringService(
            {"scenario": trained_gon}, queue.Queue(), {0: queue.Queue()}
        )
        metrics, schedules, adjacencies = _stacks(session_samples[:1])
        orphan = AscentRequest(
            client_id=0, request_id=1, model_key="scenario",
            metrics=metrics, schedules=schedules, adjacencies=adjacencies,
            gamma=1e-2, max_steps=2, generation=3,
        )
        with pytest.raises(RuntimeError, match="overlay"):
            service._resolve_model(orphan)


# ----------------------------------------------------------------------
# Persistent surrogate cache
# ----------------------------------------------------------------------
def _fresh_carol(trained_gon, **config_overrides):
    gon = trained_gon.clone_architecture(np.random.default_rng(0))
    gon.load_state_dict(trained_gon.state_dict())
    defaults = dict(
        surrogate_steps=3, tabu_iterations=2, tabu_patience=1,
        neighbourhood_sample=6, pot_calibration=5, min_buffer=2, seed=0,
    )
    defaults.update(config_overrides)
    return CAROL(gon, 0.5, 0.5, CAROLConfig(**defaults))


def _healthy_interval(small_config):
    federation = EdgeFederation(small_config)
    federation.begin_interval()
    federation.set_topology(federation.propose_topology())
    federation.run_interval()
    report = federation.begin_interval()
    proposal = federation.propose_topology()
    healthy = FailureReport(
        interval=report.interval, failed_brokers=(), failed_workers=(),
        detection_delay_seconds=0.0,
    )
    return federation, healthy, proposal


class TestPersistentCache:
    def test_counters_monotone_within_quiet_interval(
        self, trained_gon, small_config
    ):
        carol = _fresh_carol(trained_gon)
        federation, healthy, proposal = _healthy_interval(small_config)
        diag = carol.diagnostics

        carol.repair(federation.view, healthy, proposal)
        h1, m1 = diag.cache_hits, diag.cache_misses
        assert m1 > 0 and diag.cache_evictions == 0

        # Same context, same slate: everything is served from cache,
        # and the counters only ever move up.
        carol.repair(federation.view, healthy, proposal)
        assert diag.cache_misses == m1
        assert diag.cache_hits > h1
        assert diag.tabu_evaluations[-1] == 0  # no fresh ascents

    def test_context_scope_misses_on_new_context(
        self, trained_gon, small_config
    ):
        carol = _fresh_carol(trained_gon)
        federation, healthy, proposal = _healthy_interval(small_config)
        carol.repair(federation.view, healthy, proposal)
        misses = carol.diagnostics.cache_misses
        # A perturbed observation changes the context hash: exact
        # scope must re-score rather than serve stale entries.
        federation.view.last_metrics.host_metrics[0, 0] += 0.25
        carol.repair(federation.view, healthy, proposal)
        assert carol.diagnostics.cache_misses > misses

    def test_generation_scope_survives_context_drift(
        self, trained_gon, small_config
    ):
        carol = _fresh_carol(trained_gon, score_cache_scope="generation")
        federation, healthy, proposal = _healthy_interval(small_config)
        carol.repair(federation.view, healthy, proposal)
        misses = carol.diagnostics.cache_misses
        federation.view.last_metrics.host_metrics[0, 0] += 0.25
        carol.repair(federation.view, healthy, proposal)
        # Topology keys unchanged -> all hits despite the drift.
        assert carol.diagnostics.cache_misses == misses

    def test_invalidation_exactly_when_fine_tune_fires(
        self, trained_gon, small_config
    ):
        carol = _fresh_carol(trained_gon)
        federation = EdgeFederation(small_config)
        flushed_sizes = []
        for _ in range(10):
            report = federation.begin_interval()
            proposal = federation.propose_topology()
            topology = carol.repair(federation.view, report, proposal)
            federation.set_topology(topology)
            metrics = federation.run_interval()
            entries_before = len(carol._score_cache)
            evictions_before = carol.diagnostics.cache_evictions
            carol.observe(metrics, federation.view)
            if carol.diagnostics.fine_tuned[-1]:
                # The POT gate opened: full flush, counted as evictions.
                assert len(carol._score_cache) == 0
                assert (
                    carol.diagnostics.cache_evictions
                    == evictions_before + entries_before
                )
                flushed_sizes.append(entries_before)
            else:
                # No model change: every entry survives observe().
                assert len(carol._score_cache) == entries_before
                assert (
                    carol.diagnostics.cache_evictions == evictions_before
                )
        # The POT gate genuinely opens on this seeded run: the flush
        # path above was exercised, not vacuously skipped.
        assert carol.diagnostics.n_fine_tunes == len(flushed_sizes) >= 1

    def test_capacity_eviction_is_fifo_and_counted(
        self, trained_gon, small_config
    ):
        carol = _fresh_carol(trained_gon, score_cache_capacity=3)
        federation, healthy, proposal = _healthy_interval(small_config)
        carol.repair(federation.view, healthy, proposal)
        assert len(carol._score_cache) <= 3
        assert carol.diagnostics.cache_evictions > 0

    def test_scope_validation(self):
        with pytest.raises(ValueError, match="score_cache_scope"):
            CAROLConfig(score_cache_scope="telepathy")

    def test_local_scorer_generation_tracks_fine_tunes(
        self, trained_gon, session_samples
    ):
        scorer = LocalScorer(trained_gon.clone_architecture(
            np.random.default_rng(1)
        ))
        assert scorer.generation == 0
        scorer.fine_tune(
            session_samples[:4],
            TrainingConfig(epochs=1, generation_steps=2, seed=0),
            iterations=1,
            rng=np.random.default_rng(0),
        )
        assert scorer.generation == 1

    def test_tabu_passes_keys_to_batched_objective(self, small_topology):
        from repro.core.tabu import batched_objective, tabu_search
        from repro.core.nodeshift import neighbours

        seen_keys = []

        @batched_objective
        def objective(candidates, keys=None):
            seen_keys.append(keys)
            return [float(len(c.brokers)) for c in candidates]

        result = tabu_search(
            small_topology, objective, neighbours,
            tabu_size=10, max_iterations=2, patience=1,
        )
        assert all(keys is not None for keys in seen_keys)
        for candidates_keys in seen_keys[1:]:
            assert all(isinstance(k, tuple) for k in candidates_keys)
        assert result.best_key == result.best.canonical_key()


# ----------------------------------------------------------------------
# Fleet campaigns
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_fleet_grid():
    from repro.experiments import fleet_ci_campaign_config

    return fleet_ci_campaign_config(workers=2)


@pytest.fixture(scope="module")
def tiny_fleet_assets(tiny_fleet_grid):
    from repro.experiments import prepare_campaign_assets

    return prepare_campaign_assets(tiny_fleet_grid)


class TestFleetCampaign:
    def test_fleet_mode_bit_identical_to_serial(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        from dataclasses import replace

        from repro.experiments import run_campaign

        serial = run_campaign(
            replace(tiny_fleet_grid, mode="process", workers=1),
            prepared_assets=tiny_fleet_assets,
        )
        fleet = run_campaign(
            tiny_fleet_grid, prepared_assets=tiny_fleet_assets
        )
        assert serial.rows() == fleet.rows()

    def test_fleet_mode_matches_process_pool(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        from dataclasses import replace

        from repro.experiments import run_campaign

        pool = run_campaign(
            replace(tiny_fleet_grid, mode="process", workers=2),
            prepared_assets=tiny_fleet_assets,
        )
        fleet = run_campaign(
            tiny_fleet_grid, prepared_assets=tiny_fleet_assets
        )
        assert pool.rows() == fleet.rows()

    def test_fleet_service_actually_scores(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        from repro.experiments.campaign import plan_tasks
        from repro.experiments.fleet import run_fleet_campaign

        sink = []
        records = run_fleet_campaign(
            tiny_fleet_grid, plan_tasks(tiny_fleet_grid),
            tiny_fleet_assets, stats_sink=sink,
        )
        # 2 models (CAROL, CAROL-Proactive) x 2 seeds.
        assert len(records) == 4
        assert {r.model for r in records} == {"CAROL", "CAROL-Proactive"}
        assert sink[0].n_requests > 0
        assert sink[0].n_elements > 0
        # No run degraded to worker-local scoring.
        assert all(
            r.diagnostics.get("local_fallbacks", 0) == 0 for r in records
        )

    def test_proactive_fleet_with_fine_tunes_bit_identical(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        """The acceptance contract: a fleet ProactiveCAROL campaign
        whose POT gate opens stays bit-identical to serial execution,
        with overlays keeping every diverged ascent on the service."""
        from dataclasses import replace

        from repro.experiments import run_campaign

        # Same scenario/asset knobs as the module fixture (so the
        # trained assets are reusable), but long enough -- and with an
        # early-opening POT gate -- that fine-tuning genuinely fires.
        grid = replace(
            tiny_fleet_grid,
            models=("CAROL-Proactive",),
            n_seeds=1,
            n_intervals=10,
            carol_overrides=(("pot_calibration", 5), ("min_buffer", 2)),
        )
        serial = run_campaign(
            replace(grid, mode="process", workers=1),
            prepared_assets=tiny_fleet_assets,
        )
        fleet = run_campaign(grid, prepared_assets=tiny_fleet_assets)
        assert serial.rows() == fleet.rows()

        (record,) = fleet.records
        # The gate opened, the overlay shipped, nothing degraded.
        assert record.diagnostics["n_fine_tunes"] >= 1
        assert record.diagnostics["overlay_installs"] >= 1
        assert record.diagnostics["local_fallbacks"] == 0
        # The serial twin fine-tuned identically (same decision path).
        (serial_record,) = serial.records
        assert (
            serial_record.diagnostics["n_fine_tunes"]
            == record.diagnostics["n_fine_tunes"]
        )
        assert serial_record.diagnostics["local_fallbacks"] == 0

    def test_transport_and_service_addr_validated(self):
        from repro.experiments import CampaignConfig

        with pytest.raises(ValueError, match="transport"):
            CampaignConfig(
                scenarios=("fault-free",), models=("carol",),
                mode="fleet", transport="carrier-pigeon",
            )
        # TCP plumbing only exists for fleet campaigns.
        with pytest.raises(ValueError, match="mode='fleet'"):
            CampaignConfig(
                scenarios=("fault-free",), models=("carol",),
                transport="tcp",
            )
        # An external service implies the TCP transport...
        with pytest.raises(ValueError, match="service_addr"):
            CampaignConfig(
                scenarios=("fault-free",), models=("carol",),
                mode="fleet", service_addr="127.0.0.1:7911",
            )
        # ...and a well-formed host:port.
        with pytest.raises(ValueError, match="host:port"):
            CampaignConfig(
                scenarios=("fault-free",), models=("carol",),
                mode="fleet", transport="tcp", service_addr="nonsense",
            )

    def test_carol_overrides_validated(self):
        from repro.experiments import CampaignConfig

        with pytest.raises(ValueError, match="carol_overrides"):
            CampaignConfig(
                scenarios=("fault-free",), models=("carol",),
                carol_overrides=(("not_a_field", 1),),
            )
        # 'seed' is a CAROLConfig field but derives from the per-run
        # seed by contract: overriding it must fail at config time,
        # not as a TypeError inside a worker process.
        with pytest.raises(ValueError, match="seed"):
            CampaignConfig(
                scenarios=("fault-free",), models=("carol",),
                carol_overrides=(("seed", 3),),
            )

    def test_fleet_implies_shared_assets(self):
        from repro.experiments import CampaignConfig

        config = CampaignConfig(
            scenarios=("fault-free",), models=("dyverse",), mode="fleet"
        )
        assert config.shared_assets

    def test_mode_validation(self):
        from repro.experiments import CampaignConfig

        with pytest.raises(ValueError, match="mode"):
            CampaignConfig(
                scenarios=("fault-free",), models=("dyverse",),
                mode="quantum",
            )

    def test_fleet_heuristic_models_need_no_assets(self):
        from repro.experiments import CampaignConfig, run_campaign

        result = run_campaign(CampaignConfig(
            scenarios=("fault-free",), models=("dyverse",),
            n_intervals=2, workers=2, mode="fleet",
        ))
        assert len(result.records) == 1

    def test_shared_asset_preparation_is_deterministic(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        from repro.experiments import prepare_campaign_assets

        again = prepare_campaign_assets(tiny_fleet_grid)
        for scenario, assets in tiny_fleet_assets.items():
            other = again[scenario]
            assert assets.seed == other.seed
            for name, array in assets.gon_state.items():
                assert np.array_equal(array, other.gon_state[name])


# ----------------------------------------------------------------------
# TCP fleet campaigns (multi-node transport on localhost)
# ----------------------------------------------------------------------
class TestTcpFleetCampaign:
    def test_tcp_fleet_bit_identical_to_serial(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        """The socket transport changes the plumbing, not one bit of
        the records: same grid, serial vs TCP fleet, rows equal."""
        from dataclasses import replace

        from repro.experiments import run_campaign

        serial = run_campaign(
            replace(tiny_fleet_grid, mode="process", workers=1),
            prepared_assets=tiny_fleet_assets,
        )
        tcp = run_campaign(
            replace(tiny_fleet_grid, transport="tcp"),
            prepared_assets=tiny_fleet_assets,
        )
        assert serial.rows() == tcp.rows()

    def test_tcp_matches_queue_transport(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        from dataclasses import replace

        from repro.experiments import run_campaign

        queue_result = run_campaign(
            tiny_fleet_grid, prepared_assets=tiny_fleet_assets
        )
        tcp_result = run_campaign(
            replace(tiny_fleet_grid, transport="tcp"),
            prepared_assets=tiny_fleet_assets,
        )
        assert queue_result.rows() == tcp_result.rows()

    def test_tcp_proactive_fleet_with_fine_tunes_bit_identical(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        """The acceptance contract for the socket transport: a
        two-worker ProactiveCAROL campaign over TCP on localhost, POT
        gate opening and overlays shipping across the wire, stays
        bit-identical to serial execution with zero local fallbacks."""
        from dataclasses import replace

        from repro.experiments import run_campaign

        grid = replace(
            tiny_fleet_grid,
            models=("CAROL-Proactive",),
            n_seeds=2,
            n_intervals=10,
            carol_overrides=(("pot_calibration", 5), ("min_buffer", 2)),
        )
        serial = run_campaign(
            replace(grid, mode="process", workers=1),
            prepared_assets=tiny_fleet_assets,
        )
        fleet = run_campaign(
            replace(grid, transport="tcp"),
            prepared_assets=tiny_fleet_assets,
        )
        assert serial.rows() == fleet.rows()
        # Fine-tuning fired somewhere in the grid, its overlay crossed
        # the socket, and no ascent degraded to worker-local scoring.
        assert sum(
            r.diagnostics["n_fine_tunes"] for r in fleet.records
        ) >= 1
        assert sum(
            r.diagnostics["overlay_installs"] for r in fleet.records
        ) >= 1
        assert all(
            r.diagnostics["local_fallbacks"] == 0 for r in fleet.records
        )

    def test_remote_service_campaign_matches_serial(
        self, tiny_fleet_grid, tiny_fleet_assets
    ):
        """The multi-node split: a separately hosted scoring service
        (``python -m repro serve``'s backbone) answering a campaign
        that fetches its assets over the socket."""
        import threading
        from dataclasses import replace

        from repro.experiments import run_campaign
        from repro.experiments.fleet import serve_fleet_service

        ready = threading.Event()
        endpoint = {}

        def on_ready(host, port):
            endpoint["addr"] = f"{host}:{port}"
            ready.set()

        outcome = {}

        def serve():
            try:
                outcome["stats"] = serve_fleet_service(
                    tiny_fleet_grid,
                    tiny_fleet_assets,
                    n_clients=2,
                    idle_timeout=60.0,
                    on_ready=on_ready,
                )
            except BaseException as error:  # pragma: no cover - debug aid
                outcome["error"] = error
                ready.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(timeout=15)
        assert "error" not in outcome

        serial = run_campaign(
            replace(tiny_fleet_grid, mode="process", workers=1),
            prepared_assets=tiny_fleet_assets,
        )
        remote = run_campaign(
            replace(
                tiny_fleet_grid, transport="tcp",
                service_addr=endpoint["addr"],
            )
        )
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert "error" not in outcome
        assert serial.rows() == remote.rows()
        # The remote service genuinely scored the campaign.
        assert outcome["stats"].n_requests > 0
