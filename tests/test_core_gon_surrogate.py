"""GON network, eq.-1 surrogate generation and the QoS objective."""

import numpy as np
import pytest

from repro.core import (
    ENERGY_COLUMN,
    GONDiscriminator,
    GONInput,
    N_M_FEATURES,
    N_S_FEATURES,
    QoSObjective,
    SLO_COLUMN,
    from_interval,
    generate_metrics,
    node_features,
    predict_qos,
)
from repro.nn import Tensor


@pytest.fixture
def gon(rng):
    return GONDiscriminator(rng, hidden=16, n_layers=2)


def make_sample(rng, n_hosts=6):
    metrics = rng.uniform(0, 1, size=(n_hosts, N_M_FEATURES))
    schedule = rng.uniform(0, 1, size=(n_hosts, N_S_FEATURES))
    adjacency = (rng.random((n_hosts, n_hosts)) > 0.5).astype(float)
    adjacency = np.triu(adjacency, 1)
    adjacency = adjacency + adjacency.T
    return GONInput(metrics, schedule, adjacency)


class TestGONInput:
    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            GONInput(np.zeros((4, 3)), np.zeros((4, N_S_FEATURES)), np.zeros((4, 4)))
        with pytest.raises(ValueError):
            GONInput(np.zeros((4, N_M_FEATURES)), np.zeros((3, N_S_FEATURES)), np.zeros((4, 4)))
        with pytest.raises(ValueError):
            GONInput(np.zeros((4, N_M_FEATURES)), np.zeros((4, N_S_FEATURES)), np.zeros((4, 5)))

    def test_node_features_is_util_block(self, rng):
        sample = make_sample(rng)
        np.testing.assert_array_equal(
            node_features(sample.metrics), sample.metrics[:, :4]
        )

    def test_from_interval_override_topology(self, federation):
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        record = federation.run_interval()
        sample = from_interval(record)
        assert sample.n_hosts == record.host_metrics.shape[0]
        other = record.topology.reassign(record.topology.workers[0],
                                         sorted(record.topology.brokers)[-1])
        overridden = from_interval(record, topology=other)
        assert not np.array_equal(sample.adjacency, overridden.adjacency)


class TestGONDiscriminator:
    def test_output_in_unit_interval(self, gon, rng):
        for _ in range(10):
            sample = make_sample(rng)
            score = gon.score(sample)
            assert 0.0 <= score <= 1.0

    def test_host_count_agnostic(self, gon, rng):
        for n_hosts in (3, 6, 12):
            sample = make_sample(rng, n_hosts=n_hosts)
            assert 0.0 <= gon.score(sample) <= 1.0

    def test_gradient_wrt_metrics(self, gon, rng):
        sample = make_sample(rng)
        metrics = Tensor(sample.metrics, requires_grad=True)
        out = gon(metrics, sample.schedule, sample.adjacency)
        out.log().backward()
        assert metrics.grad is not None
        assert np.abs(metrics.grad).sum() > 0

    def test_clone_architecture(self, gon, rng):
        clone = gon.clone_architecture(np.random.default_rng(1))
        assert clone.hidden == gon.hidden
        assert clone.n_layers == gon.n_layers
        assert clone.parameter_count() == gon.parameter_count()

    def test_footprint_scales_with_depth(self, rng):
        small = GONDiscriminator(rng, hidden=16, n_layers=1)
        large = GONDiscriminator(rng, hidden=16, n_layers=4)
        assert large.footprint_bytes() > small.footprint_bytes()

    def test_rejects_zero_layers(self, rng):
        with pytest.raises(ValueError):
            GONDiscriminator(rng, n_layers=0)

    def test_state_roundtrip(self, gon, rng):
        sample = make_sample(rng)
        clone = gon.clone_architecture(np.random.default_rng(5))
        clone.load_state_dict(gon.state_dict())
        assert clone.score(sample) == pytest.approx(gon.score(sample))


class TestSurrogateGeneration:
    def test_ascent_increases_confidence(self, gon, rng):
        sample = make_sample(rng)
        before = gon.score(sample)
        result = generate_metrics(
            gon, sample.schedule, sample.adjacency,
            init_metrics=sample.metrics, gamma=1e-2, max_steps=30,
        )
        assert result.confidence >= before - 1e-6

    def test_metrics_stay_in_bounds(self, gon, rng):
        sample = make_sample(rng)
        result = generate_metrics(
            gon, sample.schedule, sample.adjacency,
            init_metrics=sample.metrics, gamma=0.1, max_steps=20,
        )
        assert np.all(result.metrics >= 0.0)
        assert np.all(result.metrics <= 3.0)

    def test_random_init_requires_rng(self, gon, rng):
        sample = make_sample(rng)
        with pytest.raises(ValueError):
            generate_metrics(gon, sample.schedule, sample.adjacency)

    def test_random_init_shape(self, gon, rng):
        sample = make_sample(rng)
        result = generate_metrics(
            gon, sample.schedule, sample.adjacency, rng=rng, max_steps=5
        )
        assert result.metrics.shape == sample.metrics.shape

    def test_gamma_validation(self, gon, rng):
        sample = make_sample(rng)
        with pytest.raises(ValueError):
            generate_metrics(
                gon, sample.schedule, sample.adjacency,
                init_metrics=sample.metrics, gamma=0.0,
            )

    def test_plain_gradient_mode(self, gon, rng):
        sample = make_sample(rng)
        result = generate_metrics(
            gon, sample.schedule, sample.adjacency,
            init_metrics=sample.metrics, gamma=1e-3, max_steps=5,
            adaptive=False,
        )
        assert result.n_steps >= 1

    def test_steps_bounded(self, gon, rng):
        sample = make_sample(rng)
        result = generate_metrics(
            gon, sample.schedule, sample.adjacency,
            init_metrics=sample.metrics, max_steps=7,
        )
        assert result.n_steps <= 7

    def test_predict_qos_returns_objective(self, gon, rng):
        sample = make_sample(rng)
        objective = QoSObjective(0.5, 0.5)
        value, result = predict_qos(gon, sample, objective, max_steps=5)
        assert value == pytest.approx(objective(result.metrics))


class TestQoSObjective:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            QoSObjective(0.7, 0.7)
        with pytest.raises(ValueError):
            QoSObjective(1.5, -0.5)

    def test_value_composition(self):
        metrics = np.zeros((3, N_M_FEATURES))
        metrics[:, ENERGY_COLUMN] = 0.4
        metrics[:, SLO_COLUMN] = 0.2
        objective = QoSObjective(0.5, 0.5)
        assert objective(metrics) == pytest.approx(0.5 * 1.2 + 0.5 * 0.6)

    def test_alpha_weighting(self):
        metrics = np.zeros((2, N_M_FEATURES))
        metrics[:, ENERGY_COLUMN] = 1.0
        energy_focused = QoSObjective(0.9, 0.1)
        latency_focused = QoSObjective(0.1, 0.9)
        assert energy_focused(metrics) > latency_focused(metrics)

    def test_components(self):
        metrics = np.zeros((2, N_M_FEATURES))
        metrics[:, ENERGY_COLUMN] = 0.5
        metrics[:, SLO_COLUMN] = 0.25
        q_energy, q_slo = QoSObjective().components(metrics)
        assert q_energy == pytest.approx(1.0)
        assert q_slo == pytest.approx(0.5)

    def test_rejects_vector_input(self):
        with pytest.raises(ValueError):
            QoSObjective()(np.zeros(N_M_FEATURES))
