"""Co-simulator engine: interval invariants, schedulers, metrics, traces."""

import numpy as np
import pytest

from repro.simulator import (
    EdgeFederation,
    GOBIScheduler,
    LeastUtilScheduler,
    M_FEATURES,
    RandomScheduler,
    RoundRobinScheduler,
    S_FEATURES,
    Trace,
    collect_trace,
)
from repro.core.nodeshift import random_node_shift


def run_intervals(federation, n):
    records = []
    for _ in range(n):
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        records.append(federation.run_interval())
    return records


class TestEngineBasics:
    def test_metric_shapes(self, federation, small_config):
        record = run_intervals(federation, 1)[0]
        n_hosts = small_config.federation.n_hosts
        assert record.host_metrics.shape == (n_hosts, len(M_FEATURES))
        assert record.schedule_encoding.shape == (n_hosts, len(S_FEATURES))

    def test_energy_positive_and_bounded(self, federation, small_config):
        records = run_intervals(federation, 5)
        n_hosts = small_config.federation.n_hosts
        interval_s = small_config.federation.interval_seconds
        upper = n_hosts * 7.3 * interval_s / 3.6e6  # all hosts at peak
        for record in records:
            assert 0 < record.energy_kwh <= upper

    def test_interval_counter_advances(self, federation):
        run_intervals(federation, 3)
        assert federation.interval == 3
        assert federation.now == pytest.approx(3 * 300.0)

    def test_task_conservation(self, federation):
        records = run_intervals(federation, 10)
        created = sum(r.n_new_tasks for r in records)
        finished = len(federation.completed_tasks)
        active = len(federation.active_tasks)
        assert created == finished + active

    def test_response_times_positive(self, federation):
        for record in run_intervals(federation, 10):
            for response in record.response_times:
                assert response > 0

    def test_slo_flags_align(self, federation):
        for record in run_intervals(federation, 8):
            assert len(record.slo_violations) == len(record.response_times)

    def test_utilisations_recorded(self, federation):
        records = run_intervals(federation, 5)
        total_cpu = sum(r.host_metrics[:, 0].sum() for r in records)
        assert total_cpu > 0

    def test_rng_determinism(self, small_config):
        a = EdgeFederation(small_config)
        b = EdgeFederation(small_config)
        ra = run_intervals(a, 5)
        rb = run_intervals(b, 5)
        for x, y in zip(ra, rb):
            np.testing.assert_allclose(x.host_metrics, y.host_metrics)
            assert x.energy_kwh == y.energy_kwh


class TestFailuresInEngine:
    def test_broker_failure_eventually_occurs(self, small_config):
        federation = EdgeFederation(small_config)
        failures = 0
        for _ in range(40):
            report = federation.begin_interval()
            failures += len(report.failed_brokers)
            federation.set_topology(federation.propose_topology())
            federation.run_interval()
        assert failures > 0

    def test_failed_hosts_not_scheduled(self, small_config):
        federation = EdgeFederation(small_config)
        for _ in range(30):
            federation.begin_interval()
            federation.set_topology(federation.propose_topology())
            record = federation.run_interval()
            dead = {h.host_id for h in federation.hosts if not h.alive}
            # No task may sit on a host that was dead at interval start.
            for task in federation.active_tasks:
                if task.host in dead:
                    # Permissible only if the host died *during* this
                    # interval (crash happens at interval end).
                    assert task.host in {
                        h.host_id for h in federation.hosts
                    }

    def test_downtime_recorded_on_failure(self, small_config):
        federation = EdgeFederation(small_config)
        saw_downtime = False
        for _ in range(40):
            report = federation.begin_interval()
            federation.set_topology(federation.propose_topology())
            record = federation.run_interval()
            if report.failed_brokers and record.downtime_seconds > 0:
                saw_downtime = True
                break
        assert saw_downtime


class TestManagementLoad:
    def test_brokers_carry_management_cpu(self, federation):
        run_intervals(federation, 1)
        for broker in federation.topology.brokers:
            host = federation.hosts[broker]
            if host.alive:
                assert host.management_cpu > 0

    def test_model_profile_charged(self, small_config):
        federation = EdgeFederation(small_config)
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        federation.set_management_profile(cpu_seconds=150.0, memory_gb=1.0)
        federation.run_interval()
        broker = sorted(federation.topology.brokers)[0]
        host = federation.hosts[broker]
        assert host.management_cpu > 0.5  # 150/300 plus baseline
        assert host.management_ram_gb >= 1.0

    def test_profile_validation(self, federation):
        with pytest.raises(ValueError):
            federation.set_management_profile(-1.0, 0.0)

    def test_profile_resets_each_interval(self, small_config):
        federation = EdgeFederation(small_config)
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        federation.set_management_profile(cpu_seconds=150.0, memory_gb=0.0)
        federation.run_interval()
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        federation.run_interval()
        broker = sorted(federation.topology.brokers)[0]
        assert federation.hosts[broker].management_cpu < 0.5


class TestNodeShiftOverhead:
    def test_promotion_charged(self, small_config):
        federation = EdgeFederation(small_config)
        federation.begin_interval()
        proposal = federation.propose_topology()
        worker = proposal.workers[0]
        overhead = federation.set_topology(proposal.promote(worker))
        assert overhead >= 10.0  # container init dominates

    def test_unchanged_topology_free(self, small_config):
        federation = EdgeFederation(small_config)
        federation.begin_interval()
        overhead = federation.set_topology(federation.propose_topology())
        assert overhead == 0.0

    def test_reassignment_cheap(self, small_config):
        federation = EdgeFederation(small_config)
        federation.begin_interval()
        proposal = federation.propose_topology()
        worker = proposal.workers[0]
        other = [b for b in proposal.brokers if b != proposal.assignment[worker]][0]
        overhead = federation.set_topology(proposal.reassign(worker, other))
        assert 0 < overhead < 5.0


class TestSchedulers:
    @pytest.mark.parametrize("scheduler_factory", [
        lambda rng: GOBIScheduler(),
        lambda rng: LeastUtilScheduler(),
        lambda rng: RoundRobinScheduler(),
        lambda rng: RandomScheduler(rng),
    ])
    def test_placements_on_live_attached_hosts(self, small_config, scheduler_factory):
        rng = np.random.default_rng(0)
        federation = EdgeFederation(small_config, scheduler=scheduler_factory(rng))
        for _ in range(15):
            federation.begin_interval()
            federation.set_topology(federation.propose_topology())
            federation.run_interval()
            decision = federation.last_decision
            live = {h.host_id for h in federation.hosts if h.alive}
            attached = federation.topology.attached
            for task_id, host_id in decision.placements.items():
                assert host_id in attached

    def test_gobi_balances_load(self, small_config):
        federation = EdgeFederation(small_config, scheduler=GOBIScheduler())
        run = [
            r.host_metrics[:, 0]
            for r in (
                federation.begin_interval(),
                federation.set_topology(federation.propose_topology()),
                federation.run_interval(),
            )[2:]
        ]
        # Just a smoke check that the scheduler ran and utilisations exist.
        assert run[0].shape[0] == small_config.federation.n_hosts


class TestTrace:
    def test_collect_shapes(self, small_config):
        trace = collect_trace(small_config, n_intervals=12,
                              topology_mutator=random_node_shift, mutate_every=5)
        assert len(trace) == 12
        sample = trace[0]
        assert sample.metrics.shape[1] == len(M_FEATURES)
        assert sample.adjacency.shape[0] == sample.adjacency.shape[1]
        assert trace.n_topologies >= 2

    def test_objective_nonnegative(self, small_config):
        trace = collect_trace(small_config, n_intervals=6)
        for sample in trace.samples:
            assert sample.objective >= 0

    def test_roundtrip(self, small_config, tmp_path):
        trace = collect_trace(small_config, n_intervals=5)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        np.testing.assert_allclose(loaded[0].metrics, trace[0].metrics)
        assert loaded.n_topologies == trace.n_topologies

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace().as_arrays()
