"""Fast inference backend: export, kernels, backends, parity tiers.

Pins the PR-7 contract end to end:

* ``nn/serialization`` inference export -- pack/unpack round-trip
  equality and loud refusal on architecture or shape mismatches;
* ``core/fastscore.FastGONKernel`` -- the graph-free fused forward and
  closed-form input gradient must reproduce the autodiff oracle
  *bit for bit* in float64 (the kernel mirrors the exact op order),
  and within rtol=1e-5 in float32;
* ``core/scoring.LocalScorer`` backend selection and post-fine-tune
  kernel re-export;
* the scoring service's fast-backend features: cross-bucket fused
  ascents and the adaptive micro-batch window;
* the scenario-catalog parity sweep: for every registered scenario the
  ``fast`` backend must produce bit-identical campaign records and
  identical decision digests, and ``fast32`` must agree on decisions
  (trained surrogates separate candidates well beyond float32 noise);
* ``benchmarks/compare_records.py --decisions``.
"""

from __future__ import annotations

import queue
import sys
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.core import GONDiscriminator
from repro.core.fastscore import FastGONKernel, gon_inference_meta
from repro.core.scoring import BACKENDS, LocalScorer, validate_backend
from repro.core.surrogate import generate_metrics_batch
from repro.core.training import TrainingConfig
from repro.experiments import (
    CampaignConfig,
    prepare_campaign_assets,
    run_campaign,
)
from repro.nn.serialization import (
    InferencePack,
    export_inference,
    verify_inference_pack,
)
from repro.scenarios import all_scenarios
from repro.serving import GONScoringService, ScoringClient


def _stacks(samples, count=None):
    chosen = samples if count is None else samples[:count]
    return (
        np.stack([np.asarray(s.metrics, dtype=float) for s in chosen]),
        np.stack([np.asarray(s.schedule, dtype=float) for s in chosen]),
        np.stack([np.asarray(s.adjacency, dtype=float) for s in chosen]),
    )


def _assert_results_bitwise(fast_results, oracle_results):
    assert len(fast_results) == len(oracle_results)
    for fast, oracle in zip(fast_results, oracle_results):
        assert np.array_equal(fast.metrics, oracle.metrics)
        assert fast.confidence == oracle.confidence
        assert fast.n_steps == oracle.n_steps
        assert fast.converged == oracle.converged


# ----------------------------------------------------------------------
# Inference export
# ----------------------------------------------------------------------
class TestInferenceExport:
    def test_roundtrip_forward_equality(self, trained_gon, session_samples):
        pack = export_inference(
            trained_gon, meta=gon_inference_meta(trained_gon)
        )
        verify_inference_pack(pack, trained_gon)
        kernel = FastGONKernel(pack)
        metrics, schedules, adjacencies = _stacks(session_samples, 6)
        scores = kernel.score_stack(metrics, schedules, adjacencies)
        oracle = trained_gon.forward_batch(metrics, schedules, adjacencies).data
        assert np.array_equal(scores, np.asarray(oracle).reshape(-1))

    def test_export_is_a_frozen_snapshot(self, trained_gon):
        pack = export_inference(trained_gon)
        for array in pack.arrays.values():
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[...] = 0.0

    def test_verify_refuses_missing_and_unexpected_names(self, trained_gon):
        pack = export_inference(trained_gon)
        arrays = dict(pack.arrays)
        (dropped, extra_value), *_ = arrays.items()
        del arrays[dropped]
        with pytest.raises(KeyError):
            verify_inference_pack(
                InferencePack(arrays=arrays, meta=pack.meta), trained_gon
            )
        arrays[dropped] = extra_value
        arrays["not.a.parameter"] = extra_value
        with pytest.raises(KeyError):
            verify_inference_pack(
                InferencePack(arrays=arrays, meta=pack.meta), trained_gon
            )

    def test_verify_refuses_shape_mismatch(self, trained_gon):
        pack = export_inference(trained_gon)
        arrays = dict(pack.arrays)
        name = "head.blocks.1.bias"
        arrays[name] = np.zeros(7)
        with pytest.raises(ValueError):
            verify_inference_pack(
                InferencePack(arrays=arrays, meta=pack.meta), trained_gon
            )

    def test_export_rejects_unknown_dtype(self, trained_gon):
        with pytest.raises(ValueError):
            export_inference(trained_gon, dtype="int8")

    def test_kernel_refuses_foreign_pack(self, trained_gon):
        pack = export_inference(trained_gon, meta={"arch": "mlp"})
        with pytest.raises(ValueError):
            FastGONKernel(pack)

    def test_kernel_refuses_wrong_architecture_shape(self, trained_gon):
        # Claim a different hidden width than the arrays carry.
        meta = gon_inference_meta(trained_gon)
        meta["hidden"] = int(meta["hidden"]) * 2
        pack = export_inference(trained_gon, meta=meta)
        with pytest.raises((KeyError, ValueError)):
            FastGONKernel(pack)


# ----------------------------------------------------------------------
# Kernel parity vs the autodiff oracle
# ----------------------------------------------------------------------
class TestFastKernelParity:
    def test_forward_bitwise_equal(self, trained_gon, session_samples):
        kernel = FastGONKernel.from_model(trained_gon)
        metrics, schedules, adjacencies = _stacks(session_samples, 8)
        scores = kernel.score_stack(metrics, schedules, adjacencies)
        oracle = trained_gon.forward_batch(metrics, schedules, adjacencies).data
        assert np.array_equal(scores, np.asarray(oracle).reshape(-1))

    def test_ascent_bitwise_equal(self, trained_gon, session_samples):
        kernel = FastGONKernel.from_model(trained_gon)
        metrics, schedules, adjacencies = _stacks(session_samples, 6)
        fast = kernel.ascent(
            schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        oracle = generate_metrics_batch(
            trained_gon, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        _assert_results_bitwise(fast, oracle)

    def test_long_ascent_with_narrowing_bitwise_equal(
        self, trained_gon, session_samples
    ):
        # 40 steps with a small gamma: elements converge at different
        # times, exercising the oracle's narrowed-batch path.
        kernel = FastGONKernel.from_model(trained_gon)
        metrics, schedules, adjacencies = _stacks(session_samples, 6)
        fast = kernel.ascent(
            schedules, adjacencies, init_metrics=metrics,
            gamma=1e-3, max_steps=40,
        )
        oracle = generate_metrics_batch(
            trained_gon, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-3, max_steps=40,
        )
        _assert_results_bitwise(fast, oracle)

    def test_fast32_within_rtol(self, trained_gon, session_samples):
        kernel = FastGONKernel.from_model(trained_gon, dtype="float32")
        metrics, schedules, adjacencies = _stacks(session_samples, 6)
        fast = kernel.ascent(
            schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        oracle = generate_metrics_batch(
            trained_gon, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=5,
        )
        np.testing.assert_allclose(
            [r.confidence for r in fast],
            [r.confidence for r in oracle],
            rtol=1e-5,
            atol=1e-7,
        )

    def test_per_element_parameters_match_split_calls(
        self, trained_gon, session_samples
    ):
        # The property service-side fusing (merge_requests + fast)
        # rests on: one kernel call with per-element gamma / step caps
        # matches the separate per-request calls element for element.
        # NOT bitwise -- concatenation changes the BLAS leading
        # dimension, the documented ~1-ulp merge waiver -- so the
        # comparison is allclose at merged-policy tightness.
        kernel = FastGONKernel.from_model(trained_gon)
        metrics, schedules, adjacencies = _stacks(session_samples, 6)
        first = kernel.ascent(
            schedules[:3], adjacencies[:3], init_metrics=metrics[:3],
            gamma=1e-2, max_steps=5,
        )
        second = kernel.ascent(
            schedules[3:], adjacencies[3:], init_metrics=metrics[3:],
            gamma=2e-3, max_steps=8,
        )
        fused = kernel.ascent(
            schedules, adjacencies, init_metrics=metrics,
            gamma=np.array([1e-2] * 3 + [2e-3] * 3),
            max_steps=np.array([5] * 3 + [8] * 3),
        )
        split = first + second
        np.testing.assert_allclose(
            [r.confidence for r in fused],
            [r.confidence for r in split],
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            np.stack([r.metrics for r in fused]),
            np.stack([r.metrics for r in split]),
            atol=1e-9,
        )

    def test_ascent_rejects_bad_parameters(self, trained_gon, session_samples):
        kernel = FastGONKernel.from_model(trained_gon)
        metrics, schedules, adjacencies = _stacks(session_samples, 2)
        with pytest.raises(ValueError):
            kernel.ascent(
                schedules, adjacencies, init_metrics=metrics,
                gamma=0.0, max_steps=3,
            )
        with pytest.raises(ValueError):
            kernel.ascent(
                schedules, adjacencies, init_metrics=metrics,
                gamma=1e-2, max_steps=-1,
            )


# ----------------------------------------------------------------------
# LocalScorer backend selection
# ----------------------------------------------------------------------
class TestLocalScorerBackends:
    def test_validate_backend(self):
        for backend in BACKENDS:
            assert validate_backend(backend) == backend
        with pytest.raises(ValueError):
            validate_backend("onnx")

    def test_constructor_rejects_unknown_backend(self, trained_gon):
        with pytest.raises(ValueError):
            LocalScorer(trained_gon, backend="slow")

    def test_fast_backend_matches_exact(self, trained_gon, session_samples):
        exact = LocalScorer(trained_gon)
        fast = LocalScorer(trained_gon, backend="fast")
        metrics, schedules, adjacencies = _stacks(session_samples, 5)
        _assert_results_bitwise(
            fast.ascent(metrics, schedules, adjacencies, 1e-2, 4),
            exact.ascent(metrics, schedules, adjacencies, 1e-2, 4),
        )

    def test_fine_tune_re_exports_the_kernel(self, session_samples):
        # A private model instance: fine-tuning mutates weights.
        model = GONDiscriminator(np.random.default_rng(0), hidden=16,
                                 n_layers=2)
        scorer = LocalScorer(model, backend="fast")
        metrics, schedules, adjacencies = _stacks(session_samples, 4)
        scorer.ascent(metrics, schedules, adjacencies, 1e-2, 3)
        stale_kernel = scorer._fast_kernel()
        scorer.fine_tune(
            session_samples[:8],
            config=TrainingConfig(epochs=1, batch_size=4, seed=0),
            iterations=1,
            rng=np.random.default_rng(1),
        )
        assert scorer.generation == 1
        assert scorer._fast_kernel() is not stale_kernel
        _assert_results_bitwise(
            scorer.ascent(metrics, schedules, adjacencies, 1e-2, 3),
            generate_metrics_batch(
                model, schedules, adjacencies, init_metrics=metrics,
                gamma=1e-2, max_steps=3,
            ),
        )


# ----------------------------------------------------------------------
# Scoring service: fused buckets + adaptive window
# ----------------------------------------------------------------------
class TestServiceFastBackend:
    def _serve(self, trained_gon, n_clients=1, **kwargs):
        request_queue = queue.Queue()
        replies = {i: queue.Queue() for i in range(n_clients)}
        service = GONScoringService(
            {"scenario": trained_gon}, request_queue, replies, **kwargs
        )
        thread = threading.Thread(target=service.serve, daemon=True)
        thread.start()
        clients = [
            ScoringClient(i, "scenario", request_queue, replies[i])
            for i in range(n_clients)
        ]
        return service, thread, clients

    def test_fast_backend_replies_bitwise_equal(
        self, trained_gon, session_samples
    ):
        service, thread, (client,) = self._serve(
            trained_gon, scorer_backend="fast"
        )
        metrics, schedules, adjacencies = _stacks(session_samples, 5)
        remote = client.ascent(metrics, schedules, adjacencies,
                               gamma=1e-2, max_steps=4)
        oracle = generate_metrics_batch(
            trained_gon, schedules, adjacencies, init_metrics=metrics,
            gamma=1e-2, max_steps=4,
        )
        _assert_results_bitwise(remote, oracle)
        client.close()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_concurrent_requests_stay_bitwise_without_merging(
        self, trained_gon, session_samples
    ):
        # Two clients with *different* ascent parameters on the default
        # (merge_requests=False) fast service: every request gets its
        # own kernel call, so replies equal the per-request oracle bit
        # for bit and nothing is ever fused.
        service, thread, clients = self._serve(
            trained_gon, n_clients=2, scorer_backend="fast"
        )
        metrics, schedules, adjacencies = _stacks(session_samples, 4)
        results = {}

        def ask(index, client, gamma, steps):
            results[index] = client.ascent(
                metrics, schedules, adjacencies, gamma=gamma, max_steps=steps
            )

        threads = [
            threading.Thread(
                target=ask, args=(i, clients[i], gamma, steps), daemon=True
            )
            for i, (gamma, steps) in enumerate(((1e-2, 4), (3e-3, 6)))
        ]
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=10)
        assert sorted(results) == [0, 1]
        for index, (gamma, steps) in enumerate(((1e-2, 4), (3e-3, 6))):
            oracle = generate_metrics_batch(
                trained_gon, schedules, adjacencies, init_metrics=metrics,
                gamma=gamma, max_steps=steps,
            )
            _assert_results_bitwise(results[index], oracle)
        for client in clients:
            client.close()
        thread.join(timeout=10)
        assert service.stats.fused_elements == 0
        assert service.stats.n_elements == 8

    def test_fused_batch_deterministic_when_queued_together(
        self, trained_gon, session_samples
    ):
        # Deterministic fusing (merge_requests + fast): enqueue both
        # requests *before* serve() drains, so they are guaranteed to
        # share a batch, and the differing gamma / step caps fuse into
        # one kernel call.  Merged replies carry the ~1-ulp waiver, so
        # the oracle comparison is allclose, not bitwise.
        request_queue = queue.Queue()
        replies = {0: queue.Queue(), 1: queue.Queue()}
        service = GONScoringService(
            {"scenario": trained_gon}, request_queue, replies,
            scorer_backend="fast", merge_requests=True,
        )
        metrics, schedules, adjacencies = _stacks(session_samples, 3)
        from repro.serving import AscentRequest, ClientDone

        for client_id, (gamma, steps) in ((0, (1e-2, 3)), (1, (4e-3, 5))):
            request_queue.put(
                AscentRequest(
                    client_id=client_id,
                    request_id=1,
                    model_key="scenario",
                    metrics=metrics,
                    schedules=schedules,
                    adjacencies=adjacencies,
                    gamma=gamma,
                    max_steps=steps,
                )
            )
        request_queue.put(ClientDone(client_id=0))
        request_queue.put(ClientDone(client_id=1))
        service.serve()
        assert service.stats.fused_elements == 6
        for client_id, (gamma, steps) in ((0, (1e-2, 3)), (1, (4e-3, 5))):
            reply = replies[client_id].get_nowait()
            oracle = generate_metrics_batch(
                trained_gon, schedules, adjacencies, init_metrics=metrics,
                gamma=gamma, max_steps=steps,
            )
            np.testing.assert_allclose(
                reply.confidences,
                [r.confidence for r in oracle],
                rtol=1e-12,
            )
            np.testing.assert_allclose(
                reply.metrics,
                np.stack([r.metrics for r in oracle]),
                atol=1e-9,
            )

    def test_adaptive_window_stays_clamped(self, trained_gon, session_samples):
        window = 0.002
        service, thread, (client,) = self._serve(
            trained_gon, window_seconds=window
        )
        metrics, schedules, adjacencies = _stacks(session_samples, 2)
        for _ in range(4):
            client.ascent(metrics, schedules, adjacencies,
                          gamma=1e-2, max_steps=2)
        client.close()
        thread.join(timeout=10)
        floor = window * GONScoringService._WINDOW_FLOOR
        assert floor <= service.stats.window_seconds <= window

    def test_adaptive_window_off_keeps_configured_window(
        self, trained_gon, session_samples
    ):
        window = 0.002
        service, thread, (client,) = self._serve(
            trained_gon, window_seconds=window, adaptive_window=False
        )
        metrics, schedules, adjacencies = _stacks(session_samples, 2)
        client.ascent(metrics, schedules, adjacencies, gamma=1e-2, max_steps=2)
        client.close()
        thread.join(timeout=10)
        assert service.stats.window_seconds == window


# ----------------------------------------------------------------------
# Scenario-catalog parity sweep
# ----------------------------------------------------------------------
def _catalog_config(name: str) -> CampaignConfig:
    # CI-scale offline training (the CampaignConfig defaults): the
    # fast32 decision-agreement tier is a property of *trained*
    # surrogates -- undertrained GONs score candidates within float32
    # noise and tie-breaks legitimately flip (see the fast32 caveat in
    # repro.core.scoring).  Only the evaluation length is shortened.
    return CampaignConfig(
        scenarios=(name,),
        models=("CAROL",),
        n_seeds=1,
        workers=1,
        seed=0,
        n_intervals=3,
        shared_assets=True,
    )


@pytest.fixture(scope="module")
def catalog_sweep():
    """Per-scenario campaign results for every backend (shared assets)."""
    sweep = {}
    for spec in all_scenarios():
        config = _catalog_config(spec.name)
        assets = prepare_campaign_assets(config)
        sweep[spec.name] = {
            backend: run_campaign(
                replace(config, scorer_backend=backend),
                prepared_assets=assets,
            )
            for backend in BACKENDS
        }
    return sweep


class TestCatalogParity:
    def test_catalog_covers_all_scenarios(self, catalog_sweep):
        assert len(catalog_sweep) >= 9

    def test_fast_records_bit_identical_across_catalog(self, catalog_sweep):
        for name, results in catalog_sweep.items():
            assert results["fast"].rows() == results["exact"].rows(), name

    def test_fast_decisions_identical_across_catalog(self, catalog_sweep):
        for name, results in catalog_sweep.items():
            fast = [
                r.diagnostics["decision_digest"]
                for r in results["fast"].records
            ]
            exact = [
                r.diagnostics["decision_digest"]
                for r in results["exact"].records
            ]
            assert fast == exact, name

    def test_fast32_decisions_agree_across_most_of_catalog(
        self, catalog_sweep
    ):
        # fast32 decisions can legitimately flip where candidate scores
        # tie within float32 noise (one known instance on this catalog:
        # correlated-rack).  A kernel regression flips decisions
        # *systematically*, so the canary asserts strong-majority
        # agreement rather than universality -- the rtol tier below is
        # the per-score correctness gate.
        divergent = []
        for name, results in catalog_sweep.items():
            fast32 = [
                r.diagnostics["decision_digest"]
                for r in results["fast32"].records
            ]
            exact = [
                r.diagnostics["decision_digest"]
                for r in results["exact"].records
            ]
            if fast32 != exact:
                divergent.append(name)
        assert len(divergent) <= 2, divergent

    def test_fast32_scores_within_rtol_across_catalog(self, catalog_sweep):
        # Scorer-level tier: confidences of one warm-start ascent over
        # each scenario's trained surrogate, fast32 vs exact.
        for name in catalog_sweep:
            config = _catalog_config(name)
            assets = prepare_campaign_assets(config)[name]
            gon = assets.fresh_gon()
            samples = assets.samples[:6]
            metrics, schedules, adjacencies = _stacks(samples)
            exact = LocalScorer(gon).ascent(
                metrics, schedules, adjacencies, 1e-2, 4
            )
            fast32 = LocalScorer(gon, backend="fast32").ascent(
                metrics, schedules, adjacencies, 1e-2, 4
            )
            np.testing.assert_allclose(
                [r.confidence for r in fast32],
                [r.confidence for r in exact],
                rtol=1e-5,
                atol=1e-7,
                err_msg=name,
            )


# ----------------------------------------------------------------------
# compare_records --decisions
# ----------------------------------------------------------------------
class TestCompareRecordsDecisions:
    def _dump(self, path, digest):
        import json

        payload = {
            "records": [
                {
                    "run_index": 0,
                    "scenario": "paper-default",
                    "qos": 0.5,
                    "diagnostics": {
                        "n_fine_tunes": 1,
                        "decision_digest": digest,
                    },
                    "telemetry": {"counters": {"x": 1}},
                }
            ]
        }
        path.write_text(json.dumps(payload))

    def test_decisions_flag_catches_digest_divergence(self, tmp_path, capsys):
        sys.path.insert(0, "benchmarks")
        try:
            from compare_records import main as compare_main
        finally:
            sys.path.pop(0)
        left, right = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(left, "aaaa")
        self._dump(right, "bbbb")
        # Without --decisions, diagnostics are execution-only: equal.
        assert compare_main([str(left), str(right)]) == 0
        # With --decisions the digests must match.
        assert compare_main([str(left), str(right), "--decisions"]) == 1
        out = capsys.readouterr().out
        assert "decision_digest" in out
        self._dump(right, "aaaa")
        assert compare_main([str(left), str(right), "--decisions"]) == 0
