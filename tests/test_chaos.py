"""Chaos-schedule DSL, fault-model registry and scenario fuzzer."""

import json

import numpy as np
import pytest

from repro.chaos import (
    ArrivalSurge,
    ChaosEvent,
    ChaosSchedule,
    FederationPartition,
    LinkDegrade,
    NodeRecover,
    ScheduledFaultModel,
    ZoneBlackout,
    shrink_schedule,
)
from repro.chaos.fuzz import (
    FuzzConfig,
    fuzz_scenario_name,
    run_fuzz,
    sample_schedule,
    schedule_stream,
)
from repro.config import FaultConfig
from repro.scenarios import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.simulator import make_pi_cluster
from repro.simulator.faults import (
    FAULT_MODELS,
    AttackEvent,
    FaultInjector,
    build_fault_models,
    validate_fault_model_names,
)
from repro.simulator.topology import initial_topology

FLEET = (("pi4b-8gb", 4), ("pi4b-4gb", 4))


def _spec(**overrides):
    defaults = dict(name="chaos-test", description="test world", fleet=FLEET,
                    n_leis=2)
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _drill_schedule():
    return ChaosSchedule((
        ZoneBlackout(start=4, duration=2, zone=1, zone_size=4),
        LinkDegrade(start=6, duration=3, hosts=(0, 1), intensity=0.6),
        FederationPartition(start=10, duration=2, fraction=0.3),
        ArrivalSurge(start=13, duration=2, multiplier=3.0),
        NodeRecover(start=16, duration=1, hosts=(4, 5)),
    ))


class TestChaosEvents:
    def test_base_event_is_abstract(self):
        with pytest.raises(TypeError, match="registered kind"):
            ChaosEvent(start=1, duration=1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            ZoneBlackout(start=1, duration=0)

    def test_start_is_one_based(self):
        with pytest.raises(ValueError, match="start"):
            ArrivalSurge(start=0, duration=1)

    def test_non_integer_interval_fields_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            ZoneBlackout(start=1.5, duration=1)

    def test_hosts_normalised_sorted_deduplicated(self):
        event = LinkDegrade(start=1, duration=1, hosts=(3, 1, 3, 2))
        assert event.hosts == (1, 2, 3)

    def test_empty_hosts_rejected(self):
        with pytest.raises(ValueError, match="at least one host"):
            NodeRecover(start=1, duration=1, hosts=())

    def test_node_recover_is_instantaneous(self):
        with pytest.raises(ValueError, match="duration must be 1"):
            NodeRecover(start=1, duration=2, hosts=(0,))

    def test_partition_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            FederationPartition(start=1, duration=1, fraction=1.0)

    def test_surge_multiplier_bounds(self):
        with pytest.raises(ValueError, match="multiplier"):
            ArrivalSurge(start=1, duration=1, multiplier=0.5)

    def test_from_dict_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown chaos event kind"):
            ChaosEvent.from_dict({"kind": "meteor_strike", "start": 1,
                                  "duration": 1})

    def test_from_dict_unknown_field(self):
        with pytest.raises(ValueError, match="unknown zone_blackout fields"):
            ChaosEvent.from_dict({"kind": "zone_blackout", "start": 1,
                                  "duration": 1, "zzz": 3})

    def test_window_half_open(self):
        event = ZoneBlackout(start=4, duration=2)
        assert not event.active(3)
        assert event.active(4) and event.active(5)
        assert not event.active(6)


class TestChaosSchedule:
    def test_dict_roundtrip(self):
        schedule = _drill_schedule()
        assert ChaosSchedule.from_dict(schedule.to_dict()) == schedule

    def test_rows_roundtrip(self):
        schedule = _drill_schedule()
        assert ChaosSchedule.from_rows(schedule.to_rows()) == schedule

    def test_json_roundtrip(self):
        schedule = _drill_schedule()
        rebuilt = ChaosSchedule.from_dict(
            json.loads(schedule.canonical_json())
        )
        assert rebuilt.content_hash() == schedule.content_hash()

    def test_canonical_order_independent_of_input_order(self):
        events = _drill_schedule().events
        reordered = ChaosSchedule(tuple(reversed(events)))
        assert reordered == _drill_schedule()
        assert reordered.content_hash() == _drill_schedule().content_hash()

    def test_same_kind_scope_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlapping zone_blackout"):
            ChaosSchedule((
                ZoneBlackout(start=4, duration=3, zone=0),
                ZoneBlackout(start=5, duration=2, zone=0),
            ))
        with pytest.raises(ValueError, match="overlapping link_degrade"):
            ChaosSchedule((
                LinkDegrade(start=1, duration=4, hosts=(0, 1)),
                LinkDegrade(start=2, duration=1, hosts=(1, 5)),
            ))
        with pytest.raises(ValueError, match="overlapping federation_partition"):
            ChaosSchedule((
                FederationPartition(start=1, duration=3, fraction=0.3),
                FederationPartition(start=2, duration=1, fraction=0.5),
            ))

    def test_disjoint_or_different_kinds_compose(self):
        ChaosSchedule((
            ZoneBlackout(start=4, duration=2, zone=0),
            ZoneBlackout(start=6, duration=2, zone=0),   # adjacent, not overlapping
            ZoneBlackout(start=4, duration=2, zone=1),   # different zone
            LinkDegrade(start=4, duration=2, hosts=(0,)),  # different kind
        ))

    def test_validate_for_rejects_out_of_range_hosts(self):
        with pytest.raises(ValueError, match="out of range"):
            ChaosSchedule((
                LinkDegrade(start=1, duration=1, hosts=(99,)),
            )).validate_for(8)
        with pytest.raises(ValueError, match="outside"):
            ChaosSchedule((
                ZoneBlackout(start=1, duration=1, zone=5, zone_size=4),
            )).validate_for(8)

    def test_spec_validates_schedule_against_fleet(self):
        schedule = ChaosSchedule((
            NodeRecover(start=1, duration=1, hosts=(12,)),
        ))
        with pytest.raises(ValueError, match="out of range"):
            _spec(chaos=schedule)

    def test_spec_rejects_chaos_rows_on_fault_config(self):
        rows = _drill_schedule().to_rows()
        with pytest.raises(ValueError, match="not on FaultConfig.chaos"):
            _spec(faults=FaultConfig(chaos=rows))

    def test_spec_roundtrip_with_chaos(self):
        spec = _spec(chaos=_drill_schedule())
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_compile_threads_rows_into_fault_config(self):
        spec = _spec(chaos=_drill_schedule())
        config = spec.compile(seed=7, n_intervals=20)
        assert config.faults.chaos == _drill_schedule().to_rows()
        names = [m.name for m in build_fault_models(config.faults)]
        assert names[-1] == "chaos"


class TestScheduledFaultModel:
    def _harness(self, rate=0.0):
        hosts = make_pi_cluster(8, 4)
        topology = initial_topology(8, 2)
        injector = FaultInjector(
            FaultConfig(rate=rate), np.random.default_rng(5)
        )
        return hosts, topology, injector

    def test_sample_consumes_no_rng(self):
        hosts, topology, injector = self._harness()
        model = _drill_schedule().compile()
        assert isinstance(model, ScheduledFaultModel)
        before = injector.rng.bit_generator.state
        for interval in range(1, 20):
            model.sample(interval, topology, hosts, injector)
        assert injector.rng.bit_generator.state == before

    def test_blackout_targets_live_zone_hosts(self):
        hosts, topology, injector = self._harness()
        model = _drill_schedule().compile()
        events = model.sample(4, topology, hosts, injector)
        blackout = [e for e in events if e.attack_type == "zone_blackout"]
        assert sorted(e.target for e in blackout) == [4, 5, 6, 7]
        assert all(e.model == "chaos" for e in events)

    def test_partition_set_resolved_once_and_reasserted(self):
        hosts, topology, injector = self._harness()
        model = _drill_schedule().compile()
        first = model.sample(10, topology, hosts, injector)
        severed = sorted(
            e.target for e in first
            if e.attack_type == "federation_partition"
        )
        assert severed  # 0.3 of 8 live hosts -> 2 severed
        hosts[severed[0]].crash(60.0)  # a severed host dies mid-window
        second = model.sample(11, topology, hosts, injector)
        assert sorted(
            e.target for e in second
            if e.attack_type == "federation_partition"
        ) == severed

    def test_arrival_multiplier_window(self):
        hosts, topology, injector = self._harness()
        model = _drill_schedule().compile()
        # Engine order: arrivals for t are drawn after sample(t-1).
        model.sample(12, topology, hosts, injector)
        assert model.arrival_multiplier() == pytest.approx(3.0)  # t=13
        model.sample(14, topology, hosts, injector)
        assert model.arrival_multiplier() == pytest.approx(1.0)  # t=15

    def test_node_recover_clears_active_attacks(self):
        hosts, topology, injector = self._harness()
        injector.models = [_drill_schedule().compile()]
        injector._active[4] = [["cpu", 0.9, 3]]
        injector.inject(16, topology, hosts)
        assert 4 not in injector._active

    def test_chaos_does_not_perturb_stochastic_models(self):
        config = FaultConfig(rate=0.5)
        plain = FaultInjector(config, np.random.default_rng(11))
        hosts, topology, _ = self._harness()
        baseline = [
            plain.inject(t, topology, make_pi_cluster(8, 4))
            for t in range(1, 6)
        ]
        chained = FaultInjector(
            config, np.random.default_rng(11),
            models=build_fault_models(config) + [_drill_schedule().compile()],
        )
        with_chaos = [
            chained.inject(t, topology, make_pi_cluster(8, 4))
            for t in range(1, 6)
        ]
        for plain_events, chaos_events in zip(baseline, with_chaos):
            stochastic = [e for e in chaos_events if e.model != "chaos"]
            assert stochastic == plain_events


class TestFaultModelRegistry:
    def test_five_models_registered_in_historical_order(self):
        assert list(FAULT_MODELS) == [
            "poisson", "correlated", "cascade", "partition", "surge",
        ]

    def test_unknown_name_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            validate_fault_model_names(("poisson", "nope"))

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_fault_model_names(("poisson", "poisson"))

    def test_spec_rejects_unknown_model_name_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            _spec(faults=FaultConfig(models=("typo",)))

    def test_auto_mode_matches_rate_gating(self):
        config = FaultConfig(rate=0.5, surge_rate=0.2, surge_multiplier=2.0)
        assert [m.name for m in build_fault_models(config)] == [
            "poisson", "surge",
        ]

    def test_explicit_names_build_in_given_order_ignoring_gates(self):
        config = FaultConfig(rate=0.0, models=("surge", "poisson"))
        assert [m.name for m in build_fault_models(config)] == [
            "surge", "poisson",
        ]

    def test_attack_event_requires_model_attribution(self):
        with pytest.raises(TypeError):
            AttackEvent(1, 0, "cpu_overload", "cpu", 0.5, 1)


class TestFuzzer:
    TINY = dict(scenario="paper-default", model="DYVERSE", budget=2,
                n_seeds=1, seed=9, n_intervals=6, max_events=3,
                threshold=0.0)

    def test_schedule_stream_deterministic(self):
        config = FuzzConfig(**self.TINY)
        first = schedule_stream(config, 8, 6)
        second = schedule_stream(config, 8, 6)
        assert [s.content_hash() for s in first] == [
            s.content_hash() for s in second
        ]

    def test_different_seeds_differ(self):
        a = schedule_stream(FuzzConfig(**self.TINY), 8, 12)
        b = schedule_stream(
            FuzzConfig(**dict(self.TINY, seed=10)), 8, 12
        )
        assert [s.content_hash() for s in a] != [s.content_hash() for s in b]

    def test_sampled_schedules_validate_for_fleet(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            schedule = sample_schedule(rng, 8, 12, 4)
            schedule.validate_for(8)
            assert 1 <= len(schedule) <= 4

    def test_shrink_is_greedy_minimal(self):
        schedule = _drill_schedule()

        def fails(candidate):
            return any(
                isinstance(e, ZoneBlackout) for e in candidate.events
            )

        shrunk = shrink_schedule(schedule, fails)
        assert len(shrunk) == 1
        (event,) = shrunk.events
        assert isinstance(event, ZoneBlackout)
        assert event.duration == 1  # halved from 2

    def test_run_fuzz_deterministic_with_shrinking(self):
        config = FuzzConfig(**self.TINY)
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert json.dumps(first.to_payload(), sort_keys=True) == \
            json.dumps(second.to_payload(), sort_keys=True)
        # threshold 0 makes every strictly-degrading schedule a cliff;
        # paired seeds make a no-op schedule score exactly 0.
        for outcome in first.outcomes:
            assert outcome.cliff == (outcome.score >= 0.0)
            assert outcome.scenario == fuzz_scenario_name(
                "paper-default", outcome.schedule
            )

    def test_baseline_self_delta_is_zero(self):
        config = FuzzConfig(**dict(self.TINY, budget=1))
        result = run_fuzz(config)
        # The baseline compared with itself must score exactly zero --
        # paired seeds, bit-identical records.
        from repro.chaos.fuzz import cliff_score

        assert cliff_score(
            result.base_metrics, result.base_metrics, 6 * 300.0
        ) == 0.0

    def test_fuzz_serial_matches_fleet(self):
        serial = run_fuzz(FuzzConfig(**dict(self.TINY, shrink=False)))
        fleet = run_fuzz(FuzzConfig(**dict(
            self.TINY, shrink=False, mode="fleet", workers=2,
        )))
        strip = ("mode", "workers", "transport")
        a, b = serial.to_payload(), fleet.to_payload()
        for payload in (a, b):
            for key in strip:
                payload["config"].pop(key)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestChaosDrillScenario:
    def test_catalog_has_chaos_drill(self):
        spec = get_scenario("chaos-drill")
        assert spec.chaos is not None
        assert len(spec.chaos) == 5
        spec.chaos.validate_for(spec.n_hosts)

    def test_chaos_drill_runs_and_attributes_events(self):
        from repro.experiments.campaign import (
            CampaignConfig,
            plan_tasks,
            run_cell,
        )
        from repro.experiments.calibration import build_model

        config = CampaignConfig(
            scenarios=("chaos-drill",), models=("DYVERSE",),
            n_seeds=1, n_intervals=8,
        )
        (task,) = plan_tasks(config)
        record = run_cell(
            task,
            lambda cfg, run_seed: build_model(task.model, None, cfg),
        )
        assert record.scenario == "chaos-drill"
        assert set(record.metrics) == {
            "energy_kwh", "response_time_s", "slo_violation_rate",
            "completed_tasks", "downtime_s",
        }
