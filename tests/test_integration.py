"""End-to-end integration: the full paper pipeline at miniature scale."""

from dataclasses import replace

import pytest

from repro.config import ExperimentConfig, FaultConfig, FederationConfig, WorkloadConfig
from repro.core import CAROLConfig, TrainingConfig
from repro.experiments import (
    Fig2Config,
    Fig4Config,
    build_model,
    format_fig2,
    format_fig4,
    format_results,
    prepare_assets,
    run_experiment,
    run_fig2,
    run_fig4,
)
from repro.experiments.calibration import collect_defog_trace


@pytest.fixture(scope="module")
def mini_config():
    return ExperimentConfig(
        federation=FederationConfig(n_hosts=8, n_leis=2, n_large_hosts=4),
        workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=8,
        seed=11,
    )


@pytest.fixture(scope="module")
def mini_assets(mini_config):
    return prepare_assets(
        mini_config,
        trace_intervals=40,
        gon_hidden=16,
        gon_layers=2,
        training=TrainingConfig(
            epochs=3, batch_size=8, learning_rate=1e-3,
            generation_steps=8, seed=11,
        ),
    )


class TestPipeline:
    def test_trace_uses_defog_and_mutates_topology(self, mini_config):
        trace = collect_defog_trace(mini_config, n_intervals=25)
        assert len(trace) == 25
        assert trace.n_topologies >= 2

    def test_assets_trained(self, mini_assets):
        history = mini_assets.training_history
        assert history.losses[-1] <= history.losses[0]
        gon = mini_assets.fresh_gon()
        # Weights restored exactly.
        sample = mini_assets.samples[0]
        assert 0.0 <= gon.score(sample) <= 1.0

    def test_carol_and_baseline_run_same_world(self, mini_assets, mini_config):
        carol = build_model(
            "CAROL", mini_assets, mini_config,
            carol_config=CAROLConfig(
                surrogate_steps=3, tabu_iterations=1, neighbourhood_sample=6,
                pot_calibration=6, min_buffer=3, seed=11,
            ),
        )
        dyverse = build_model("DYVERSE", mini_assets, mini_config)
        carol_result = run_experiment(carol, mini_config)
        dyverse_result = run_experiment(dyverse, mini_config)
        # Identical workload/fault seeds -> identical arrival statistics.
        carol_new = sum(m.n_new_tasks for m in carol_result.metrics.intervals)
        dyverse_new = sum(m.n_new_tasks for m in dyverse_result.metrics.intervals)
        assert carol_new == dyverse_new
        for result in (carol_result, dyverse_result):
            summary = result.summary()
            assert summary["energy_kwh"] > 0
            assert 0 <= summary["slo_violation_rate"] <= 1

    def test_fig2_pipeline(self, mini_assets, mini_config):
        result = run_fig2(
            Fig2Config(base=mini_config, n_intervals=8),
            assets=mini_assets,
        )
        assert len(result.confidences) == 8
        rendered = format_fig2(result)
        assert "Fig. 2" in rendered
        assert "fine_tunes=" in rendered

    def test_fig4_pipeline(self, mini_config):
        history = run_fig4(
            Fig4Config(
                base=mini_config,
                trace_intervals=30,
                gon_hidden=16,
                gon_layers=1,
                training=TrainingConfig(
                    epochs=2, batch_size=8, learning_rate=1e-3,
                    generation_steps=5, seed=11,
                ),
            )
        )
        assert len(history.losses) == 2
        rendered = format_fig4(history)
        assert "Fig. 4" in rendered

    def test_format_results_panels(self, mini_assets, mini_config):
        config = replace(mini_config, n_intervals=4)
        results = {}
        for name in ("CAROL", "DYVERSE"):
            model = build_model(
                name, mini_assets, config,
                carol_config=CAROLConfig(
                    surrogate_steps=3, tabu_iterations=1,
                    neighbourhood_sample=4, seed=11,
                ),
            )
            results[name] = run_experiment(model, config)
        rendered = format_results(results)
        for panel in ("5(a)", "5(b)", "5(c)", "5(d)", "5(e)", "5(f)"):
            assert panel in rendered
        assert "vs CAROL" in rendered
