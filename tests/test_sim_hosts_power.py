"""Host models, power curves and resource accounting."""

import numpy as np
import pytest

from repro.simulator import (
    Host,
    HostSpec,
    InterpolatedPowerModel,
    LinearPowerModel,
    PI4B_POWER,
    RESOURCES,
    make_pi_cluster,
)
from repro.simulator.host import PI4B_4GB, PI4B_8GB


class TestPowerModels:
    def test_linear_endpoints(self):
        model = LinearPowerModel(2.0, 6.0)
        assert model.watts(0.0) == 2.0
        assert model.watts(1.0) == 6.0
        assert model.watts(0.5) == 4.0

    def test_linear_clamps(self):
        model = LinearPowerModel(2.0, 6.0)
        assert model.watts(-1.0) == 2.0
        assert model.watts(2.0) == 6.0

    def test_linear_rejects_bad_range(self):
        with pytest.raises(ValueError):
            LinearPowerModel(5.0, 2.0)

    def test_interpolated_monotone(self):
        utils = np.linspace(0, 1.5, 30)
        watts = [PI4B_POWER.watts(u) for u in utils]
        assert all(b >= a for a, b in zip(watts, watts[1:]))

    def test_pi4b_anchor_values(self):
        assert PI4B_POWER.watts(0.0) == pytest.approx(2.7)
        assert PI4B_POWER.watts(1.0) == pytest.approx(6.4)
        # Throttling region saturates at the last anchor.
        assert PI4B_POWER.watts(3.0) == pytest.approx(7.3)

    def test_interpolated_validation(self):
        with pytest.raises(ValueError):
            InterpolatedPowerModel([0.0], [1.0])
        with pytest.raises(ValueError):
            InterpolatedPowerModel([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            InterpolatedPowerModel([0.0, 1.0], [1.0, -2.0])

    def test_energy_joules(self):
        model = LinearPowerModel(2.0, 6.0)
        assert model.energy_joules(1.0, 10.0) == 60.0
        with pytest.raises(ValueError):
            model.energy_joules(0.5, -1.0)


class TestHostSpec:
    def test_pi_variants(self):
        assert PI4B_4GB.ram_gb == 4.0
        assert PI4B_8GB.ram_gb == 8.0
        assert PI4B_4GB.cpu_mips == PI4B_8GB.cpu_mips

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            HostSpec("bad", cpu_mips=0, ram_gb=1, disk_mbps=1, net_mbps=1)


class TestHost:
    def test_capacity_lookup(self):
        host = Host(0, PI4B_4GB)
        assert host.capacity("cpu") == 4000.0
        assert host.capacity("ram") == 4.0
        with pytest.raises(KeyError):
            host.capacity("gpu")

    def test_utilisation_from_demand(self):
        host = Host(0, PI4B_4GB)
        utilisation = host.compute_utilisation(
            {"cpu": 2000.0, "ram": 2.0, "disk": 20.0, "net": 500.0}
        )
        assert utilisation["cpu"] == pytest.approx(0.5)
        assert utilisation["ram"] == pytest.approx(0.5)
        assert utilisation["disk"] == pytest.approx(0.5)
        assert utilisation["net"] == pytest.approx(0.5)

    def test_fault_load_adds(self):
        host = Host(0, PI4B_4GB)
        host.fault_load["cpu"] = 0.4
        utilisation = host.compute_utilisation({"cpu": 2000.0})
        assert utilisation["cpu"] == pytest.approx(0.9)

    def test_management_load_adds(self):
        host = Host(0, PI4B_8GB)
        host.management_cpu = 0.2
        host.management_ram_gb = 2.0
        utilisation = host.compute_utilisation({})
        assert utilisation["cpu"] == pytest.approx(0.2)
        assert utilisation["ram"] == pytest.approx(0.25)

    def test_overload_detection(self):
        host = Host(0, PI4B_4GB)
        host.compute_utilisation({"cpu": 5000.0})
        assert host.is_overloaded(1.0)
        assert not host.is_overloaded(2.0)

    def test_crash_and_reboot_cycle(self):
        host = Host(0, PI4B_4GB)
        host.fault_load["cpu"] = 1.0
        host.crash(100.0)
        assert not host.alive
        assert not host.advance_reboot(50.0)
        assert host.advance_reboot(60.0)
        assert host.alive
        # Snapshot restore clears the injected fault load.
        assert host.fault_load["cpu"] == 0.0
        assert host.downtime_seconds == pytest.approx(100.0)

    def test_reset_interval(self):
        host = Host(0, PI4B_4GB)
        host.downtime_seconds = 50.0
        host.task_ids = [1, 2]
        host.reset_interval()
        assert host.downtime_seconds == 0.0
        assert host.task_ids == []

    def test_power_at_utilisation(self):
        host = Host(0, PI4B_4GB)
        host.compute_utilisation({"cpu": 4000.0})
        assert host.power_watts() == pytest.approx(6.4)


class TestCluster:
    def test_pi_cluster_split(self):
        hosts = make_pi_cluster(16, 8)
        assert len(hosts) == 16
        assert all(h.spec.ram_gb == 8.0 for h in hosts[:8])
        assert all(h.spec.ram_gb == 4.0 for h in hosts[8:])

    def test_cluster_ids_sequential(self):
        hosts = make_pi_cluster(5, 2)
        assert [h.host_id for h in hosts] == [0, 1, 2, 3, 4]

    def test_rejects_bad_large_count(self):
        with pytest.raises(ValueError):
            make_pi_cluster(4, 5)

    def test_resources_constant(self):
        assert RESOURCES == ("cpu", "ram", "disk", "net")
