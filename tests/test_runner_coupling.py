"""Runner-level coupling: overheads feed back into the simulation.

The paper's central systems argument is that model fine-tuning and
memory consumption *compete with the workload for broker resources*
(§I).  These tests verify that the reproduction's runner actually wires
that feedback: a model that burns CPU in ``observe`` raises broker
utilisation (and therefore energy) in the following interval.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.interface import ResilienceModel
from repro.experiments import run_experiment
from repro.simulator import EdgeFederation


class IdleModel(ResilienceModel):
    """Accepts every proposal, does nothing else."""

    name = "idle"

    def repair(self, view, report, proposal):
        return proposal


class BusyModel(ResilienceModel):
    """Burns wall-clock in observe() to emulate heavy fine-tuning."""

    name = "busy"

    def __init__(self, burn_seconds: float = 0.2) -> None:
        self.burn_seconds = burn_seconds

    def repair(self, view, report, proposal):
        return proposal

    def observe(self, metrics, view):
        import time

        deadline = time.perf_counter() + self.burn_seconds
        while time.perf_counter() < deadline:
            np.dot(np.ones(64), np.ones(64))


class HeavyMemoryModel(IdleModel):
    name = "heavy-memory"

    def memory_bytes(self):
        return 4 * 1024 ** 3  # 4 GB resident


class TestOverheadFeedback:
    def test_busy_model_raises_broker_load_and_energy(self, small_config):
        config = replace(small_config, n_intervals=6)
        idle = run_experiment(IdleModel(), config)
        busy = run_experiment(BusyModel(burn_seconds=0.4), config)
        # Same workload seeds; the busy model's compute is charged to
        # brokers, which draw more power.
        assert busy.metrics.total_energy_kwh > idle.metrics.total_energy_kwh
        assert busy.metrics.total_fine_tune_seconds > idle.metrics.total_fine_tune_seconds

    def test_memory_charged_to_brokers(self, small_config):
        config = replace(small_config, n_intervals=3)
        federation = EdgeFederation(config)
        result = run_experiment(
            HeavyMemoryModel(), config, federation=federation
        )
        broker = sorted(federation.topology.brokers)[0]
        host = federation.hosts[broker]
        # 4 GB of model on the broker shows up as management RAM.
        assert host.management_ram_gb >= 4.0
        assert result.summary()["memory_percent"] == pytest.approx(50.0)

    def test_decision_times_measured_not_reported(self, small_config):
        config = replace(small_config, n_intervals=4)
        result = run_experiment(IdleModel(), config)
        assert all(t >= 0 for t in result.metrics.decision_times)
        assert len(result.metrics.decision_times) == 4

    def test_edge_slowdown_capped_at_interval(self, small_config):
        """A pathological 1000s-per-interval model cannot charge more
        than one interval of broker CPU."""
        config = replace(small_config, n_intervals=2)
        federation = EdgeFederation(config)
        run_experiment(
            BusyModel(burn_seconds=0.05), config, federation=federation,
            edge_slowdown=1e6,
        )
        broker = sorted(federation.topology.brokers)[0]
        # Management CPU fraction <= 1 (the cap) + small baseline.
        assert federation.hosts[broker].management_cpu <= 1.4
