"""Configuration dataclasses and the metric/schedule encodings."""

import numpy as np
import pytest

from repro.config import (
    ExperimentConfig,
    FaultConfig,
    FederationConfig,
    WorkloadConfig,
    ci_scale,
    paper_scale,
)
from repro.simulator import IntervalMetrics, M_FEATURES, RunMetrics, S_FEATURES


class TestFederationConfig:
    def test_paper_scale_matches_testbed(self):
        config = paper_scale()
        assert config.federation.n_hosts == 16
        assert config.federation.n_leis == 4
        assert config.federation.n_large_hosts == 8
        assert config.federation.interval_seconds == 300.0
        assert config.n_intervals == 100
        assert config.workload.suite == "aiot"
        assert config.faults.rate == 0.5

    def test_ci_scale_seedable(self):
        assert ci_scale(seed=9).seed == 9

    def test_rejects_too_few_hosts(self):
        with pytest.raises(ValueError):
            FederationConfig(n_hosts=1)

    def test_rejects_infeasible_leis(self):
        with pytest.raises(ValueError):
            FederationConfig(n_hosts=8, n_leis=5)

    def test_rejects_bad_large_count(self):
        with pytest.raises(ValueError):
            FederationConfig(n_hosts=8, n_large_hosts=9)


class TestWorkloadFaultConfig:
    def test_rejects_unknown_suite(self):
        with pytest.raises(ValueError):
            WorkloadConfig(suite="bogus")

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate=0.0)

    def test_fault_recovery_bounds(self):
        with pytest.raises(ValueError):
            FaultConfig(recovery_seconds=(300.0, 60.0))
        with pytest.raises(ValueError):
            FaultConfig(rate=-1.0)

    def test_paper_attack_set(self):
        assert set(FaultConfig().attack_types) == {
            "cpu_overload", "ram_contention", "disk_attack", "ddos_attack",
        }


class TestExperimentConfig:
    def test_alpha_beta_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ExperimentConfig(alpha=0.6, beta=0.6)

    def test_rejects_zero_intervals(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_intervals=0)

    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.alpha == 0.5 and config.beta == 0.5


class TestEncodings:
    def test_m_feature_layout_matches_paper(self):
        """M_i = [u_i, q_i, t_i] (§IV-A): utilisations, QoS, task stats."""
        assert M_FEATURES[:4] == ("cpu_util", "ram_util", "disk_util", "net_util")
        assert M_FEATURES[4:6] == ("energy_norm", "slo_rate")
        assert len(M_FEATURES) == 10
        assert len(S_FEATURES) == 3

    def test_metrics_bounded_sane(self, federation):
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        record = federation.run_interval()
        matrix = record.host_metrics
        assert np.all(matrix >= 0.0)
        assert np.all(matrix[:, 4] <= 1.5)  # energy_norm near [0, 1]
        assert np.all(matrix[:, 5] <= 1.0)  # slo rate is a fraction

    def test_schedule_encoding_counts_tasks(self, federation):
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        record = federation.run_interval()
        if record.n_new_tasks:
            assert record.schedule_encoding[:, 0].sum() > 0


class TestRunMetrics:
    def _interval(self, energy=0.01, responses=(10.0,), violations=(False,)):
        from repro.simulator import initial_topology

        return IntervalMetrics(
            interval=1,
            topology=initial_topology(4, 1),
            host_metrics=np.zeros((4, len(M_FEATURES))),
            schedule_encoding=np.zeros((4, len(S_FEATURES))),
            energy_kwh=energy,
            response_times=list(responses),
            slo_violations=list(violations),
        )

    def test_totals_accumulate(self):
        run = RunMetrics()
        run.add(self._interval(energy=0.01))
        run.add(self._interval(energy=0.02))
        assert run.total_energy_kwh == pytest.approx(0.03)
        assert run.n_completed == 2

    def test_slo_rate_over_all_tasks(self):
        run = RunMetrics()
        run.add(self._interval(responses=(1.0, 2.0), violations=(True, False)))
        run.add(self._interval(responses=(3.0,), violations=(False,)))
        assert run.slo_violation_rate == pytest.approx(1 / 3)

    def test_empty_run_zero_rates(self):
        run = RunMetrics()
        assert run.mean_response_time == 0.0
        assert run.slo_violation_rate == 0.0
        assert run.mean_decision_time == 0.0

    def test_memory_percent(self):
        run = RunMetrics()
        run.model_memory_bytes = int(0.8 * 1024 ** 3)
        assert run.memory_percent(node_ram_gb=8.0) == pytest.approx(10.0)

    def test_summary_complete(self):
        run = RunMetrics()
        run.add(self._interval())
        run.decision_times.append(0.5)
        run.fine_tune_times.append(1.5)
        summary = run.summary()
        assert summary["decision_time_s"] == pytest.approx(0.5)
        assert summary["fine_tune_overhead_s"] == pytest.approx(1.5)

    def test_interval_metrics_properties(self):
        metrics = self._interval(responses=(2.0, 4.0), violations=(True, True))
        assert metrics.mean_response_time == pytest.approx(3.0)
        assert metrics.slo_violation_rate == 1.0
        assert metrics.n_completed == 2
