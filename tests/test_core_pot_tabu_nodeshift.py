"""POT thresholding, tabu search and node-shift operations."""

import numpy as np
import pytest

from repro.core import (
    PeakOverThreshold,
    neighbours,
    random_node_shift,
    repair_options,
    shift_type_1,
    shift_type_2,
    shift_type_3,
    tabu_search,
)
from repro.simulator import Topology, initial_topology


class TestPOT:
    def test_warmup_returns_minus_inf(self):
        pot = PeakOverThreshold(calibration_size=10)
        for value in np.linspace(0.5, 0.9, 9):
            assert pot.update(value) == -np.inf
        assert not pot.calibrated

    def test_threshold_below_bulk(self):
        pot = PeakOverThreshold(calibration_size=20, risk=1e-2)
        rng = np.random.default_rng(0)
        threshold = -np.inf
        for _ in range(100):
            threshold = pot.update(0.7 + 0.05 * rng.normal())
        assert threshold < 0.7
        assert np.isfinite(threshold)

    def test_sharp_dip_crosses_threshold(self):
        pot = PeakOverThreshold(calibration_size=20, risk=2e-2)
        rng = np.random.default_rng(1)
        for _ in range(80):
            pot.update(0.8 + 0.02 * rng.normal())
        threshold = pot.threshold
        # A dramatic dip lands below the fitted threshold.
        assert 0.3 < threshold

    def test_adapts_to_regime_change(self):
        pot = PeakOverThreshold(calibration_size=20, max_history=100)
        rng = np.random.default_rng(2)
        for _ in range(100):
            pot.update(0.8 + 0.02 * rng.normal())
        high_regime = pot.threshold
        for _ in range(200):
            pot.update(0.4 + 0.02 * rng.normal())
        low_regime = pot.threshold
        assert low_regime < high_regime

    def test_history_capped(self):
        pot = PeakOverThreshold(calibration_size=10, max_history=50)
        for i in range(200):
            pot.update(float(i))
        assert pot.n_observations == 50

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PeakOverThreshold(risk=0.0)
        with pytest.raises(ValueError):
            PeakOverThreshold(init_quantile=1.0)
        with pytest.raises(ValueError):
            PeakOverThreshold(calibration_size=2)

    def test_gpd_fit_constant_excesses(self):
        sigma, xi = PeakOverThreshold._fit_gpd(np.full(10, 0.1))
        assert sigma > 0
        assert xi == 0.0

    def test_gpd_fit_clamped(self):
        rng = np.random.default_rng(3)
        excesses = rng.exponential(0.1, size=50)
        sigma, xi = PeakOverThreshold._fit_gpd(excesses)
        assert sigma > 0
        assert -0.5 <= xi <= 0.49


class TestNodeShifts:
    @pytest.fixture
    def after_failure(self):
        """Broker 1 of a 2-LEI topology failed: detached with orphans."""
        topo = initial_topology(8, 2)
        orphans = topo.lei(1)
        return topo.detach(1), list(orphans)

    def test_type1_increases_broker_count(self, after_failure):
        stripped, orphans = after_failure
        for option in shift_type_1(stripped, orphans):
            assert len(option.brokers) == len(stripped.brokers) + 2
            assert set(orphans) <= option.attached

    def test_type1_needs_two_orphans(self, after_failure):
        stripped, orphans = after_failure
        assert shift_type_1(stripped, orphans[:1]) == []

    def test_type2_keeps_broker_count(self, after_failure):
        stripped, orphans = after_failure
        options = shift_type_2(stripped, orphans)
        assert len(options) == len(stripped.brokers)
        for option in options:
            assert option.brokers == stripped.brokers
            assert set(orphans) <= set(option.assignment)

    def test_type3_adds_one_broker(self, after_failure):
        stripped, orphans = after_failure
        options = shift_type_3(stripped, orphans)
        assert len(options) == len(orphans)
        for option in options:
            assert len(option.brokers) == len(stripped.brokers) + 1
            new_broker = next(iter(option.brokers - stripped.brokers))
            assert new_broker in orphans

    def test_fig1_broker_count_semantics(self, after_failure):
        """Fig. 1: relative to the pre-failure count B, Type 1 gives
        B+1 brokers, Type 2 gives B-1, Type 3 gives B."""
        stripped, orphans = after_failure
        pre_failure = len(stripped.brokers) + 1  # the failed one
        for option in shift_type_1(stripped, orphans):
            assert len(option.brokers) == pre_failure + 1
        for option in shift_type_2(stripped, orphans):
            assert len(option.brokers) == pre_failure - 1
        for option in shift_type_3(stripped, orphans):
            assert len(option.brokers) == pre_failure

    def test_repair_options_all_attach_orphans(self, after_failure):
        stripped, orphans = after_failure
        options = repair_options(stripped, orphans)
        assert options
        for option in options:
            for orphan in orphans:
                assert orphan in option.attached

    def test_repair_options_deduplicated(self, after_failure):
        stripped, orphans = after_failure
        options = repair_options(stripped, orphans)
        keys = [o.canonical_key() for o in options]
        assert len(keys) == len(set(keys))


class TestNeighbourhood:
    def test_neighbours_are_valid_and_distinct(self):
        topo = initial_topology(8, 2)
        options = neighbours(topo)
        assert options
        keys = {o.canonical_key() for o in options}
        assert topo.canonical_key() not in keys
        assert len(keys) == len(options)
        for option in options:
            assert option.attached == topo.attached

    def test_contains_merge_and_split(self):
        topo = initial_topology(9, 3)
        counts = {len(o.brokers) for o in neighbours(topo)}
        assert (3 - 1) in counts  # merge
        assert (3 + 1) in counts  # split

    def test_max_lei_size_filter(self):
        topo = initial_topology(8, 2)
        options = neighbours(topo, max_lei_size=3)
        for option in options:
            assert max(option.lei_sizes().values()) <= 3

    def test_random_shift_returns_neighbour(self, rng):
        topo = initial_topology(8, 2)
        shifted = random_node_shift(topo, rng)
        assert shifted.canonical_key() != topo.canonical_key()

    def test_random_shift_degenerate_topology(self, rng):
        topo = Topology(2, brokers=[0], assignment={1: 0})
        assert random_node_shift(topo, rng) == topo


class TestTabuSearch:
    def _objective_by_broker_count(self, target):
        def objective(topo):
            return abs(len(topo.brokers) - target)
        return objective

    def test_finds_target_broker_count(self):
        topo = initial_topology(12, 2)
        result = tabu_search(
            topo,
            objective=self._objective_by_broker_count(4),
            neighbourhood=neighbours,
            max_iterations=10,
        )
        assert len(result.best.brokers) == 4
        assert result.best_score == 0

    def test_never_worse_than_start(self):
        topo = initial_topology(8, 2)
        objective = self._objective_by_broker_count(2)
        result = tabu_search(topo, objective, neighbours, max_iterations=5)
        assert result.best_score <= objective(topo)

    def test_evaluation_count_reported(self):
        topo = initial_topology(8, 2)
        result = tabu_search(
            topo, self._objective_by_broker_count(3), neighbours,
            max_iterations=3, patience=10,
        )
        assert result.n_evaluations > 1
        assert result.n_iterations <= 3

    def test_tabu_list_blocks_revisits(self):
        topo = initial_topology(8, 2)
        visited = []

        def objective(t):
            visited.append(t.canonical_key())
            return 1.0  # flat landscape: only tabu stops cycling

        tabu_search(topo, objective, neighbours,
                    tabu_size=1000, max_iterations=5, patience=100)
        # The current topology is never re-evaluated as a candidate.
        assert visited.count(topo.canonical_key()) == 1

    def test_patience_stops_early(self):
        topo = initial_topology(8, 2)
        result = tabu_search(
            topo, lambda t: 1.0, neighbours,
            max_iterations=50, patience=2,
        )
        assert result.n_iterations <= 3

    def test_parameter_validation(self):
        topo = initial_topology(4, 1)
        with pytest.raises(ValueError):
            tabu_search(topo, lambda t: 0.0, neighbours, tabu_size=0)
        with pytest.raises(ValueError):
            tabu_search(topo, lambda t: 0.0, neighbours, max_iterations=0)

    def test_empty_neighbourhood_graceful(self):
        topo = Topology(2, brokers=[0], assignment={1: 0})
        result = tabu_search(topo, lambda t: 5.0, neighbours)
        assert result.best == topo
        assert result.best_score == 5.0


class TestReassignmentNeighbours:
    def test_broker_count_preserved(self):
        from repro.core.nodeshift import reassignment_neighbours

        topo = initial_topology(8, 2)
        options = reassignment_neighbours(topo)
        assert options
        for option in options:
            assert option.brokers == topo.brokers
            assert option.attached == topo.attached

    def test_count_matches_workers_times_other_brokers(self):
        from repro.core.nodeshift import reassignment_neighbours

        topo = initial_topology(9, 3)
        options = reassignment_neighbours(topo)
        # Each of the 6 workers can move to 2 other brokers.
        assert len(options) == 6 * 2

    def test_single_broker_no_moves(self):
        from repro.core.nodeshift import reassignment_neighbours

        topo = Topology(4, brokers=[0], assignment={1: 0, 2: 0, 3: 0})
        assert reassignment_neighbours(topo) == []
