"""Autodiff engine tests: every op's gradient against finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, stack, where


def numeric_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    flat = grad.reshape(-1)
    x_flat = x.reshape(-1)
    for i in range(x_flat.size):
        original = x_flat[i]
        x_flat[i] = original + eps
        up = fn(x.copy())
        x_flat[i] = original - eps
        down = fn(x.copy())
        x_flat[i] = original
        flat[i] = (up - down) / (2 * eps)
    return grad


def check_op(op, shape=(3, 4), positive=False, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    if positive:
        x = np.abs(x) + 0.5

    def scalar_fn(values):
        return float(op(Tensor(values)).sum().data)

    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    numeric = numeric_gradient(scalar_fn, x.copy())
    assert t.grad is not None
    np.testing.assert_allclose(t.grad, numeric, rtol=1e-4, atol=1e-6)


class TestElementwiseGradients:
    def test_add_scalar(self):
        check_op(lambda t: t + 3.0)

    def test_mul_scalar(self):
        check_op(lambda t: t * 2.5)

    def test_neg(self):
        check_op(lambda t: -t)

    def test_sub(self):
        check_op(lambda t: t - 1.5)

    def test_rsub(self):
        check_op(lambda t: 1.5 - t)

    def test_div(self):
        check_op(lambda t: t / 2.0)

    def test_rdiv(self):
        check_op(lambda t: 2.0 / t, positive=True)

    def test_pow(self):
        check_op(lambda t: t ** 3)

    def test_exp(self):
        check_op(lambda t: t.exp())

    def test_log(self):
        check_op(lambda t: t.log(), positive=True)

    def test_sqrt(self):
        check_op(lambda t: t.sqrt(), positive=True)

    def test_tanh(self):
        check_op(lambda t: t.tanh())

    def test_sigmoid(self):
        check_op(lambda t: t.sigmoid())

    def test_relu(self):
        # Shift away from the kink for finite differences.
        check_op(lambda t: (t + 0.05).relu())

    def test_abs(self):
        check_op(lambda t: (t + 0.05).abs())

    def test_clip_interior_gradient(self):
        x = np.array([0.5, -2.0, 2.0])
        t = Tensor(x, requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [1.0, 0.0, 0.0])


class TestMatmulGradients:
    def test_matrix_matrix(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_vector_vector(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_matrix_vector(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=4), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(a.grad, np.outer(np.ones(3), v.data))
        np.testing.assert_allclose(v.grad, a.data.T @ np.ones(3))

    def test_vector_matrix(self):
        rng = np.random.default_rng(3)
        v = Tensor(rng.normal(size=3), requires_grad=True)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (v @ a).sum().backward()
        np.testing.assert_allclose(v.grad, a.data @ np.ones(4))
        np.testing.assert_allclose(a.grad, np.outer(v.data, np.ones(4)))


class TestBroadcasting:
    def test_row_bias_broadcast(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_array_equal(b.grad, [4.0, 4.0, 4.0])

    def test_column_broadcast(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        c = Tensor(np.ones((4, 1)), requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_array_equal(c.grad, np.full((4, 1), 3.0))

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        assert s.grad.item() == pytest.approx(4.0)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.reshape(3, 2).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3)))

    def test_transpose_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.T * Tensor(np.arange(6.0).reshape(3, 2))
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem_slice_gradient(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        x[1:3, :2].sum().backward()
        expected = np.zeros((4, 4))
        expected[1:3, :2] = 1.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x[np.array([0, 0, 1])]).sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 1.0, 0.0])

    def test_flatten(self):
        x = Tensor(np.ones((2, 3)))
        assert x.flatten().shape == (6,)


class TestReductions:
    def test_sum_axis_gradient(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_gradient(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 1 / 8))

    def test_mean_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1 / 3))

    def test_max_gradient_ties_split(self):
        x = Tensor(np.array([1.0, 2.0, 2.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 3.0], [4.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_array_equal(x.grad, [[0, 1], [1, 0]])


class TestGraphMechanics:
    def test_gradient_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x
        y.backward()
        assert x.grad.item() == pytest.approx(5.0)  # 2x + 1 at x=2

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a + b).backward()
        assert x.grad.item() == pytest.approx(5.0)

    def test_detach_blocks_gradient(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x.detach() * 5.0 + x).backward()
        assert x.grad.item() == pytest.approx(1.0)

    def test_no_grad_tensor_untouched(self):
        x = Tensor(np.ones(3))
        (x * 2.0).sum().backward()
        assert x.grad is None

    def test_backward_custom_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(x.grad, [2.0, 4.0, 6.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        assert x.grad.item() == pytest.approx(1.0)


class TestHelpers:
    def test_concatenate_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        (out * 2.0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_array_equal(b.grad, np.full((3, 2), 2.0))

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_array_equal(b.grad, np.ones((2, 3)))

    def test_stack_gradient(self):
        tensors = [Tensor(np.ones(3), requires_grad=True) for _ in range(4)]
        out = stack(tensors, axis=0)
        assert out.shape == (4, 3)
        (out * 3.0).sum().backward()
        for t in tensors:
            np.testing.assert_array_equal(t.grad, np.full(3, 3.0))

    def test_where_routes_gradients(self):
        condition = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        where(condition, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))


class TestCompositeGradientCheck:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_composite(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4, 4))

        def fn(values):
            t = Tensor(values, requires_grad=True)
            y = ((t @ t.T).sigmoid() * 2.0).sum() + (t ** 2).mean() \
                + t.tanh().sum()
            return y, t

        y, t = fn(x.copy())
        y.backward()
        numeric = numeric_gradient(lambda v: float(fn(v)[0].data), x.copy())
        np.testing.assert_allclose(t.grad, numeric, rtol=1e-4, atol=1e-6)
