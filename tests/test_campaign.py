"""Campaign runner: seed derivation, parallel == serial, aggregation."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.experiments import (
    CampaignConfig,
    DETERMINISTIC_METRICS,
    canonical_model_name,
    ci_campaign_config,
    plan_tasks,
    run_campaign,
)


def small_config(workers: int = 1, **overrides) -> CampaignConfig:
    """Heuristic-model grid: no offline training, seconds to run."""
    defaults = dict(
        scenarios=("paper-default", "fault-free"),
        models=("dyverse",),
        n_seeds=2,
        workers=workers,
        seed=3,
        n_intervals=4,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestPlanning:
    def test_grid_shape(self):
        tasks = plan_tasks(small_config())
        assert len(tasks) == 2 * 1 * 2  # scenarios x models x seeds
        assert [t.run_index for t in tasks] == list(range(4))

    def test_model_names_canonicalised(self):
        tasks = plan_tasks(small_config())
        assert {t.model for t in tasks} == {"DYVERSE"}

    def test_seeds_are_independent_spawn_children(self):
        tasks = plan_tasks(small_config())
        seeds = [
            int(t.seed_sequence.generate_state(1, dtype=np.uint32)[0])
            for t in tasks
        ]
        assert len(set(seeds)) == len(seeds)
        # Spawn keys descend from the campaign root, one per cell.
        assert [t.seed_sequence.spawn_key[-1] for t in tasks] == list(range(4))

    def test_plan_is_reproducible(self):
        a = plan_tasks(small_config())
        b = plan_tasks(small_config())
        states_a = [t.seed_sequence.generate_state(2).tolist() for t in a]
        states_b = [t.seed_sequence.generate_state(2).tolist() for t in b]
        assert states_a == states_b

    def test_ci_config_is_small(self):
        config = ci_campaign_config(workers=1)
        assert len(plan_tasks(config)) <= 4
        assert config.n_intervals <= 10

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="no-such-world"):
            plan_tasks(small_config(scenarios=("no-such-world",)))

    def test_unknown_model_fails_fast(self):
        with pytest.raises(ValueError, match="unknown model"):
            plan_tasks(small_config(models=("skynet",)))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="scenario"):
            CampaignConfig(scenarios=())
        with pytest.raises(ValueError, match="n_seeds"):
            small_config(n_seeds=0)
        with pytest.raises(ValueError, match="workers"):
            small_config(workers=0)

    def test_canonical_model_name(self):
        assert canonical_model_name("carol") == "CAROL"
        assert canonical_model_name(" Dyverse ") == "DYVERSE"
        assert canonical_model_name("carol-neverft") == "CAROL-NeverFT"
        # The §VI proactive scheme is a first-class campaign model.
        assert canonical_model_name("carol-proactive") == "CAROL-Proactive"
        assert canonical_model_name("proactive") == "CAROL-Proactive"


class TestExecution:
    def test_same_spec_bit_identical(self):
        """Two runs of the same campaign spec agree to the last bit."""
        first = run_campaign(small_config())
        second = run_campaign(small_config())
        assert first.rows() == second.rows()

    def test_parallel_equals_serial(self):
        """Worker count must not leak into results (independent seeds)."""
        serial = run_campaign(small_config(workers=1))
        parallel = run_campaign(small_config(workers=2))
        assert serial.rows() == parallel.rows()

    def test_different_root_seed_changes_results(self):
        a = run_campaign(small_config())
        b = run_campaign(small_config(seed=4))
        assert a.rows() != b.rows()

    def test_records_carry_deterministic_metrics_only(self):
        result = run_campaign(small_config(n_seeds=1))
        for record in result.records:
            assert tuple(record.metrics) == DETERMINISTIC_METRICS
            for value in record.metrics.values():
                assert np.isfinite(value)

    def test_user_registered_scenario_runs_in_parallel_campaign(self):
        """Tasks carry the resolved spec, so workers never need the
        parent's registry (spawn-platform safety for custom scenarios)."""
        from repro.config import FaultConfig
        from repro.scenarios import SCENARIOS, ScenarioSpec, register

        register(ScenarioSpec(
            name="campaign-test-world", description="ephemeral test spec",
            faults=FaultConfig(rate=0.0),
        ), overwrite=True)
        try:
            result = run_campaign(CampaignConfig(
                scenarios=("campaign-test-world",), models=("eclb",),
                n_intervals=2, workers=2,
            ))
            assert [r.scenario for r in result.records] == ["campaign-test-world"]
        finally:
            SCENARIOS.pop("campaign-test-world", None)

    def test_carol_family_runs_with_tiny_assets(self):
        config = CampaignConfig(
            scenarios=("paper-default",),
            models=("carol",),
            n_seeds=1,
            workers=1,
            seed=1,
            n_intervals=3,
            trace_intervals=12,
            gon_hidden=8,
            gon_layers=2,
            gon_epochs=2,
        )
        result = run_campaign(config)
        assert len(result.records) == 1
        assert result.records[0].model == "CAROL"


class TestAggregation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(small_config())

    def test_rows_shape(self, result):
        rows = result.rows()
        assert len(rows) == 4
        for row in rows:
            assert set(row) == {
                "scenario", "model", "seed_index", "seed",
                *DETERMINISTIC_METRICS,
            }

    def test_aggregate_shape(self, result):
        aggregate = result.aggregate()
        assert set(aggregate) == {
            ("paper-default", "DYVERSE"),
            ("fault-free", "DYVERSE"),
        }
        for stats in aggregate.values():
            assert set(stats) == set(DETERMINISTIC_METRICS)
            for mean, std in stats.values():
                assert np.isfinite(mean) and std >= 0.0

    def test_aggregate_mean_matches_records(self, result):
        aggregate = result.aggregate()
        group = [
            r.metrics["energy_kwh"] for r in result.records
            if r.scenario == "paper-default"
        ]
        mean, _ = aggregate[("paper-default", "DYVERSE")]["energy_kwh"]
        assert mean == pytest.approx(np.mean(group))

    def test_format_summary(self, result):
        table = result.format_summary()
        assert "paper-default" in table and "fault-free" in table
        assert "DYVERSE" in table
        assert "energy" in table


class TestCLI:
    def test_scenarios_list(self, capsys):
        assert cli_main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-default", "correlated-rack", "flash-crowd",
                     "network-partition", "diurnal-load"):
            assert name in out

    def test_scenarios_show(self, capsys):
        assert cli_main(["scenarios", "show", "flash-crowd"]) == 0
        assert '"surge_multiplier": 4.0' in capsys.readouterr().out

    def test_scenarios_show_requires_name(self, capsys):
        assert cli_main(["scenarios", "show"]) == 2

    def test_campaign_ci_smoke(self, capsys):
        assert cli_main(["campaign", "--ci", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "campaign summary" in out

    def test_campaign_requires_scenarios(self, capsys):
        assert cli_main(["campaign"]) == 2

    def test_campaign_unknown_scenario_clean_error(self, capsys):
        assert cli_main(["campaign", "--scenarios", "no-such-world"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "paper-default" in err

    def test_campaign_unknown_model_clean_error(self, capsys):
        code = cli_main(["campaign", "--scenarios", "fault-free",
                         "--models", "skynet"])
        assert code == 2
        assert "unknown model" in capsys.readouterr().err

    def test_scenarios_show_unknown_clean_error(self, capsys):
        assert cli_main(["scenarios", "show", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_campaign_explicit_grid(self, capsys):
        code = cli_main([
            "campaign", "--scenarios", "fault-free", "--models", "eclb",
            "--seeds", "1", "--intervals", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free" in out and "ECLB" in out

    def test_campaign_record_json(self, capsys, tmp_path):
        """--record-json dumps per-run records with diagnostics (the
        payload CI uploads from the fleet smoke as an artifact)."""
        import json

        target = tmp_path / "records.json"
        code = cli_main([
            "campaign", "--scenarios", "fault-free", "--models", "dyverse",
            "--seeds", "2", "--intervals", "2",
            "--record-json", str(target),
        ])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["config"]["models"] == ["DYVERSE"]
        assert payload["config"]["mode"] == "process"
        assert len(payload["records"]) == 2
        for record in payload["records"]:
            assert record["scenario"] == "fault-free"
            assert "energy_kwh" in record
            assert isinstance(record["diagnostics"], dict)
