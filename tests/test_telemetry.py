"""The PR-6 observability layer: registry, wire, status, campaigns.

Covers the telemetry contracts end to end:

* registry semantics -- counters/gauges/histograms/spans, deterministic
  sorted-key snapshots, associative+commutative merges, delta arithmetic,
  the zero-allocation disabled path;
* the STATS wire frame (``StatsUpdate``) round-tripping a snapshot over
  the binary TCP framing;
* the read-only HTTP status endpoint (``/status`` + ``/metrics``);
* campaign plumbing -- merged telemetry attached to payloads in serial,
  process and fleet modes, and the core guarantee that enabling or
  disabling telemetry never changes a record;
* ``benchmarks/compare_records.py`` ignoring telemetry/diagnostics when
  asserting bit-identity.
"""

import json
import socket
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    SIZE_EDGES,
    flatten_snapshot,
    merge_snapshots,
    render_metrics_text,
    render_prometheus_text,
    render_summary,
)
from repro.telemetry.registry import _NULL_TIMER


def make_registry(scale: int = 1) -> MetricsRegistry:
    """A registry with one metric of each kind, scaled by ``scale``."""
    registry = MetricsRegistry()
    registry.counter("events").add(3 * scale)
    registry.gauge("depth").set(2.0 * scale)
    hist = registry.histogram("sizes", SIZE_EDGES)
    for value in (1, 4 * scale, 700):
        hist.observe(value)
    span = registry.span("work")
    span._record(0.25 * scale)
    span._record(0.5 * scale)
    return registry


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.add(4)
        registry.gauge("g").set(7)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 7.0}

    def test_handles_are_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.span("s") is registry.span("s")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", edges=(1, 10, 100))
        for value in (0.5, 1, 5, 1000):
            hist.observe(value)
        assert hist.counts == [2, 1, 0, 1]  # <=1, <=10, <=100, overflow
        assert hist.count == 4
        assert hist.min == 0.5 and hist.max == 1000

    def test_histogram_edges_fixed_at_registration(self):
        registry = MetricsRegistry()
        registry.histogram("h", edges=(1, 2))
        with pytest.raises(ValueError, match="different edges"):
            registry.histogram("h", edges=(1, 2, 3))
        with pytest.raises(ValueError, match="ascending"):
            registry.histogram("bad", edges=(3, 1))

    def test_snapshot_keys_sorted_and_json_deterministic(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        # Register in opposite orders: snapshots must still be
        # byte-identical JSON (sorted keys at every level).
        for name in ("b", "a", "c"):
            left.counter(name).inc()
        for name in ("c", "a", "b"):
            right.counter(name).inc()
        left.span("z")
        left.span("y")
        right.span("y")
        right.span("z")
        assert json.dumps(left.snapshot()) == json.dumps(right.snapshot())
        assert list(left.snapshot()["counters"]) == ["a", "b", "c"]

    def test_snapshot_enumerates_zero_valued_metrics(self):
        registry = MetricsRegistry()
        registry.counter("never_fired")
        assert registry.snapshot()["counters"] == {"never_fired": 0}

    def test_reset_keeps_handles_valid(self):
        registry = make_registry()
        counter = registry.counter("events")
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["events"] == 0
        assert snap["spans"]["work"] == {
            "count": 0, "total_s": 0.0, "min_s": None, "max_s": None,
        }
        counter.inc()
        assert registry.snapshot()["counters"]["events"] == 1


class TestSpans:
    def test_three_usage_forms(self):
        registry = MetricsRegistry()
        span = registry.span("s")
        with span.time():
            pass
        with span:
            pass

        @span
        def work():
            return 42

        assert work() == 42
        assert span.count == 3
        assert span.min_s is not None and span.min_s >= 0.0

    def test_spans_nest_and_recurse(self):
        registry = MetricsRegistry()
        span = registry.span("s")
        with span:
            with span:
                with span.time():
                    pass
        assert span.count == 3
        assert span.total_s >= 0.0
        assert span._starts == []  # every window closed

    def test_decorator_records_on_exception(self):
        registry = MetricsRegistry()
        span = registry.span("s")

        @span
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            boom()
        assert span.count == 1


class TestDisabledPath:
    def test_mutators_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        with registry.span("s").time():
            pass
        with registry.span("s"):
            pass
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 0}
        assert snap["gauges"] == {"g": 0.0}
        assert snap["histograms"]["h"]["count"] == 0
        assert snap["spans"]["s"]["count"] == 0

    def test_disabled_timer_is_shared_singleton(self):
        # The disabled hot path must not allocate: every .time() call
        # returns the same no-op context manager object.
        registry = MetricsRegistry(enabled=False)
        span = registry.span("s")
        assert span.time() is _NULL_TIMER
        assert span.time() is span.time()

    def test_process_registry_toggle(self):
        assert telemetry.is_enabled()
        before = telemetry.snapshot()
        try:
            telemetry.set_enabled(False)
            telemetry.counter("test.toggle").inc()
            assert (
                telemetry.snapshot()["counters"].get("test.toggle", 0) == 0
            )
        finally:
            telemetry.set_enabled(True)
        after = telemetry.snapshot()
        assert before["counters"] == {
            k: v for k, v in after["counters"].items() if k != "test.toggle"
        }


# ----------------------------------------------------------------------
# Merge / delta arithmetic
# ----------------------------------------------------------------------
class TestMerge:
    def test_merge_values(self):
        merged = merge_snapshots(
            make_registry(1).snapshot(), make_registry(2).snapshot()
        )
        assert merged["counters"]["events"] == 9
        assert merged["gauges"]["depth"] == 4.0  # max, not sum
        hist = merged["histograms"]["sizes"]
        assert hist["count"] == 6
        assert hist["min"] == 1 and hist["max"] == 700
        span = merged["spans"]["work"]
        assert span["count"] == 4
        assert span["total_s"] == pytest.approx(2.25)
        assert span["min_s"] == 0.25 and span["max_s"] == 1.0

    def test_merge_associative_and_commutative(self):
        a = make_registry(1).snapshot()
        b = make_registry(2).snapshot()
        c = make_registry(5).snapshot()
        abc = merge_snapshots(a, b, c)
        assert merge_snapshots(c, a, b) == abc
        assert merge_snapshots(merge_snapshots(a, b), c) == abc
        assert merge_snapshots(a, merge_snapshots(b, c)) == abc

    def test_merge_identity_and_empty(self):
        a = make_registry().snapshot()
        assert merge_snapshots(a) == a
        assert merge_snapshots(a, {}) == a
        assert merge_snapshots() == {
            "counters": {}, "gauges": {}, "histograms": {}, "spans": {},
        }

    def test_merge_disjoint_names_union(self):
        left = MetricsRegistry()
        left.counter("only.left").inc()
        right = MetricsRegistry()
        right.counter("only.right").add(2)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["counters"] == {"only.left": 1, "only.right": 2}

    def test_histogram_edge_mismatch_is_loud(self):
        left = MetricsRegistry()
        left.histogram("h", edges=(1, 2)).observe(1)
        right = MetricsRegistry()
        right.histogram("h", edges=(1, 2, 3)).observe(1)
        with pytest.raises(ValueError, match="edges"):
            merge_snapshots(left.snapshot(), right.snapshot())

    def test_delta_subtracts_counters_and_histograms(self):
        registry = make_registry()
        base = registry.snapshot()
        registry.counter("events").add(10)
        registry.histogram("sizes", SIZE_EDGES).observe(2)
        delta = registry.delta(base)
        assert delta["counters"]["events"] == 10
        assert delta["histograms"]["sizes"]["count"] == 1
        assert sum(delta["histograms"]["sizes"]["counts"]) == 1
        # Nothing happened to the span since the base snapshot.
        assert delta["spans"]["work"]["count"] == 0

    def test_delta_of_self_is_zero_activity(self):
        registry = make_registry()
        delta = registry.delta(registry.snapshot())
        assert all(v == 0 for v in delta["counters"].values())
        assert delta["spans"]["work"]["count"] == 0
        assert delta["spans"]["work"]["total_s"] == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_flatten_snapshot_prometheus_shape(self):
        snap = make_registry().snapshot()
        lines = dict(flatten_snapshot(snap))
        assert lines["events"] == 3
        assert lines["depth"] == 2.0
        assert lines["sizes_count"] == 3
        assert lines['sizes_bucket{le="+Inf"}'] == 3
        assert lines["work_count"] == 2
        assert lines["work_total_seconds"] == pytest.approx(0.75)

    def test_metrics_text_lines(self):
        text = render_metrics_text(make_registry().snapshot())
        assert text.endswith("\n")
        parsed = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert parsed["events"] == "3"
        assert float(parsed["work_total_seconds"]) == pytest.approx(0.75)

    def test_render_summary_sections(self):
        out = render_summary(make_registry().snapshot(), title="-- t --")
        assert "-- t --" in out
        assert "events" in out and "work" in out and "sizes" in out

    def test_render_empty_snapshot(self):
        assert render_metrics_text({}) == "\n" or render_metrics_text({}) == ""
        assert isinstance(render_summary({}, title="x"), str)


class TestPrometheusRendering:
    def test_counter_family_with_total_suffix(self):
        text = render_prometheus_text(make_registry().snapshot())
        assert "# HELP events_total repro counter events" in text
        assert "# TYPE events_total counter" in text
        assert "\nevents_total 3\n" in "\n" + text

    def test_gauge_family(self):
        text = render_prometheus_text(make_registry().snapshot())
        assert "# TYPE depth gauge" in text
        assert "\ndepth 2\n" in "\n" + text

    def test_histogram_buckets_are_cumulative(self):
        snap = make_registry().snapshot()
        text = render_prometheus_text(snap)
        assert "# TYPE sizes histogram" in text
        lines = text.splitlines()
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("sizes_bucket")
        ]
        # Cumulative counts are monotone and end at the +Inf bucket,
        # which must equal the observation count.
        assert buckets == sorted(buckets)
        assert 'sizes_bucket{le="+Inf"} 3' in lines
        assert "sizes_count 3" in lines
        assert any(line.startswith("sizes_sum ") for line in lines)

    def test_span_renders_as_summary_in_seconds(self):
        text = render_prometheus_text(make_registry().snapshot())
        assert "# TYPE work_seconds summary" in text
        assert "work_seconds_count 2" in text
        parsed = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if not line.startswith("#")
        )
        assert float(parsed["work_seconds_sum"]) == pytest.approx(0.75)

    def test_dotted_names_sanitized_help_keeps_original(self):
        registry = MetricsRegistry()
        registry.counter("service.fused_elements").add(7)
        text = render_prometheus_text(registry.snapshot())
        assert "service_fused_elements_total 7" in text
        # The HELP line preserves the registry's dotted name so the
        # mapping back to `repro telemetry` output stays recoverable.
        assert (
            "# HELP service_fused_elements_total repro counter "
            "service.fused_elements" in text
        )
        assert "service.fused_elements_total" not in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus_text({}) == ""


# ----------------------------------------------------------------------
# STATS frames on the wire
# ----------------------------------------------------------------------
class TestStatsWire:
    def test_stats_update_roundtrip(self):
        from repro.serving import StatsUpdate
        from repro.serving.wire import recv_message, send_message

        snapshot = make_registry().snapshot()
        message = StatsUpdate(client_id=3, snapshot=snapshot)
        left, right = socket.socketpair()
        try:
            send_message(left, message)
            received = recv_message(right)
        finally:
            left.close()
            right.close()
        assert isinstance(received, StatsUpdate)
        assert received.client_id == 3
        assert received.snapshot == snapshot

    def test_stats_code_appended_after_existing_messages(self):
        # Wire codes come from _ARRAY_FIELDS insertion order; the STATS
        # frame must never displace a pre-existing code, and later
        # protocol extensions (the elastic lease frames) must append
        # after it rather than renumbering it.
        from repro.serving import ClientDone, LeaseRequest, Ping, StatsUpdate
        from repro.serving.wire import _CODE_BY_CLASS

        assert _CODE_BY_CLASS[StatsUpdate] == 14
        assert _CODE_BY_CLASS[ClientDone] < _CODE_BY_CLASS[StatsUpdate]
        assert _CODE_BY_CLASS[LeaseRequest] > _CODE_BY_CLASS[StatsUpdate]
        assert _CODE_BY_CLASS[Ping] == max(_CODE_BY_CLASS.values())

    def test_service_keeps_latest_snapshot_per_client(self):
        from repro.serving import GONScoringService, StatsUpdate

        service = GONScoringService({}, request_queue=None, reply_queues={})
        first = MetricsRegistry()
        first.counter("test.latest_wins").add(2)
        second = MetricsRegistry()
        second.counter("test.latest_wins").add(5)
        service._dispatch([StatsUpdate(1, first.snapshot())])
        service._dispatch([StatsUpdate(1, second.snapshot())])
        service._dispatch([StatsUpdate(2, first.snapshot())])
        merged = service.merged_telemetry()
        # Latest-per-client replace, then sum across clients: 5 + 2.
        assert merged["counters"]["test.latest_wins"] == 7


# ----------------------------------------------------------------------
# HTTP status endpoint
# ----------------------------------------------------------------------
class TestStatusServer:
    def _get(self, server, path):
        with urllib.request.urlopen(
            f"http://{server.address}{path}", timeout=5
        ) as response:
            return response.status, response.read().decode("utf-8")

    def test_status_and_metrics_routes(self):
        from repro.serving import StatusServer

        payload = {
            "workers": {"connected": 2, "expected": 2, "signed_off": 0},
            "telemetry": make_registry().snapshot(),
        }
        server = StatusServer(lambda: payload).start()
        try:
            status, body = self._get(server, "/status")
            assert status == 200
            decoded = json.loads(body)
            assert decoded["workers"]["connected"] == 2
            assert decoded["telemetry"]["counters"]["events"] == 3

            # /metrics defaults to Prometheus exposition...
            status, body = self._get(server, "/metrics")
            assert status == 200
            assert "# TYPE events_total counter" in body
            assert "events_total 3" in body

            # ...with the legacy flat dialect behind ?format=flat.
            status, body = self._get(server, "/metrics?format=flat")
            assert status == 200
            assert "events 3" in body

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server, "/metrics?format=xml")
            assert excinfo.value.code == 400
        finally:
            server.close()

    def test_unknown_route_404_and_provider_error_500(self):
        from repro.serving import StatusServer

        calls = []

        def provider():
            calls.append(1)
            if len(calls) > 1:
                raise RuntimeError("boom")
            return {"telemetry": {}}

        server = StatusServer(provider).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server, "/nope")
            assert excinfo.value.code == 404
            assert self._get(server, "/status")[0] == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server, "/status")
            assert excinfo.value.code == 500
        finally:
            server.close()


# ----------------------------------------------------------------------
# Campaign plumbing
# ----------------------------------------------------------------------
def _campaign_config(**overrides):
    from repro.experiments import CampaignConfig

    base = dict(
        scenarios=("paper-default",),
        models=("CAROL",),
        n_seeds=2,
        workers=1,
        seed=11,
        n_intervals=2,
        trace_intervals=12,
        gon_hidden=8,
        gon_layers=2,
        gon_epochs=1,
        shared_assets=True,
    )
    base.update(overrides)
    return CampaignConfig(**base)


@pytest.fixture(scope="module")
def campaign_assets():
    from repro.experiments import prepare_campaign_assets

    return prepare_campaign_assets(_campaign_config())


class TestCampaignTelemetry:
    def test_serial_campaign_attaches_merged_telemetry(self, campaign_assets):
        from repro.experiments import run_campaign

        result = run_campaign(_campaign_config(), campaign_assets)
        counters = result.telemetry["counters"]
        assert counters["campaign.cells_started"] == 2
        assert counters["campaign.cells_completed"] == 2
        assert counters["sim.intervals"] == 4  # 2 cells x 2 intervals
        assert result.telemetry["spans"]["campaign.cell"]["count"] == 2
        # Per-instance model registries folded into the campaign view.
        assert counters["carol.cache.misses"] > 0
        payload = result.to_payload()
        assert payload["telemetry"] == result.telemetry
        json.dumps(payload)  # JSON-safe end to end

    def test_pool_campaign_merges_worker_deltas(self, campaign_assets):
        from repro.experiments import run_campaign

        serial = run_campaign(_campaign_config(), campaign_assets)
        pooled = run_campaign(
            _campaign_config(workers=2), campaign_assets
        )
        assert [r.metrics for r in pooled.records] == [
            r.metrics for r in serial.records
        ]
        # Deterministic counter totals agree across execution modes
        # (spans/wall-clock legitimately differ).
        for key in (
            "campaign.cells_completed", "sim.intervals",
            "carol.cache.misses", "gon.ascent.calls",
        ):
            assert pooled.telemetry["counters"][key] == \
                serial.telemetry["counters"][key], key

    def test_fleet_campaign_telemetry_and_identity(self, campaign_assets):
        from repro.experiments import run_campaign

        serial = run_campaign(_campaign_config(), campaign_assets)
        fleet = run_campaign(
            _campaign_config(mode="fleet", workers=2), campaign_assets
        )
        assert [r.metrics for r in fleet.records] == [
            r.metrics for r in serial.records
        ]
        counters = fleet.telemetry["counters"]
        assert counters["campaign.cells_completed"] == 2
        assert counters["service.stats_updates"] == 2
        assert counters["service.requests"] > 0
        assert fleet.telemetry["spans"]["service.drain"]["count"] >= 1

    def test_records_identical_with_telemetry_disabled(self, campaign_assets):
        from repro.experiments import run_campaign

        enabled = run_campaign(
            _campaign_config(mode="fleet", workers=2), campaign_assets
        )
        try:
            telemetry.set_enabled(False)
            disabled = run_campaign(
                _campaign_config(mode="fleet", workers=2), campaign_assets
            )
        finally:
            telemetry.set_enabled(True)
        # The core guarantee: turning telemetry off changes nothing in
        # the record surface -- and the fleet path still works.
        assert [r.metrics for r in disabled.records] == [
            r.metrics for r in enabled.records
        ]
        assert [r.diagnostics for r in disabled.records] == [
            r.diagnostics for r in enabled.records
        ]
        assert all(
            v == 0 for v in disabled.telemetry["counters"].values()
        )


# ----------------------------------------------------------------------
# compare_records strips execution-only keys
# ----------------------------------------------------------------------
class TestCompareRecords:
    @staticmethod
    def _write_dump(path, metrics, span_total, diagnostics):
        registry = MetricsRegistry()
        registry.span("campaign.cell")._record(span_total)
        payload = {
            "config": {"scenarios": ["s"]},
            "records": [{
                "run_index": 0,
                "scenario": "s",
                "model": "CAROL",
                "seed_index": 0,
                "seed": 1,
                **metrics,
                "diagnostics": diagnostics,
                "telemetry": registry.snapshot(),
            }],
            "telemetry": registry.snapshot(),
        }
        path.write_text(json.dumps(payload))

    def test_differing_timings_still_compare_equal(self, tmp_path):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from compare_records import main as compare_main
        finally:
            sys.path.pop(0)
        left = tmp_path / "left.json"
        right = tmp_path / "right.json"
        metrics = {"energy_kwh": 1.25, "downtime_s": 0.0}
        # Same deterministic surface, wildly different wall-clock and
        # diagnostics: must compare equal.
        self._write_dump(left, metrics, 0.001, {"local_fallbacks": 0})
        self._write_dump(right, metrics, 9.999, {"local_fallbacks": 7})
        assert compare_main([str(left), str(right)]) == 0
        # A genuine metric difference must still fail.
        self._write_dump(right, {**metrics, "energy_kwh": 2.0}, 0.001, {})
        assert compare_main([str(left), str(right)]) == 1
