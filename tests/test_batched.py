"""Batched == sequential parity across the nn -> surrogate -> search stack.

The batched surrogate engine must be a pure vectorization: every
batched entry point (GON scoring, eq.-1 generation, neighbourhood
scoring, the repair decision) has to agree with its sequential loop to
tight numerical tolerance -- including per-element convergence
behaviour, which is exercised with a tol that freezes only part of the
batch.
"""

import numpy as np
import pytest

from repro.core import (
    CAROL,
    CAROLConfig,
    GONDiscriminator,
    GONInput,
    N_M_FEATURES,
    N_S_FEATURES,
    QoSObjective,
    generate_metrics,
    generate_metrics_batch,
    predict_qos,
    predict_qos_batch,
    tabu_search,
)
from repro.core.nodeshift import neighbours, random_node_shift
from repro.core.tabu import as_batched, batched_objective
from repro.nn import GraphEncoder

RTOL, ATOL = 1e-9, 1e-12


@pytest.fixture
def gon(rng):
    return GONDiscriminator(rng, hidden=16, n_layers=2)


def make_samples(rng, batch=6, n_hosts=6):
    samples = []
    for _ in range(batch):
        metrics = rng.uniform(0, 1, size=(n_hosts, N_M_FEATURES))
        schedule = rng.uniform(0, 1, size=(n_hosts, N_S_FEATURES))
        adjacency = (rng.random((n_hosts, n_hosts)) > 0.5).astype(float)
        adjacency = np.triu(adjacency, 1)
        adjacency = adjacency + adjacency.T
        samples.append(GONInput(metrics, schedule, adjacency))
    return samples


class TestScoreBatchParity:
    def test_score_batch_matches_looped_score(self, gon, rng):
        samples = make_samples(rng, batch=8)
        looped = np.array([gon.score(s) for s in samples])
        batched = gon.score_batch(samples)
        np.testing.assert_allclose(batched, looped, rtol=RTOL, atol=ATOL)

    def test_forward_batch_gradient_separable(self, gon, rng):
        """Batched input gradients match per-sample backward passes."""
        from repro.nn import Tensor

        samples = make_samples(rng, batch=4)
        stacked = Tensor(
            np.stack([s.metrics for s in samples]), requires_grad=True
        )
        out = gon.forward_batch(
            stacked,
            np.stack([s.schedule for s in samples]),
            np.stack([s.adjacency for s in samples]),
        )
        out.sum().backward()
        for i, sample in enumerate(samples):
            single = Tensor(sample.metrics, requires_grad=True)
            gon(single, sample.schedule, sample.adjacency).backward()
            np.testing.assert_allclose(
                stacked.grad[i], single.grad, rtol=RTOL, atol=ATOL
            )

    def test_empty_batch(self, gon):
        assert gon.score_batch([]).shape == (0,)

    def test_mixed_host_counts_rejected(self, gon, rng):
        samples = make_samples(rng, batch=2, n_hosts=5)
        samples += make_samples(rng, batch=1, n_hosts=7)
        with pytest.raises(ValueError):
            gon.score_batch(samples)


class TestGraphEncoderBatchParity:
    def test_batched_pooling_matches_per_graph(self, rng):
        encoder = GraphEncoder(3, 8, rng, layers=2)
        features = rng.uniform(0, 1, size=(5, 6, 3))
        adjacency = (rng.random((5, 6, 6)) > 0.4).astype(float)
        adjacency = np.triu(adjacency, 1)
        adjacency = adjacency + adjacency.swapaxes(-1, -2)
        batched = encoder(features, adjacency)
        assert batched.shape == (5, 8)
        for i in range(5):
            single = encoder(features[i], adjacency[i])
            np.testing.assert_allclose(
                batched.data[i], single.data, rtol=RTOL, atol=ATOL
            )


class TestGenerateMetricsBatchParity:
    def test_matches_looped_generation(self, gon, rng):
        samples = make_samples(rng, batch=6)
        kwargs = dict(gamma=1e-2, max_steps=10, tol=1e-5)
        looped = [
            generate_metrics(
                gon, s.schedule, s.adjacency, init_metrics=s.metrics, **kwargs
            )
            for s in samples
        ]
        batched = generate_metrics_batch(
            gon,
            np.stack([s.schedule for s in samples]),
            np.stack([s.adjacency for s in samples]),
            init_metrics=np.stack([s.metrics for s in samples]),
            **kwargs,
        )
        for sequential, vectorized in zip(looped, batched):
            np.testing.assert_allclose(
                vectorized.metrics, sequential.metrics, rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                vectorized.confidence, sequential.confidence, rtol=RTOL, atol=ATOL
            )
            assert vectorized.n_steps == sequential.n_steps
            assert vectorized.converged == sequential.converged

    def test_per_element_convergence_freezes_independently(self, gon, rng):
        """A tol chosen so only part of the batch converges: frozen
        elements keep their early stopping point while the rest run on,
        exactly as the sequential loop would."""
        samples = make_samples(rng, batch=8)
        kwargs = dict(gamma=1e-2, max_steps=60, tol=9.9e-3)
        looped = [
            generate_metrics(
                gon, s.schedule, s.adjacency, init_metrics=s.metrics, **kwargs
            )
            for s in samples
        ]
        batched = generate_metrics_batch(
            gon,
            np.stack([s.schedule for s in samples]),
            np.stack([s.adjacency for s in samples]),
            init_metrics=np.stack([s.metrics for s in samples]),
            **kwargs,
        )
        assert [r.converged for r in looped].count(True) >= 1, (
            "fixture regression: no element converges under this tol"
        )
        assert [r.converged for r in looped].count(False) >= 1, (
            "fixture regression: every element converges under this tol"
        )
        for sequential, vectorized in zip(looped, batched):
            assert vectorized.n_steps == sequential.n_steps
            assert vectorized.converged == sequential.converged
            np.testing.assert_allclose(
                vectorized.metrics, sequential.metrics, rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                vectorized.confidence, sequential.confidence, rtol=RTOL, atol=ATOL
            )

    def test_noise_init_consumes_rng_like_loop(self, gon, rng):
        samples = make_samples(rng, batch=4)
        schedules = np.stack([s.schedule for s in samples])
        adjacencies = np.stack([s.adjacency for s in samples])
        # One shared generator for the loop, a twin for the batch --
        # the noise draws must line up element for element.
        loop_rng = np.random.default_rng(11)
        batch_rng = np.random.default_rng(11)
        looped = [
            generate_metrics(
                gon, s.schedule, s.adjacency, rng=loop_rng,
                gamma=1e-2, max_steps=3,
            )
            for s in samples
        ]
        batched = generate_metrics_batch(
            gon, schedules, adjacencies, rng=batch_rng,
            gamma=1e-2, max_steps=3,
        )
        for sequential, vectorized in zip(looped, batched):
            np.testing.assert_allclose(
                vectorized.metrics, sequential.metrics, rtol=RTOL, atol=ATOL
            )

    def test_plain_gradient_mode_parity(self, gon, rng):
        samples = make_samples(rng, batch=3)
        kwargs = dict(gamma=1e-3, max_steps=5, adaptive=False)
        looped = [
            generate_metrics(
                gon, s.schedule, s.adjacency, init_metrics=s.metrics, **kwargs
            )
            for s in samples
        ]
        batched = generate_metrics_batch(
            gon,
            np.stack([s.schedule for s in samples]),
            np.stack([s.adjacency for s in samples]),
            init_metrics=np.stack([s.metrics for s in samples]),
            **kwargs,
        )
        for sequential, vectorized in zip(looped, batched):
            np.testing.assert_allclose(
                vectorized.metrics, sequential.metrics, rtol=RTOL, atol=ATOL
            )

    def test_empty_batch(self, gon):
        assert generate_metrics_batch(
            gon, np.zeros((0, 4, N_S_FEATURES)), np.zeros((0, 4, 4)),
            init_metrics=np.zeros((0, 4, N_M_FEATURES)),
        ) == []

    def test_validation(self, gon, rng):
        samples = make_samples(rng, batch=2)
        schedules = np.stack([s.schedule for s in samples])
        adjacencies = np.stack([s.adjacency for s in samples])
        with pytest.raises(ValueError):
            generate_metrics_batch(gon, schedules, adjacencies, gamma=0.0)
        with pytest.raises(ValueError):
            generate_metrics_batch(gon, schedules, adjacencies)  # no rng
        with pytest.raises(ValueError):
            generate_metrics_batch(
                gon, schedules, adjacencies,
                init_metrics=np.zeros((3, 6, N_M_FEATURES)),
            )


class TestPredictQosBatchParity:
    def test_matches_looped_predict_qos(self, gon, rng):
        samples = make_samples(rng, batch=6)
        objective = QoSObjective(0.5, 0.5)
        looped = [
            predict_qos(gon, s, objective, gamma=1e-2, max_steps=6)
            for s in samples
        ]
        batched = predict_qos_batch(
            gon, samples, objective, gamma=1e-2, max_steps=6
        )
        for (seq_score, seq_result), (bat_score, bat_result) in zip(looped, batched):
            np.testing.assert_allclose(bat_score, seq_score, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(
                bat_result.metrics, seq_result.metrics, rtol=RTOL, atol=ATOL
            )

    def test_empty(self, gon):
        assert predict_qos_batch(gon, [], QoSObjective()) == []


class TestTabuBatchedObjective:
    def test_batched_and_scalar_agree(self):
        from repro.simulator import initial_topology

        topo = initial_topology(10, 2)

        def scalar(t):
            return abs(len(t.brokers) - 3)

        @batched_objective
        def batched(candidates):
            return [abs(len(t.brokers) - 3) for t in candidates]

        a = tabu_search(topo, scalar, neighbours, max_iterations=6)
        b = tabu_search(topo, batched, neighbours, max_iterations=6)
        assert a.best.canonical_key() == b.best.canonical_key()
        assert a.best_score == b.best_score
        assert a.n_evaluations == b.n_evaluations

    def test_batched_objective_called_once_per_iteration(self):
        from repro.simulator import initial_topology

        topo = initial_topology(8, 2)
        calls = []

        @batched_objective
        def objective(candidates):
            calls.append(len(candidates))
            return [1.0] * len(candidates)

        result = tabu_search(
            topo, objective, neighbours, max_iterations=3, patience=10
        )
        # One call for the initial scoring plus one per iteration.
        assert len(calls) == result.n_iterations + 1

    def test_duplicate_candidates_scored_once(self):
        from repro.simulator import initial_topology

        topo = initial_topology(8, 2)
        scored = []

        @batched_objective
        def objective(candidates):
            scored.extend(c.canonical_key() for c in candidates)
            return [float(len(t.unattached)) for t in candidates]

        def noisy_neighbourhood(t):
            options = neighbours(t)
            return options + options  # every candidate duplicated

        tabu_search(topo, objective, noisy_neighbourhood, max_iterations=3)
        assert len(scored) == len(set(scored))

    def test_as_batched_wraps_scalar(self):
        from repro.simulator import initial_topology

        topo = initial_topology(6, 2)
        wrapped = as_batched(lambda t: float(len(t.brokers)))
        assert wrapped([topo, topo]) == [2.0, 2.0]


class TestRepairDecisionParity:
    def _failure_setup(self, small_config, trained_gon, seed=0):
        """A federation warmed one interval plus a synthetic broker
        failure report, shared by both repair implementations."""
        from repro.simulator import EdgeFederation
        from repro.simulator.detection import FailureReport

        federation = EdgeFederation(small_config)
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        federation.run_interval()
        report = federation.begin_interval()
        proposal = federation.propose_topology()
        broker = sorted(proposal.brokers)[0]
        forced = FailureReport(
            interval=report.interval,
            failed_brokers=(broker,),
            failed_workers=(),
            detection_delay_seconds=1.0,
        )
        return federation, forced, proposal

    def _reference_repair(self, carol, view, report, proposal):
        """The pre-refactor sequential repair loop, re-implemented with
        per-candidate predict_qos and a scalar-objective tabu search."""
        last = view.last_metrics
        cache = {}

        def omega(candidate):
            key = candidate.canonical_key()
            if key not in cache:
                sample = GONInput(
                    np.asarray(last.host_metrics, float),
                    np.asarray(last.schedule_encoding, float),
                    candidate.adjacency(),
                )
                score, _ = predict_qos(
                    carol.model, sample, carol.objective,
                    gamma=carol.config.gamma,
                    max_steps=carol.config.surrogate_steps,
                )
                cache[key] = score
            return cache[key]

        rng = np.random.default_rng(carol.config.seed)

        def sampled_neighbours(topology):
            options = neighbours(topology)
            limit = carol.config.neighbourhood_sample
            if len(options) > limit:
                chosen = rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in chosen]
            return options

        current = proposal
        for _failed in report.failed_brokers:
            start = random_node_shift(current, rng)
            result = tabu_search(
                start,
                objective=omega,
                neighbourhood=sampled_neighbours,
                tabu_size=carol.config.tabu_size,
                max_iterations=carol.config.tabu_iterations,
                patience=carol.config.tabu_patience,
            )
            current = result.best
        return current if omega(current) <= omega(proposal) else proposal

    def test_seeded_repair_decision_identical(self, trained_gon, small_config):
        config = CAROLConfig(
            surrogate_steps=4, tabu_iterations=2, tabu_patience=1,
            neighbourhood_sample=8, seed=0,
        )
        gon = trained_gon.clone_architecture(np.random.default_rng(0))
        gon.load_state_dict(trained_gon.state_dict())
        carol = CAROL(gon, 0.5, 0.5, config)

        federation, report, proposal = self._failure_setup(
            small_config, trained_gon
        )
        reference = self._reference_repair(
            carol, federation.view, report, proposal
        )
        chosen = carol.repair(federation.view, report, proposal)
        assert chosen.canonical_key() == reference.canonical_key()

    def test_seeded_maintenance_decision_identical(self, trained_gon, small_config):
        from repro.core.nodeshift import reassignment_neighbours
        from repro.simulator import EdgeFederation
        from repro.simulator.detection import FailureReport

        config = CAROLConfig(
            surrogate_steps=4, maintenance_candidates=6, seed=0,
        )
        gon = trained_gon.clone_architecture(np.random.default_rng(0))
        gon.load_state_dict(trained_gon.state_dict())
        carol = CAROL(gon, 0.5, 0.5, config)

        federation = EdgeFederation(small_config)
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        federation.run_interval()
        report = federation.begin_interval()
        proposal = federation.propose_topology()
        healthy = FailureReport(
            interval=report.interval, failed_brokers=(), failed_workers=(),
            detection_delay_seconds=0.0,
        )

        # Reference: sequential scoring of the same seeded slate.
        last = federation.view.last_metrics
        rng = np.random.default_rng(config.seed)
        options = reassignment_neighbours(proposal)
        if len(options) > config.maintenance_candidates:
            picks = rng.choice(
                len(options), size=config.maintenance_candidates, replace=False
            )
            options = [options[i] for i in picks]

        def omega(candidate):
            sample = GONInput(
                np.asarray(last.host_metrics, float),
                np.asarray(last.schedule_encoding, float),
                candidate.adjacency(),
            )
            score, _ = predict_qos(
                carol.model, sample, carol.objective,
                gamma=config.gamma, max_steps=config.surrogate_steps,
            )
            return score

        reference = min([proposal, *options], key=omega)
        chosen = carol.repair(federation.view, healthy, proposal)
        assert chosen.canonical_key() == reference.canonical_key()
