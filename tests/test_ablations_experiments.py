"""Ablated models, the experiment harness and reporting helpers."""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import (
    AlwaysFineTune,
    GANSurrogate,
    NeverFineTune,
    TraditionalSurrogate,
    WithGAN,
    WithTraditionalSurrogate,
    summary_features,
)
from repro.core import CAROLConfig
from repro.experiments import (
    EDGE_SLOWDOWN,
    TABLE1,
    build_model,
    format_relative_table,
    format_table,
    format_table1,
    run_experiment,
    sparkline,
    table1_rows,
    verify_against_implementation,
)
from repro.experiments.calibration import TrainedAssets
from repro.simulator import EdgeFederation


def tiny_carol_config():
    return CAROLConfig(
        surrogate_steps=3, tabu_iterations=1, tabu_patience=1,
        neighbourhood_sample=4, pot_calibration=6, min_buffer=2,
        fine_tune_iterations=1, seed=0,
    )


def _drive(model, config, n=8):
    federation = EdgeFederation(config)
    for _ in range(n):
        report = federation.begin_interval()
        proposal = federation.propose_topology()
        topology = model.repair(federation.view, report, proposal)
        federation.set_topology(topology)
        metrics = federation.run_interval()
        model.observe(metrics, federation.view)
    return federation


class TestFineTuneAblations:
    def test_always_fine_tunes_every_interval(self, trained_gon, small_config):
        gon = trained_gon.clone_architecture(np.random.default_rng(0))
        gon.load_state_dict(trained_gon.state_dict())
        model = AlwaysFineTune(gon, 0.5, 0.5, tiny_carol_config())
        _drive(model, small_config, n=6)
        # After the buffer has >= 2 samples every interval fine-tunes.
        assert sum(model.diagnostics.fine_tuned) >= 4

    def test_never_fine_tunes(self, trained_gon, small_config):
        gon = trained_gon.clone_architecture(np.random.default_rng(0))
        gon.load_state_dict(trained_gon.state_dict())
        model = NeverFineTune(gon, 0.5, 0.5, tiny_carol_config())
        before = {k: v.copy() for k, v in gon.state_dict().items()}
        _drive(model, small_config, n=6)
        after = gon.state_dict()
        assert not any(model.diagnostics.fine_tuned)
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestGANAblation:
    def test_generator_predicts_fixed_shape(self, rng, session_samples):
        n_hosts = session_samples[0].n_hosts
        surrogate = GANSurrogate(n_hosts, rng, hidden=32)
        sample = session_samples[0]
        predicted = surrogate.predict_metrics(sample.schedule, sample.adjacency)
        assert predicted.shape == sample.metrics.shape
        assert np.all(predicted >= 0)

    def test_gan_memory_larger_than_gon(self, rng, trained_gon, session_samples):
        surrogate = GANSurrogate(session_samples[0].n_hosts, rng)
        assert surrogate.memory_bytes() > trained_gon.footprint_bytes()

    def test_with_gan_runs(self, rng, session_samples, small_config):
        surrogate = GANSurrogate(
            small_config.federation.n_hosts, rng, hidden=32
        )
        surrogate.fit(session_samples[:10], epochs=1)
        model = WithGAN(surrogate, 0.5, 0.5, tiny_carol_config())
        _drive(model, small_config, n=6)
        assert model.memory_bytes() > 0


class TestTraditionalSurrogateAblation:
    def test_fit_reduces_error(self, rng, session_samples, session_trace):
        surrogate = TraditionalSurrogate(rng, hidden=32)
        objectives = [s.objective for s in session_trace.samples]
        before = np.mean([
            (surrogate.predict(s) - o) ** 2
            for s, o in zip(session_samples, objectives)
        ])
        surrogate.fit(session_samples, objectives, epochs=20, rng=rng)
        after = np.mean([
            (surrogate.predict(s) - o) ** 2
            for s, o in zip(session_samples, objectives)
        ])
        assert after < before

    def test_summary_features_fixed_size(self, session_samples):
        sizes = {summary_features(s).shape for s in session_samples}
        assert len(sizes) == 1

    def test_with_ff_surrogate_runs(self, rng, session_samples, session_trace, small_config):
        surrogate = TraditionalSurrogate(rng, hidden=16)
        objectives = [s.objective for s in session_trace.samples]
        surrogate.fit(session_samples, objectives, epochs=2, rng=rng)
        model = WithTraditionalSurrogate(
            surrogate, 0.5, 0.5, tiny_carol_config(), fine_tune_steps=2
        )
        _drive(model, small_config, n=6)
        assert len(model._buffer) == 6


class TestRunner:
    def test_summary_keys(self, small_config, trained_gon):
        from repro.core import CAROL

        gon = trained_gon.clone_architecture(np.random.default_rng(0))
        gon.load_state_dict(trained_gon.state_dict())
        model = CAROL(gon, 0.5, 0.5, tiny_carol_config())
        config = replace(small_config, n_intervals=4)
        result = run_experiment(model, config)
        summary = result.summary()
        for key in (
            "energy_kwh", "response_time_s", "slo_violation_rate",
            "decision_time_s", "memory_percent", "fine_tune_overhead_s",
        ):
            assert key in summary
        assert result.model_name == "CAROL"
        assert len(result.metrics.decision_times) == 4
        assert EDGE_SLOWDOWN > 1.0


class TestBuildModel:
    def test_unknown_model_rejected(self, session_trace, session_samples, trained_gon, small_config):
        assets = TrainedAssets(
            trace=session_trace,
            samples=session_samples,
            objectives=[s.objective for s in session_trace.samples],
            gon_state=trained_gon.state_dict(),
            gon_hidden=trained_gon.hidden,
            gon_layers=trained_gon.n_layers,
            training_history=None,
        )
        with pytest.raises(ValueError):
            build_model("bogus", assets, small_config)

    @pytest.mark.parametrize("name", ["CAROL", "DYVERSE", "ECLB", "LBOS",
                                      "ELBS", "FRAS", "TopoMAD", "StepGAN"])
    def test_factory_builds_each(self, name, session_trace, session_samples,
                                 trained_gon, small_config):
        assets = TrainedAssets(
            trace=session_trace,
            samples=session_samples,
            objectives=[s.objective for s in session_trace.samples],
            gon_state=trained_gon.state_dict(),
            gon_hidden=trained_gon.hidden,
            gon_layers=trained_gon.n_layers,
            training_history=None,
        )
        model = build_model(name, assets, small_config)
        assert model.name == name


class TestTable1:
    def test_eleven_rows(self):
        assert len(TABLE1) == 11
        assert table1_rows()[-1][0] == "CAROL"

    def test_carol_row_has_all_capabilities(self):
        carol = TABLE1[-1]
        assert carol.iot and carol.broker_resilience and carol.qos_prediction
        assert carol.energy and carol.response_time and carol.slo_violations
        assert carol.overheads and carol.memory

    def test_only_carol_reports_memory(self):
        assert [row.work for row in TABLE1 if row.memory] == ["CAROL"]

    def test_formatting_contains_all_works(self):
        rendered = format_table1()
        for row in TABLE1:
            assert row.work in rendered

    def test_consistency_with_implementation(self):
        consistency = verify_against_implementation()
        assert all(consistency.values())


class TestReporting:
    def test_format_table_aligns(self):
        rendered = format_table(("a", "bb"), [(1, 2.5), (3, 4.0)])
        lines = rendered.splitlines()
        assert len(lines) == 4

    def test_relative_table_has_reference(self):
        rendered = format_relative_table(
            "metric", {"CAROL": 1.0, "X": 2.0}, reference="CAROL"
        )
        assert "2x" in rendered or "2.000x" in rendered
        with pytest.raises(KeyError):
            format_relative_table("m", {"X": 1.0}, reference="CAROL")

    def test_sparkline_length_and_charset(self):
        line = sparkline(list(np.sin(np.linspace(0, 6, 200))), width=40)
        assert 0 < len(line) <= 40
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_sparkline_flat_series(self):
        assert set(sparkline([1.0, 1.0, 1.0])) == {"▁"}

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
