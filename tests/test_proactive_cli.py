"""The proactive extension (§VI future work) and the CLI entry point."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.core import CAROLConfig
from repro.core.proactive import ProactiveCAROL
from repro.simulator import EdgeFederation


@pytest.fixture
def proactive(trained_gon):
    gon = trained_gon.clone_architecture(np.random.default_rng(0))
    gon.load_state_dict(trained_gon.state_dict())
    config = CAROLConfig(
        surrogate_steps=3, tabu_iterations=2, tabu_patience=1,
        neighbourhood_sample=6, pot_calibration=6, min_buffer=3,
        maintenance_candidates=2, seed=0,
    )
    return ProactiveCAROL(gon, 0.5, 0.5, config, risk_threshold=0.8)


class TestProactiveCAROL:
    def test_rejects_bad_threshold(self, trained_gon):
        with pytest.raises(ValueError):
            ProactiveCAROL(trained_gon, risk_threshold=0.0)

    def test_runs_and_keeps_live_hosts(self, proactive, small_config):
        federation = EdgeFederation(small_config)
        for _ in range(10):
            report = federation.begin_interval()
            proposal = federation.propose_topology()
            topology = proactive.repair(federation.view, report, proposal)
            live = {h.host_id for h in federation.hosts if h.alive}
            assert live <= topology.attached
            federation.set_topology(topology)
            metrics = federation.run_interval()
            proactive.observe(metrics, federation.view)

    def test_preventive_action_on_overloaded_broker(self, proactive, small_config):
        """A broker predicted/observed over the risk threshold triggers
        a preventive search."""
        federation = EdgeFederation(small_config)
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        metrics = federation.run_interval()
        proactive.observe(metrics, federation.view)
        report = federation.begin_interval()
        if report.failed_brokers:
            return
        proposal = federation.propose_topology()
        # Force observed broker pressure above the threshold.
        view = federation.view
        broker = sorted(proposal.brokers)[0]
        view.last_metrics.host_metrics[broker, 0] = 1.5
        actions_before = len(proactive.preventive_actions)
        proactive.repair(view, report, proposal)
        assert len(proactive.preventive_actions) == actions_before + 1

    def test_no_action_when_calm(self, proactive, small_config):
        federation = EdgeFederation(small_config)
        federation.begin_interval()
        federation.set_topology(federation.propose_topology())
        metrics = federation.run_interval()
        # Zero pressure everywhere -> no broker at risk.
        metrics.host_metrics[:, :2] = 0.01
        proactive.observe(metrics, federation.view)
        report = federation.begin_interval()
        if report.failed_brokers:
            return
        proposal = federation.propose_topology()
        federation.view.last_metrics.host_metrics[:, :2] = 0.01
        actions_before = len(proactive.preventive_actions)
        proactive.repair(federation.view, report, proposal)
        # The surrogate's prediction can still flag risk, but with calm
        # observations and a cold model this should usually be silent.
        assert len(proactive.preventive_actions) in (actions_before, actions_before + 1)


class TestCLI:
    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CAROL" in out and "DYVERSE" in out

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])

    def test_fig5_subset_runs(self, capsys):
        code = cli_main([
            "fig5", "--models", "DYVERSE,ECLB", "--intervals", "3",
            "--trace-intervals", "15", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 5(a)" in out and "DYVERSE" in out
