"""CAROL reproduction: Confidence-Aware Resilience Model for Edge Federations.

A full from-scratch Python reproduction of Tuli, Casale & Jennings
(DSN 2022): the GON surrogate and CAROL resilience loop
(:mod:`repro.core`), a COSCO-style federated-edge co-simulator
(:mod:`repro.simulator`), a numpy neural-network library replacing
PyTorch (:mod:`repro.nn`), the seven baselines of the paper's Section V
and four ablations (:mod:`repro.baselines`) and one experiment per
paper table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro.config import ci_scale
    from repro.experiments import prepare_assets, build_model, run_experiment

    config = ci_scale()
    assets = prepare_assets(config)              # DeFog trace + GON training
    carol = build_model("CAROL", assets, config) # Algorithm 2
    result = run_experiment(carol, config)       # AIoT evaluation run
    print(result.summary())
"""

from .config import (
    ExperimentConfig,
    FaultConfig,
    FederationConfig,
    WorkloadConfig,
    ci_scale,
    paper_scale,
)

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "FederationConfig",
    "WorkloadConfig",
    "FaultConfig",
    "ci_scale",
    "paper_scale",
    "__version__",
]
