"""The GON discriminator network (Fig. 3 of the paper).

A composite network over three inputs, matching §IV-A:

* ``E_MS = ReLU(FeedForward([M, S]))`` applied per host and mean-pooled
  (eq. 3) -- pooling keeps the encoder agnostic to the host count,
  like the paper's stacked representation;
* ``E_G``: a graph attention network over the topology whose node
  features are the utilisations ``u_i`` (eq. 4), mean-pooled;
* ``D(M,S,G) = Sigmoid(FeedForward([E_MS, E_G]))`` (eq. 5), a scalar
  likelihood in [0, 1] that doubles as the *confidence score*.

Because GONs drop the GAN generator entirely, the discriminator is the
whole model -- the memory-efficiency argument of the paper.  Layer
width is fixed at 128 and the layer count is the knob grid-searched in
§V-E (Fig. 6b).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn import FeedForward, GraphEncoder, Module, Tensor, as_tensor, concatenate
from .features import GONInput, N_M_FEATURES, N_NODE_FEATURES, N_S_FEATURES

__all__ = ["GONDiscriminator"]


class GONDiscriminator(Module):
    """``D(M, S, G; theta)`` returning a likelihood/confidence scalar.

    Parameters
    ----------
    rng:
        Generator for weight init.
    hidden:
        Layer width (paper: 128).
    n_layers:
        Feed-forward depth of the [M,S] encoder; the paper's deployed
        model uses 3 layers (~1 GB footprint on its inputs, §IV-E).
        Swept by the Fig. 6(b) sensitivity experiment.
    n_m_features / n_s_features:
        Input dimensionalities (default: the canonical encodings).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        hidden: int = 128,
        n_layers: int = 3,
        n_m_features: int = N_M_FEATURES,
        n_s_features: int = N_S_FEATURES,
    ) -> None:
        super().__init__()
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        self.hidden = hidden
        self.n_layers = n_layers
        self.n_m_features = n_m_features
        self.n_s_features = n_s_features
        # Eq. 3: E_{M,S} = ReLU(FeedForward([M, S])).
        self.ms_encoder = FeedForward(
            n_m_features + n_s_features,
            hidden,
            rng,
            hidden=hidden,
            layers=n_layers,
            activation="relu",
            final_activation="relu",
        )
        # Eq. 4: graph attention over node features u_i.
        self.graph_encoder = GraphEncoder(N_NODE_FEATURES, hidden, rng, layers=1)
        # Eq. 5: sigmoid head over the concatenated embeddings.
        self.head = FeedForward(
            2 * hidden,
            1,
            rng,
            hidden=hidden,
            layers=2,
            activation="relu",
            final_activation="identity",
        )

    # ------------------------------------------------------------------
    def forward(self, metrics, schedule, adjacency) -> Tensor:
        """Likelihood of ``(M, S, G)`` under the learned distribution.

        ``metrics`` may be a Tensor with ``requires_grad=True``; the
        surrogate's input-space optimisation (eq. 1) relies on the
        gradient flowing through both encoders (graph node features are
        a slice of ``M``).
        """
        metrics = as_tensor(metrics)
        schedule = as_tensor(schedule)
        joint = concatenate([metrics, schedule], axis=1)
        e_ms = self.ms_encoder(joint).mean(axis=0)
        e_g = self.graph_encoder(metrics[:, :N_NODE_FEATURES], np.asarray(adjacency))
        logits = self.head(concatenate([e_ms, e_g], axis=0))
        return logits.sigmoid().reshape(())

    def forward_batch(self, metrics, schedule, adjacency) -> Tensor:
        """Batched likelihoods for a ``[B, n_hosts, ...]`` sample stack.

        ``metrics`` is ``[B, n_hosts, n_m_features]`` (may require
        grad -- the batched eq.-1 ascent differentiates through it),
        ``schedule`` ``[B, n_hosts, n_s_features]`` and ``adjacency``
        ``[B, n, n]``.  Returns a ``[B]`` tensor of confidences, each
        element computed exactly as a single :meth:`forward` would.
        """
        metrics = as_tensor(metrics)
        schedule = as_tensor(schedule)
        if metrics.ndim != 3:
            raise ValueError(f"expected [B, n, F] metrics, got {metrics.shape}")
        joint = concatenate([metrics, schedule], axis=2)
        e_ms = self.ms_encoder(joint).mean(axis=1)  # [B, hidden]
        e_g = self.graph_encoder(
            metrics[:, :, :N_NODE_FEATURES], np.asarray(adjacency)
        )  # [B, hidden]
        logits = self.head(concatenate([e_ms, e_g], axis=1))  # [B, 1]
        return logits.sigmoid().reshape(-1)

    def score(self, sample: GONInput) -> float:
        """Confidence of a concrete sample (no gradients kept)."""
        value = self.forward(sample.metrics, sample.schedule, sample.adjacency)
        return float(value.data)

    def score_batch(self, samples: Sequence[GONInput]) -> np.ndarray:
        """Confidences of many samples in one vectorized pass.

        All samples must share the same host count (a tabu
        neighbourhood always does: node-shifts preserve ``n_hosts``).
        Returns a ``[B]`` float array matching looped :meth:`score`.
        """
        if not samples:
            return np.zeros(0)
        n_hosts = samples[0].n_hosts
        if any(s.n_hosts != n_hosts for s in samples):
            raise ValueError("score_batch requires a uniform host count")
        metrics = np.stack([s.metrics for s in samples])
        schedule = np.stack([s.schedule for s in samples])
        adjacency = np.stack([s.adjacency for s in samples])
        return self.forward_batch(metrics, schedule, adjacency).data.copy()

    def footprint_bytes(self) -> int:
        """Resident memory: parameters plus optimiser moments."""
        return self.memory_bytes()

    def clone_architecture(self, rng: np.random.Generator) -> "GONDiscriminator":
        """Fresh network with identical hyper-parameters."""
        return GONDiscriminator(
            rng,
            hidden=self.hidden,
            n_layers=self.n_layers,
            n_m_features=self.n_m_features,
            n_s_features=self.n_s_features,
        )
