"""Proactive CAROL -- the paper's stated future-work extension (§VI).

The paper closes: "For stationary settings, we propose to extend the
current reactive model to a proactive scheme that is able to prevent
node failures.  However, proactive optimization may entail higher
computation for improved predictive performance."

This module implements that scheme on top of the reactive CAROL loop:

* every interval, the eq.-1 surrogate predicts next-interval metrics
  ``M*`` for the *current* topology;
* brokers whose predicted CPU+RAM pressure exceeds ``risk_threshold``
  are treated as at-risk, and a bounded tabu search runs over the
  node-shift neighbourhood *before* any failure materialises, shedding
  load off the endangered broker;
* the trade the paper anticipates is preserved and measurable: the
  per-interval prediction and occasional searches raise decision time
  (Fig. 5d axis) in exchange for fewer realised broker failures.

Campaigns sweep this scheme under the model name ``CAROL-Proactive``
(``python -m repro campaign --models carol-proactive ...``), in every
execution mode including ``--fleet``: the proactive loop scores all
its slates through the shared :class:`~repro.core.scoring.SurrogateScorer`
seam, so fleet runs consolidate into the batched scoring service, and
-- because ProactiveCAROL fine-tunes like reactive CAROL does -- rely
on the service's per-client weight overlays to stay there after the
POT gate first opens (see :mod:`repro.serving`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.topology import Topology
from .carol import CAROL, CAROLConfig
from .gon import GONDiscriminator
from .nodeshift import neighbours
from .scoring import SurrogateScorer
from .tabu import batched_objective, tabu_search

__all__ = ["ProactiveCAROL"]


class ProactiveCAROL(CAROL):
    """CAROL with failure *prevention* on top of reactive repair.

    Parameters
    ----------
    risk_threshold:
        Predicted per-broker CPU+RAM pressure above which the broker is
        considered at risk of byzantine failure next interval.
    """

    name = "CAROL-Proactive"

    def __init__(
        self,
        model: GONDiscriminator,
        alpha: float = 0.5,
        beta: float = 0.5,
        config: Optional[CAROLConfig] = None,
        risk_threshold: float = 1.0,
        scorer: Optional[SurrogateScorer] = None,
    ) -> None:
        super().__init__(model, alpha, beta, config, scorer=scorer)
        if risk_threshold <= 0:
            raise ValueError("risk_threshold must be positive")
        self.risk_threshold = risk_threshold
        #: Intervals on which a preventive search ran (telemetry).
        self.preventive_actions: List[int] = []

    def scorer_diagnostics(self) -> dict:
        counters = super().scorer_diagnostics()
        counters["preventive_actions"] = len(self.preventive_actions)
        return counters

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        # Reactive behaviour first (failures always take precedence).
        chosen = super().repair(view, report, proposal)
        if report.failed_brokers or view.last_metrics is None:
            return chosen

        last = view.last_metrics
        schedule = np.asarray(last.schedule_encoding, dtype=float)
        metrics = np.asarray(last.host_metrics, dtype=float)
        ctx = self._context_hash(metrics, schedule)

        at_risk = self._at_risk_brokers(chosen, metrics, schedule, ctx)
        if not at_risk:
            return chosen

        # Preventive step: search for a topology that relieves the
        # endangered brokers, scored by the same surrogate objective
        # plus a risk penalty.

        @batched_objective
        def omega(candidates: List[Topology], keys=None) -> List[float]:
            # Whole slate through the shared persistent cache (one
            # vectorized eq.-1 ascent for the misses -- entries are
            # shared with the reactive repair and the risk prediction),
            # then the per-candidate risk penalty on each cached M*.
            scored = self.surrogate_scores(
                candidates, metrics, schedule, ctx=ctx, keys=keys
            )
            return [
                value + self._risk_penalty(candidate, predicted)
                for candidate, (value, predicted) in zip(candidates, scored)
            ]

        def sampled(topology: Topology) -> List[Topology]:
            options = neighbours(topology)
            limit = self.config.neighbourhood_sample
            if len(options) > limit:
                picks = self.rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in picks]
            return options

        result = tabu_search(
            chosen,
            objective=omega,
            neighbourhood=sampled,
            tabu_size=self.config.tabu_size,
            max_iterations=max(self.config.tabu_iterations // 2, 1),
            patience=self.config.tabu_patience,
        )
        self.preventive_actions.append(view.interval)
        final = result.best if result.best_score <= omega([chosen])[0] else chosen
        self.diagnostics.note_decision("preventive", final.canonical_key())
        return final

    # ------------------------------------------------------------------
    def _at_risk_brokers(
        self,
        topology: Topology,
        metrics: np.ndarray,
        schedule: np.ndarray,
        ctx: bytes,
    ) -> List[int]:
        """Brokers whose predicted pressure crosses the risk threshold.

        Prediction: the surrogate's M* for the current (S, G), read on
        the broker rows' CPU and RAM columns.  The prediction goes
        through the persistent score cache, so on quiet intervals it is
        usually already resident from the maintenance slate.
        """
        _value, predicted = self.surrogate_scores(
            [topology], metrics, schedule, ctx=ctx
        )[0]
        at_risk = []
        for broker in sorted(topology.brokers):
            pressure = float(predicted[broker, 0] + predicted[broker, 1])
            # Blend with the *observed* pressure so a cold surrogate
            # cannot mask an obviously overloaded broker.
            observed = float(metrics[broker, 0] + metrics[broker, 1])
            if max(pressure, observed) > self.risk_threshold:
                at_risk.append(broker)
        return at_risk

    @staticmethod
    def _risk_penalty(topology: Topology, predicted: np.ndarray) -> float:
        """Penalise candidate topologies with endangered brokers."""
        penalty = 0.0
        for broker in topology.brokers:
            pressure = float(predicted[broker, 0] + predicted[broker, 1])
            penalty += max(pressure - 1.0, 0.0)
        return penalty
