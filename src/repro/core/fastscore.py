"""Graph-free fast inference backend for the GON scorer.

The exact scoring path builds a full :class:`repro.nn.Tensor` autodiff
graph per Adam step of the eq.-1 ascent just to read ``dD/dM`` -- even
though every weight is frozen during inference.  This module replays
the same arithmetic without the graph: a trained
:class:`~repro.core.gon.GONDiscriminator` is exported once into a flat
:class:`~repro.nn.serialization.InferencePack` of frozen arrays, and
the forward **and the closed-form input gradient** of the
GAT -> encoder -> discriminator stack are hand-written fused numpy
kernels over the whole ``[B, n, F]`` stack.

Fidelity contract (the tiered parity gates of ``core/scoring.py``):

* every kernel mirrors the autodiff path's op order and gemm shapes --
  the same flat ``[B*n, F]`` BLAS calls, the same masked-softmax
  arithmetic (non-edges pushed by -1e9, detached row-max shift, 1e-12
  denominator), the same inclusive clip masks and the same Adam update
  expression -- so float64 (``fast``) scores agree with the oracle to
  rtol <= 1e-12 (empirically bit-identical on this BLAS);
* the backward is evaluated at the *forward* stack size with zeroed
  rows for mid-ascent frozen elements, exactly like the oracle's
  differentiable-slice trick, so per-element trajectories match the
  sequential semantics;
* ``float32`` mode (``fast32``) reuses the same kernels on downcast
  weights/state for the scoring (never training) path.

Fused cross-request batching: :meth:`FastGONKernel.ascent` accepts
*per-element* ``gamma`` and ``max_steps`` vectors.  Elements that hit
their own step cap freeze exactly like tol-converged elements (their
confidence is read from the same post-update forward), which is what
lets the scoring service fuse same-shape requests with different
ascent hyper-parameters into one kernel call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..nn.gat import adjacency_with_self_loops
from ..nn.serialization import (
    InferencePack,
    export_inference,
    verify_inference_pack,
)
from .features import N_NODE_FEATURES
from .gon import GONDiscriminator
from .surrogate import SurrogateResult

__all__ = ["FastGONKernel", "gon_inference_meta"]

_EPS = 1e-8  # clip epsilon of the ascent's log-likelihood (surrogate._EPS)

# Telemetry for the fused kernel, mirroring the gon.ascent.* handles of
# the exact oracle so fleet dashboards can compare backends directly.
_FAST_SPAN = _telemetry.span("gon.fast.ascent")
_FAST_CALLS = _telemetry.counter("gon.fast.calls")
_FAST_ELEMENTS = _telemetry.counter("gon.fast.elements")
_FAST_STEPS = _telemetry.counter("gon.fast.steps")
_FAST_CONVERGED = _telemetry.counter("gon.fast.converged")
_FAST_BATCH = _telemetry.histogram("gon.fast.batch_size", _telemetry.SIZE_EDGES)


def gon_inference_meta(model: GONDiscriminator) -> Dict[str, object]:
    """Architecture metadata an :class:`InferencePack` needs for a GON."""
    return {
        "arch": "gon-discriminator",
        "hidden": int(model.hidden),
        "n_layers": int(model.n_layers),
        "n_m_features": int(model.n_m_features),
        "n_s_features": int(model.n_s_features),
    }


class FastGONKernel:
    """Fused forward + closed-form input gradient of one exported GON.

    Instances are immutable snapshots: fine-tuning the live model does
    not affect a built kernel, so scorers re-export after every
    generation bump (see :class:`repro.core.scoring.LocalScorer`).
    """

    def __init__(self, pack: InferencePack) -> None:
        meta = pack.meta
        if meta.get("arch") != "gon-discriminator":
            raise ValueError(
                f"inference pack is not a GON export: arch={meta.get('arch')!r}"
            )
        try:
            hidden = int(meta["hidden"])
            n_layers = int(meta["n_layers"])
            n_m = int(meta["n_m_features"])
            n_s = int(meta["n_s_features"])
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValueError(f"inference pack meta missing {exc}") from exc
        self.pack = pack
        self.dtype = np.dtype(pack.dtype)
        self.hidden = hidden
        self.n_layers = n_layers
        self.n_m_features = n_m
        self.n_s_features = n_s

        arrays = pack.arrays
        expected = {"graph_encoder.layers.0.attention",
                    "graph_encoder.layers.0.bias",
                    "graph_encoder.layers.0.weight",
                    "head.blocks.0.bias", "head.blocks.0.weight",
                    "head.blocks.1.bias", "head.blocks.1.weight"}
        for i in range(n_layers):
            expected.add(f"ms_encoder.blocks.{i}.bias")
            expected.add(f"ms_encoder.blocks.{i}.weight")
        if set(arrays) != expected:
            raise KeyError(
                f"inference pack arrays mismatch: "
                f"missing={sorted(expected - set(arrays))} "
                f"unexpected={sorted(set(arrays) - expected)}"
            )

        def take(name: str, shape: Tuple[int, ...]) -> np.ndarray:
            array = arrays[name]
            if tuple(array.shape) != shape:
                raise ValueError(
                    f"inference pack shape mismatch for {name!r}: "
                    f"{tuple(array.shape)} != {shape}"
                )
            return np.ascontiguousarray(array, dtype=self.dtype)

        dims = [n_m + n_s] + [hidden] * n_layers
        self._ms: List[Tuple[np.ndarray, np.ndarray]] = [
            (
                take(f"ms_encoder.blocks.{i}.weight", (dims[i], dims[i + 1])),
                take(f"ms_encoder.blocks.{i}.bias", (dims[i + 1],)),
            )
            for i in range(n_layers)
        ]
        self._gat_w = take(
            "graph_encoder.layers.0.weight", (N_NODE_FEATURES, hidden)
        )
        self._gat_b = take("graph_encoder.layers.0.bias", (hidden,))
        self._gat_a = take(
            "graph_encoder.layers.0.attention", (hidden, hidden)
        )
        self._head_w0 = take("head.blocks.0.weight", (2 * hidden, hidden))
        self._head_b0 = take("head.blocks.0.bias", (hidden,))
        self._head_w1 = take("head.blocks.1.weight", (hidden, 1))
        self._head_b1 = take("head.blocks.1.bias", (1,))
        self._ascents = 0  # monotonic call id, part of the forward tag
        # Preallocated per-(batch, hosts) workspaces: forward
        # activations, masked-softmax scratch and backward temporaries
        # live here, so steady-state ascent steps allocate nothing.
        self._workspaces: Dict[Tuple[int, int], Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls, model: GONDiscriminator, dtype: str = "float64"
    ) -> "FastGONKernel":
        """Export ``model`` (with verification) and build a kernel."""
        pack = export_inference(model, meta=gon_inference_meta(model), dtype=dtype)
        verify_inference_pack(pack, model)
        return cls(pack)

    # ------------------------------------------------------------------
    def _workspace(self, batch: int, n: int) -> Dict[str, np.ndarray]:
        key = (batch, n)
        ws = self._workspaces.get(key)
        if ws is None:
            h, dt = self.hidden, self.dtype
            flat = batch * n
            f_in = self.n_m_features + self.n_s_features
            dims = [f_in] + [h] * self.n_layers
            ws = {
                "joint": np.empty((batch, n, f_in), dtype=dt),
                "joint_tag": None,  # active-set signature of the S half
                "u": np.empty((flat, N_NODE_FEATURES), dtype=dt),
                "msg": np.empty((flat, h), dtype=dt),
                "q": np.empty((flat, h), dtype=dt),
                "att": np.empty((batch, n, n), dtype=dt),
                "row": np.empty((batch, n, 1), dtype=dt),
                "agg": np.empty((batch, n, h), dtype=dt),
                "e_ms": np.empty((batch, h), dtype=dt),
                "e_g": np.empty((batch, h), dtype=dt),
                "h0": np.empty((batch, 2 * h), dtype=dt),
                "z1": np.empty((batch, h), dtype=dt),
                "mask1": np.empty((batch, h), dtype=bool),
                "z2": np.empty((batch, 1), dtype=dt),
                # backward scratch
                "dz1": np.empty((batch, h), dtype=dt),
                "dh0": np.empty((batch, 2 * h), dtype=dt),
                "dagg": np.empty((batch, n, h), dtype=dt),
                "datt": np.empty((batch, n, n), dtype=dt),
                "dscores": np.empty((batch, n, n), dtype=dt),
                "dmsg3": np.empty((batch, n, h), dtype=dt),
                "dtmp3": np.empty((batch, n, h), dtype=dt),
                "dmsg_flat": np.empty((flat, h), dtype=dt),
                "dpre": np.empty((flat, h), dtype=dt),
                "du": np.empty((flat, N_NODE_FEATURES), dtype=dt),
                "djoint": np.empty((flat, f_in), dtype=dt),
                "dmetrics": np.empty((batch, n, self.n_m_features), dtype=dt),
            }
            for i in range(self.n_layers):
                ws[f"ms_z{i}"] = np.empty((flat, dims[i + 1]), dtype=dt)
                ws[f"ms_mask{i}"] = np.empty((flat, dims[i + 1]), dtype=bool)
                ws[f"ms_dz{i}"] = np.empty((flat, dims[i + 1]), dtype=dt)
                if i:
                    ws[f"ms_dx{i}"] = np.empty((flat, dims[i]), dtype=dt)
            self._workspaces[key] = ws
        return ws

    # ------------------------------------------------------------------
    def _forward(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        masks: np.ndarray,
        push: np.ndarray,
        tag: object = None,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Fused forward over a ``[k, n, F]`` stack.

        Returns the ``[k]`` confidence vector plus the saved
        activations the closed-form backward needs.  Mirrors
        ``GONDiscriminator.forward_batch`` op for op.  ``tag``
        identifies the (schedule, active-set) pair: the ascent loop
        passes a stable tag so the constant S half of the joint input
        is only written once per active-set change.
        """
        k, n, _ = metrics.shape
        h = self.hidden
        ws = self._workspace(k, n)

        # --- eq. 3: per-host feed-forward over [M, S], mean-pooled.
        joint = ws["joint"]
        joint[..., : self.n_m_features] = metrics
        if tag is None or ws["joint_tag"] != tag:
            joint[..., self.n_m_features:] = schedules
            ws["joint_tag"] = tag
        x = joint.reshape(k * n, -1)
        for i, (weight, bias) in enumerate(self._ms):
            z = ws[f"ms_z{i}"]
            np.matmul(x, weight, out=z)
            z += bias
            mask = ws[f"ms_mask{i}"]
            np.greater(z, 0.0, out=mask)
            z *= mask  # ReLU, every layer incl. the final one
            x = z
        e_ms = np.sum(x.reshape(k, n, h), axis=1, out=ws["e_ms"])
        e_ms *= self.dtype.type(1.0) / n  # .mean(axis=1) == sum * (1/n)

        # --- eq. 4: one-layer GAT over u_i = M[:, :, :4].
        u_flat = ws["u"]
        u_flat.reshape(k, n, -1)[...] = metrics[..., :N_NODE_FEATURES]
        msg = ws["msg"]
        np.matmul(u_flat, self._gat_w, out=msg)
        msg += self._gat_b
        np.tanh(msg, out=msg)  # messages_flat
        q = ws["q"]
        np.matmul(msg, self._gat_a, out=q)
        messages = msg.reshape(k, n, h)
        queries = q.reshape(k, n, h)
        att = ws["att"]
        np.matmul(queries, messages.swapaxes(-1, -2), out=att)
        # Fused masked softmax (same arithmetic as nn.gat._masked_softmax).
        att += push
        row = ws["row"]
        np.max(att, axis=-1, keepdims=True, out=row)
        att -= row
        np.exp(att, out=att)
        att *= masks
        np.sum(att, axis=-1, keepdims=True, out=row)
        row += 1e-12
        att /= row
        agg = ws["agg"]
        np.matmul(att, messages, out=agg)
        # sigma(agg).  The exact path clips the sigmoid input to
        # [-60, 60] first, but agg is an attention-weighted average of
        # tanh outputs: |agg| <= sum_j w_j |m_j| < 1 (weights are
        # non-negative and sum to at most 1), so the clip is an exact
        # identity here and is skipped.
        np.negative(agg, out=agg)
        np.exp(agg, out=agg)
        agg += 1.0
        np.reciprocal(agg, out=agg)  # g
        e_g = np.sum(agg, axis=1, out=ws["e_g"])
        e_g *= self.dtype.type(1.0) / n

        # --- eq. 5: sigmoid head over [E_MS, E_G].
        h0 = ws["h0"]
        h0[:, :h] = e_ms
        h0[:, h:] = e_g
        z1 = ws["z1"]
        np.matmul(h0, self._head_w0, out=z1)
        z1 += self._head_b0
        mask1 = ws["mask1"]
        np.greater(z1, 0.0, out=mask1)
        z1 *= mask1  # r1
        z2 = ws["z2"]
        np.matmul(z1, self._head_w1, out=z2)
        z2 += self._head_b1
        scores = 1.0 / (1.0 + np.exp(-np.clip(z2, -60.0, 60.0)))
        scores = scores.reshape(-1)

        saved = {
            "n": n,
            "ws": ws,
            "messages": messages,
            "queries": queries,
            "att": att,
            "g": agg,
            "r1": z1,
            "mask1": mask1,
            "scores": scores,
        }
        return scores, saved

    # ------------------------------------------------------------------
    def _input_gradient(
        self, saved: Dict[str, np.ndarray], rows: Optional[np.ndarray]
    ) -> np.ndarray:
        """``d sum(log clip(D)) / dM`` for the last saved forward.

        ``rows`` selects the still-active elements; like the oracle's
        differentiable-slice trick the gemms run at the forward stack
        size with zeroed gradient rows, and the caller slices the
        result back down to the survivors.
        """
        n = saved["n"]
        ws = saved["ws"]
        scores = saved["scores"]
        k = scores.shape[0]
        h = self.hidden
        inv_n = self.dtype.type(1.0) / n

        clipped = np.clip(scores, _EPS, 1.0 - _EPS)
        d_scores = ((scores >= _EPS) & (scores <= 1.0 - _EPS)) / clipped
        if rows is not None:
            keep = np.zeros(k, dtype=bool)
            keep[rows] = True
            d_scores = np.where(keep, d_scores, 0.0)
        dz2 = (d_scores * scores * (1.0 - scores)).reshape(k, 1)
        dr1 = dz2 @ self._head_w1.T
        dz1 = np.multiply(dr1, saved["mask1"], out=ws["dz1"])
        dh0 = np.matmul(dz1, self._head_w0.T, out=ws["dh0"])
        dh0 *= inv_n
        de_ms = dh0[:, :h]
        de_g = dh0[:, h:]

        # --- GAT branch.
        messages = saved["messages"]
        queries = saved["queries"]
        att = saved["att"]
        g = saved["g"]
        dagg = ws["dagg"]
        # Autodiff order is (grad * out) * (1 - out); keep it bit-exact.
        np.multiply(g, de_g[:, None, :], out=dagg)
        one_minus = np.subtract(1.0, g, out=ws["dtmp3"])
        dagg *= one_minus
        datt = ws["datt"]
        np.matmul(dagg, messages.swapaxes(-1, -2), out=datt)
        dmsg3 = ws["dmsg3"]
        np.matmul(att.swapaxes(-1, -2), dagg, out=dmsg3)
        inner = np.sum(
            np.multiply(datt, att, out=ws["dscores"]),
            axis=-1, keepdims=True, out=ws["row"],
        )
        dsc = np.subtract(datt, inner, out=ws["dscores"])
        dsc *= att
        dmsg3 += np.matmul(dsc.swapaxes(-1, -2), queries, out=ws["dtmp3"])
        dqueries = np.matmul(dsc, messages, out=ws["dtmp3"])
        dpre = ws["dpre"]
        np.matmul(dqueries.reshape(k * n, h), self._gat_a.T, out=dpre)
        dmsg_flat = np.add(
            dmsg3.reshape(k * n, h), dpre, out=ws["dmsg_flat"]
        )
        tanh_d = np.square(messages.reshape(k * n, h), out=dpre)
        np.subtract(1.0, tanh_d, out=tanh_d)
        dmsg_flat *= tanh_d  # now d(pre-tanh)
        du = np.matmul(dmsg_flat, self._gat_w.T, out=ws["du"])

        # --- [M, S] encoder branch.
        dr = de_ms[:, None, :]  # broadcast over the host axis
        for i in reversed(range(self.n_layers)):
            dz = ws[f"ms_dz{i}"]
            np.multiply(
                dr, ws[f"ms_mask{i}"].reshape(k, n, -1), out=dz.reshape(k, n, -1)
            )
            weight = self._ms[i][0]
            if i == 0:
                d_joint = np.matmul(dz, weight.T, out=ws["djoint"])
                break
            dr = np.matmul(dz, weight.T, out=ws[f"ms_dx{i}"]).reshape(k, n, -1)
        d_metrics = ws["dmetrics"]
        d_metrics[...] = d_joint.reshape(k, n, -1)[..., : self.n_m_features]
        d_metrics[..., :N_NODE_FEATURES] += du.reshape(k, n, N_NODE_FEATURES)
        return d_metrics

    # ------------------------------------------------------------------
    def score_stack(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
    ) -> np.ndarray:
        """Forward-only confidences of a ``[B, n, F]`` stack (float64)."""
        metrics = np.asarray(metrics, dtype=self.dtype)
        if metrics.shape[0] == 0:
            return np.zeros(0)
        schedules = np.asarray(schedules, dtype=self.dtype)
        masks = adjacency_with_self_loops(np.asarray(adjacencies)).astype(
            self.dtype
        )
        push = np.where(masks > 0, 0.0, -1e9).astype(self.dtype)
        scores, _ = self._forward(metrics, schedules, masks, push)
        return scores.astype(np.float64, copy=True)

    # ------------------------------------------------------------------
    def ascent(
        self,
        schedules: Sequence[np.ndarray],
        adjacencies: Sequence[np.ndarray],
        init_metrics: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        gamma=1e-3,
        max_steps=40,
        tol: float = 1e-5,
    ) -> List[SurrogateResult]:
        """Graph-free eq.-1 Adam ascent over a candidate stack.

        Semantics match :func:`repro.core.surrogate.
        generate_metrics_batch` element for element (warm starts,
        per-element convergence freezing, confidence read from the
        post-update forward).  ``gamma`` and ``max_steps`` may be
        per-element vectors, which is what lets the scoring service
        fuse same-shape requests with different hyper-parameters.
        """
        schedules = np.asarray(schedules, dtype=float)
        adjacencies = np.asarray(adjacencies, dtype=float)
        if schedules.ndim != 3 or adjacencies.ndim != 3:
            raise ValueError(
                f"expected stacked [B, ...] inputs, got schedules "
                f"{schedules.shape} and adjacencies {adjacencies.shape}"
            )
        batch = schedules.shape[0]
        if batch == 0:
            return []
        n_hosts = schedules.shape[1]
        gamma_vec = np.broadcast_to(
            np.asarray(gamma, dtype=float), (batch,)
        ).astype(self.dtype)
        if np.any(gamma_vec <= 0):
            raise ValueError("gamma must be positive")
        caps = np.broadcast_to(np.asarray(max_steps, dtype=int), (batch,)).copy()
        if np.any(caps < 0):
            raise ValueError("max_steps must be >= 0")

        if init_metrics is None:
            if rng is None:
                raise ValueError("need rng when init_metrics is omitted")
            current = rng.uniform(
                0.0, 1.0, size=(batch, n_hosts, self.n_m_features)
            ).astype(self.dtype)
        else:
            current = np.array(init_metrics, dtype=self.dtype, copy=True)
            if current.shape[0] != batch:
                raise ValueError(
                    f"init_metrics batch {current.shape[0]} != {batch}"
                )

        sched = schedules.astype(self.dtype)
        masks = adjacency_with_self_loops(adjacencies).astype(self.dtype)
        push = np.where(masks > 0, 0.0, -1e9).astype(self.dtype)

        first_moment = np.zeros_like(current)
        second_moment = np.zeros_like(current)
        beta1, beta2 = 0.9, 0.999
        steps_taken = np.zeros(batch, dtype=int)
        converged = np.zeros(batch, dtype=bool)
        confidence = np.zeros(batch, dtype=self.dtype)

        active = np.arange(batch)
        self._ascents += 1
        call_id = self._ascents
        tag = (call_id, active.tobytes())
        with _FAST_SPAN.time():
            scores, saved = self._forward(
                current[active], sched[active], masks[active], push[active],
                tag=tag,
            )
            rows: Optional[np.ndarray] = None
            for step in range(int(caps.max(initial=0))):
                if active.size == 0:
                    break
                gradient = self._input_gradient(saved, rows)
                if rows is not None:
                    gradient = gradient[rows]
                first_moment[active] = (
                    beta1 * first_moment[active] + (1 - beta1) * gradient
                )
                second_moment[active] = (
                    beta2 * second_moment[active] + (1 - beta2) * gradient ** 2
                )
                m_hat = first_moment[active] / (1 - beta1 ** (step + 1))
                v_hat = second_moment[active] / (1 - beta2 ** (step + 1))
                update = (
                    gamma_vec[active][:, None, None]
                    * m_hat
                    / (np.sqrt(v_hat) + 1e-8)
                )
                current[active] = np.clip(current[active] + update, 0.0, 3.0)
                steps_taken[active] = step + 1

                scores, saved = self._forward(
                    current[active], sched[active], masks[active], push[active],
                    tag=tag,
                )
                rows = None
                tol_done = (
                    np.abs(update).reshape(active.size, -1).max(axis=1) < tol
                )
                done = tol_done | (steps_taken[active] >= caps[active])
                if done.any():
                    frozen = active[done]
                    converged[frozen] = tol_done[done]
                    confidence[frozen] = scores[done]
                    active = active[~done]
                    if active.size == 0:
                        break
                    rows = np.flatnonzero(~done)
        if active.size:
            confidence[active] = scores if rows is None else scores[rows]

        _FAST_CALLS.inc()
        _FAST_ELEMENTS.add(batch)
        _FAST_STEPS.add(int(steps_taken.sum()))
        _FAST_CONVERGED.add(int(converged.sum()))
        _FAST_BATCH.observe(batch)

        return [
            SurrogateResult(
                metrics=current[i].astype(np.float64, copy=True),
                confidence=float(confidence[i]),
                n_steps=int(steps_taken[i]),
                converged=bool(converged[i]),
            )
            for i in range(batch)
        ]
