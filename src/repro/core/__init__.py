"""``repro.core`` -- the paper's primary contribution.

The GON discriminator (Fig. 3), its Algorithm-1 adversarial training,
eq.-1 input-space surrogate generation with confidence scores, POT
dynamic thresholding, node-shift topology repair, tabu search and the
CAROL resilience loop (Algorithm 2).
"""

from .carol import CAROL, CAROLConfig, CAROLDiagnostics
from .features import (
    ENERGY_COLUMN,
    GONInput,
    N_M_FEATURES,
    N_NODE_FEATURES,
    N_S_FEATURES,
    SLO_COLUMN,
    from_interval,
    node_features,
)
from .gon import GONDiscriminator
from .interface import ResilienceModel
from .nodeshift import (
    neighbours,
    random_node_shift,
    repair_options,
    shift_type_1,
    shift_type_2,
    shift_type_3,
)
from .objectives import QoSObjective
from .pot import PeakOverThreshold
from .proactive import ProactiveCAROL
from .scoring import LocalScorer, SurrogateScorer
from .surrogate import (
    SurrogateResult,
    generate_metrics,
    generate_metrics_batch,
    predict_qos,
    predict_qos_batch,
)
from .tabu import TabuResult, as_batched, batched_objective, tabu_search
from .training import (
    TrainingConfig,
    TrainingHistory,
    evaluate,
    fine_tune,
    train_gon,
)

__all__ = [
    "CAROL",
    "CAROLConfig",
    "CAROLDiagnostics",
    "GONDiscriminator",
    "GONInput",
    "ResilienceModel",
    "QoSObjective",
    "PeakOverThreshold",
    "ProactiveCAROL",
    "SurrogateResult",
    "SurrogateScorer",
    "LocalScorer",
    "generate_metrics",
    "generate_metrics_batch",
    "predict_qos",
    "predict_qos_batch",
    "TabuResult",
    "tabu_search",
    "batched_objective",
    "as_batched",
    "TrainingConfig",
    "TrainingHistory",
    "train_gon",
    "fine_tune",
    "evaluate",
    "neighbours",
    "random_node_shift",
    "repair_options",
    "shift_type_1",
    "shift_type_2",
    "shift_type_3",
    "from_interval",
    "node_features",
    "N_M_FEATURES",
    "N_S_FEATURES",
    "N_NODE_FEATURES",
    "ENERGY_COLUMN",
    "SLO_COLUMN",
]
