"""Tabu search over the topology space (§III-B).

The paper selects tabu search for its deterministic behaviour and fast
empirical convergence on this problem, with a fixed-size tabu list
(size 100 after the grid search of §V-E, Fig. 6c).  The search
minimises the surrogate objective ``Omega(G; D, S_t, O)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..simulator.topology import Topology

__all__ = ["TabuResult", "tabu_search"]


@dataclass(frozen=True)
class TabuResult:
    """Outcome of one tabu-search run."""

    best: Topology
    best_score: float
    n_evaluations: int
    n_iterations: int


def tabu_search(
    initial: Topology,
    objective: Callable[[Topology], float],
    neighbourhood: Callable[[Topology], List[Topology]],
    tabu_size: int = 100,
    max_iterations: int = 20,
    patience: int = 4,
) -> TabuResult:
    """Minimise ``objective`` by tabu-restricted local search.

    Classic best-improvement tabu search: each iteration evaluates all
    non-tabu neighbours of the current topology, moves to the best one
    (even if worse -- that is what escapes local minima), marks it tabu
    and tracks the incumbent.  Stops after ``max_iterations`` or
    ``patience`` consecutive non-improving moves.

    Parameters
    ----------
    tabu_size:
        Maximum entries in the FIFO tabu list ``L`` (paper: 100).
    """
    if tabu_size < 1:
        raise ValueError("tabu_size must be >= 1")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")

    tabu: "OrderedDict[tuple, None]" = OrderedDict()
    tabu[initial.canonical_key()] = None

    current = initial
    best = initial
    best_score = objective(initial)
    current_score = best_score
    evaluations = 1
    stale = 0
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        candidates = [
            neighbour
            for neighbour in neighbourhood(current)
            if neighbour.canonical_key() not in tabu
        ]
        if not candidates:
            break

        scored = []
        for candidate in candidates:
            scored.append((objective(candidate), candidate))
            evaluations += 1
        scored.sort(key=lambda pair: pair[0])
        current_score, current = scored[0]

        tabu[current.canonical_key()] = None
        while len(tabu) > tabu_size:
            tabu.popitem(last=False)

        if current_score < best_score:
            best, best_score = current, current_score
            stale = 0
        else:
            stale += 1
            if stale >= patience:
                break

    return TabuResult(
        best=best,
        best_score=best_score,
        n_evaluations=evaluations,
        n_iterations=iterations,
    )
