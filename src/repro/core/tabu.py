"""Tabu search over the topology space (§III-B).

The paper selects tabu search for its deterministic behaviour and fast
empirical convergence on this problem, with a fixed-size tabu list
(size 100 after the grid search of §V-E, Fig. 6c).  The search
minimises the surrogate objective ``Omega(G; D, S_t, O)``.

The objective interface is *batched*: each iteration hands the whole
deduplicated, non-tabu neighbourhood to the objective in one call
(``objective(candidates: list[Topology]) -> list[float]``), so a GON
surrogate can score all candidates in a single vectorized eq.-1 ascent
(see :func:`repro.core.surrogate.predict_qos_batch`).  Plain per-
candidate callables (``Topology -> float``) are detected and adapted
automatically, preserving the classic interface.
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .. import telemetry as _telemetry
from ..simulator.topology import Topology

__all__ = ["TabuResult", "tabu_search", "batched_objective", "as_batched"]

_SEARCH_SPAN = _telemetry.span("tabu.search")
_SEARCHES = _telemetry.counter("tabu.searches")
_ITERATIONS = _telemetry.counter("tabu.iterations")
_EVALUATIONS = _telemetry.counter("tabu.evaluations")


@dataclass(frozen=True)
class TabuResult:
    """Outcome of one tabu-search run."""

    best: Topology
    best_score: float
    n_evaluations: int
    n_iterations: int
    #: ``best.canonical_key()``, computed during the search -- callers
    #: that key caches on canonical keys reuse it instead of re-deriving.
    best_key: Optional[tuple] = None


def batched_objective(fn: Callable[[Sequence[Topology]], List[float]]):
    """Mark ``fn`` as consuming candidate *lists* (the native interface).

    Use as a decorator on objectives that score ``list[Topology] ->
    list[float]`` in one pass; unmarked callables are treated as scalar
    ``Topology -> float`` objectives and wrapped per candidate.

    A batched objective may additionally accept a ``keys`` keyword --
    the candidates' pre-computed ``canonical_key()`` tuples, in order.
    :func:`tabu_search` already derives these for its tabu/duplicate
    bookkeeping, so key-aware objectives (e.g. CAROL's cached surrogate
    scorer) never hash a topology twice.
    """
    fn.is_batched = True
    return fn


def _accepts_keys(fn) -> bool:
    """Whether a batched objective takes the ``keys=`` keyword."""
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    ):
        return True
    keys = parameters.get("keys")
    return keys is not None and keys.kind in (
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
        inspect.Parameter.KEYWORD_ONLY,
    )


def as_batched(objective) -> Callable[..., List[float]]:
    """Return a batch-callable ``(candidates, keys=None)`` view.

    Batched objectives (marked via :func:`batched_objective` or any
    callable with a truthy ``is_batched`` attribute) pass through --
    wrapped to swallow ``keys`` unless their signature accepts it;
    scalar objectives are adapted with a per-candidate loop.
    """
    if getattr(objective, "is_batched", False):
        if _accepts_keys(objective):
            return objective
        return lambda candidates, keys=None: objective(candidates)
    return lambda candidates, keys=None: [
        float(objective(c)) for c in candidates
    ]


@_SEARCH_SPAN
def tabu_search(
    initial: Topology,
    objective,
    neighbourhood: Callable[[Topology], List[Topology]],
    tabu_size: int = 100,
    max_iterations: int = 20,
    patience: int = 4,
) -> TabuResult:
    """Minimise ``objective`` by tabu-restricted local search.

    Classic best-improvement tabu search: each iteration scores all
    non-tabu neighbours of the current topology in one batched
    objective call, moves to the best one (even if worse -- that is
    what escapes local minima), marks it tabu and tracks the incumbent.
    Stops after ``max_iterations`` or ``patience`` consecutive
    non-improving moves.

    Each candidate's ``canonical_key()`` is computed once per iteration
    and reused for the tabu check, duplicate dropping, the tabu-list
    insertion *and* the objective call: key-aware batched objectives
    receive the surviving keys via ``keys=`` so cache lookups never
    re-derive them.  Duplicate-key candidates are removed from the
    neighbourhood before scoring.

    Parameters
    ----------
    objective:
        Either a batched ``list[Topology] -> list[float]`` callable
        (marked with :func:`batched_objective`) or a scalar
        ``Topology -> float`` callable.
    tabu_size:
        Maximum entries in the FIFO tabu list ``L`` (paper: 100).
    """
    if tabu_size < 1:
        raise ValueError("tabu_size must be >= 1")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")

    score_batch = as_batched(objective)
    initial_key = initial.canonical_key()
    tabu: "OrderedDict[tuple, None]" = OrderedDict()
    tabu[initial_key] = None

    current = initial
    best = initial
    best_key = initial_key
    best_score = float(score_batch([initial], keys=[initial_key])[0])
    current_score = best_score
    evaluations = 1
    stale = 0
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        candidates: List[Topology] = []
        keys: List[tuple] = []
        seen: set = set()
        for neighbour in neighbourhood(current):
            key = neighbour.canonical_key()
            if key in tabu or key in seen:
                continue
            seen.add(key)
            candidates.append(neighbour)
            keys.append(key)
        if not candidates:
            break

        scores = [float(s) for s in score_batch(candidates, keys=keys)]
        evaluations += len(candidates)
        move = min(range(len(candidates)), key=scores.__getitem__)
        current_score, current = scores[move], candidates[move]

        tabu[keys[move]] = None
        while len(tabu) > tabu_size:
            tabu.popitem(last=False)

        if current_score < best_score:
            best, best_score, best_key = current, current_score, keys[move]
            stale = 0
        else:
            stale += 1
            if stale >= patience:
                break

    _SEARCHES.inc()
    _ITERATIONS.add(iterations)
    _EVALUATIONS.add(evaluations)
    return TabuResult(
        best=best,
        best_score=best_score,
        n_evaluations=evaluations,
        n_iterations=iterations,
        best_key=best_key,
    )
