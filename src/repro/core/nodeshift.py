"""Node-shift operations over topologies (§III-B, Fig. 1).

When a broker fails its workers are *orphaned*; three worker-to-broker
shift types repair the LEI:

* **Type 1** -- two orphans are promoted to brokers and the remaining
  orphans split evenly between them (broker count +1);
* **Type 2** -- all orphans are handed to an existing broker (broker
  count -1);
* **Type 3** -- one orphan is promoted to manage the rest (broker
  count unchanged).

Their broker-to-worker counterparts (merging an existing LEI into
another, splitting an existing LEI by promoting one of its workers) and
single-worker reassignments form the local-search neighbourhood used by
tabu search.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..simulator.topology import Topology

__all__ = [
    "repair_options",
    "neighbours",
    "random_node_shift",
    "shift_type_1",
    "shift_type_2",
    "shift_type_3",
]


def _distribute(
    topology: Topology, orphans: Sequence[int], brokers: Sequence[int]
) -> Topology:
    """Round-robin ``orphans`` across ``brokers``."""
    result = topology
    for i, orphan in enumerate(sorted(orphans)):
        result = result.attach_worker(orphan, brokers[i % len(brokers)])
    return result


def shift_type_1(topology: Topology, orphans: Sequence[int]) -> List[Topology]:
    """Type-1 shifts: every orphan pair promoted, rest split evenly."""
    orphans = sorted(orphans)
    if len(orphans) < 2:
        return []
    results = []
    for i, first in enumerate(orphans):
        for second in orphans[i + 1:]:
            promoted = topology.promote(first).promote(second)
            rest = [o for o in orphans if o not in (first, second)]
            results.append(_distribute(promoted, rest, [first, second]))
    return results


def shift_type_2(topology: Topology, orphans: Sequence[int]) -> List[Topology]:
    """Type-2 shifts: all orphans assigned to one existing broker."""
    orphans = sorted(orphans)
    if not orphans:
        return []
    results = []
    for broker in sorted(topology.brokers):
        results.append(_distribute(topology, orphans, [broker]))
    return results


def shift_type_3(topology: Topology, orphans: Sequence[int]) -> List[Topology]:
    """Type-3 shifts: one orphan promoted to broker the others."""
    orphans = sorted(orphans)
    if not orphans:
        return []
    results = []
    for candidate in orphans:
        promoted = topology.promote(candidate)
        rest = [o for o in orphans if o != candidate]
        results.append(_distribute(promoted, rest, [candidate]))
    return results


def repair_options(
    topology_after_failure: Topology,
    orphans: Sequence[int],
) -> List[Topology]:
    """The neighbourhood ``N(G, b)`` for a failed broker ``b``.

    ``topology_after_failure`` must already have the failed broker
    detached; ``orphans`` are its live former workers.  Every returned
    topology re-attaches all orphans.
    """
    live_orphans = [o for o in orphans if o not in topology_after_failure.attached]
    options: List[Topology] = []
    options.extend(shift_type_1(topology_after_failure, live_orphans))
    options.extend(shift_type_2(topology_after_failure, live_orphans))
    options.extend(shift_type_3(topology_after_failure, live_orphans))
    # Deduplicate (types can coincide for tiny orphan sets).
    unique = {}
    for option in options:
        unique[option.canonical_key()] = option
    return list(unique.values())


def neighbours(topology: Topology, max_lei_size: int | None = None) -> List[Topology]:
    """Single node-shift neighbourhood of an intact topology.

    Contains, for each applicable host:

    * broker-to-worker merges (demote a broker into a peer);
    * worker-to-broker splits (promote a worker and hand it half of its
      LEI);
    * single-worker reassignments between brokers.
    """
    results: List[Topology] = []
    brokers = sorted(topology.brokers)

    # Broker-to-worker: merge one LEI into another.
    if len(brokers) >= 2:
        for broker in brokers:
            for target in brokers:
                if broker == target:
                    continue
                results.append(topology.demote(broker, target))

    # Worker-to-broker: split an LEI at one of its workers.
    for broker in brokers:
        lei = topology.lei(broker)
        if len(lei) < 2:
            continue
        for worker in lei:
            split = topology.promote(worker)
            movers = [w for w in lei if w != worker][:: 2]
            for mover in movers:
                split = split.reassign(mover, worker)
            results.append(split)

    # Worker reassignment: move one worker to a different broker.
    for worker in topology.workers:
        current = topology.assignment[worker]
        for target in brokers:
            if target == current:
                continue
            results.append(topology.reassign(worker, target))

    if max_lei_size is not None:
        results = [
            t for t in results
            if max(t.lei_sizes().values(), default=0) <= max_lei_size
        ]

    unique = {}
    for result in results:
        unique[result.canonical_key()] = result
    unique.pop(topology.canonical_key(), None)
    return list(unique.values())


def reassignment_neighbours(topology: Topology) -> List[Topology]:
    """Worker-reassignment moves only (no broker count change).

    The cheap maintenance subset of the neighbourhood: used by CAROL's
    per-interval topology upkeep (Alg. 2 line 4; §V-C "allowing
    node-shift at each interval"), where promotions/demotions would pay
    container-restart overheads not justified without a failure.
    """
    results: List[Topology] = []
    brokers = sorted(topology.brokers)
    for worker in topology.workers:
        current = topology.assignment[worker]
        for target in brokers:
            if target != current:
                results.append(topology.reassign(worker, target))
    return results


def random_node_shift(
    topology: Topology, rng: np.random.Generator
) -> Topology:
    """A uniformly random neighbour (Alg. 2 line 7, and trace collection).

    Returns the input topology unchanged when no shift is applicable
    (e.g. a single broker with a single worker).
    """
    options = neighbours(topology)
    if not options:
        return topology
    return options[int(rng.integers(len(options)))]
