"""Surrogate QoS generation by input-space gradient ascent (eq. 1).

GONs generate samples without a generator network: starting from an
initial guess, the metric matrix is optimised to maximise the
discriminator's log-likelihood,

    M <- M + gamma * grad_M log D(M, S, G; theta),

and the converged ``M*`` is the predicted performance for ``(S, G)``
while ``D(M*, S, G)`` is the prediction's confidence score.  In
deployment the ascent warm-starts from the previous interval's metrics
``M_{t-1}`` (temporal-correlation trick of §III-B) rather than noise.

Batched calling convention
--------------------------
:func:`generate_metrics_batch` / :func:`predict_qos_batch` run the same
Adam ascent on a whole candidate stack at once: ``B`` topologies (a
tabu neighbourhood, or a training minibatch's noise samples) are
stacked into ``[B, n_hosts, F]`` arrays and every ascent step is one
vectorized forward/backward through :meth:`GONDiscriminator.
forward_batch`.  Convergence is tracked per batch element: an element
whose update norm falls below ``tol`` freezes (its metrics, step count
and confidence are finalised) while the remaining elements continue in
a compacted stack, so each element follows exactly the trajectory the
sequential :func:`generate_metrics` would have produced.  Results come
back in input order.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import telemetry as _telemetry
from ..nn import Tensor
from .features import GONInput
from .gon import GONDiscriminator

__all__ = [
    "SurrogateResult",
    "generate_metrics",
    "generate_metrics_batch",
    "predict_qos",
    "predict_qos_batch",
]

_EPS = 1e-8

# Process-registry handles for the batched eq.-1 ascent (the fleet's
# hottest kernel); counted per vectorized call, not per element.
_ASCENT_SPAN = _telemetry.span("gon.ascent")
_ASCENT_CALLS = _telemetry.counter("gon.ascent.calls")
_ASCENT_ELEMENTS = _telemetry.counter("gon.ascent.elements")
_ASCENT_STEPS = _telemetry.counter("gon.ascent.steps")
_ASCENT_CONVERGED = _telemetry.counter("gon.ascent.converged")
_ASCENT_BATCH = _telemetry.histogram("gon.ascent.batch_size", _telemetry.SIZE_EDGES)


@contextmanager
def _frozen_parameters(model: GONDiscriminator):
    """Disable weight gradients for the duration of an ascent.

    Eq. 1 only differentiates with respect to the *input* metrics;
    freezing the parameters lets the autodiff engine skip every
    weight-gradient gemm in the backward pass (roughly halving its
    cost) without changing the input gradients.  Callers that need
    parameter gradients (training's loss backward) run outside this
    context and never read grads accumulated during generation.
    """
    parameters = model.parameters()
    flags = [p.requires_grad for p in parameters]
    for parameter in parameters:
        parameter.requires_grad = False
    try:
        yield
    finally:
        for parameter, flag in zip(parameters, flags):
            parameter.requires_grad = flag


@dataclass(frozen=True)
class SurrogateResult:
    """Outcome of one eq.-1 optimisation run."""

    metrics: np.ndarray       # converged M*
    confidence: float         # D(M*, S, G)
    n_steps: int              # ascent steps actually taken
    converged: bool


def generate_metrics(
    model: GONDiscriminator,
    schedule: np.ndarray,
    adjacency: np.ndarray,
    init_metrics: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    gamma: float = 1e-3,
    max_steps: int = 40,
    tol: float = 1e-5,
    adaptive: bool = True,
) -> SurrogateResult:
    """Run the eq.-1 ascent and return ``M*`` with its confidence.

    Parameters
    ----------
    model:
        Trained discriminator.
    schedule / adjacency:
        The fixed inputs ``S`` and ``G``.
    init_metrics:
        Warm start (``M_{t-1}``); random noise if omitted, matching
        Algorithm 1's noise samples ``Z``.
    gamma:
        Ascent step size (the learning rate swept in Fig. 6a).
    max_steps / tol:
        Convergence controls: stop when the update norm falls below
        ``tol`` or after ``max_steps`` iterations.
    adaptive:
        Use Adam-style adaptive steps in the input space (the practice
        of the original GON implementation, which runs eq. 1 through an
        optimizer "till convergence").  ``False`` gives the literal
        plain-gradient form of eq. 1.

    The final confidence is read from the loop's own last forward pass
    (the score of the post-update metrics doubles as the convergence
    check's score), so no extra forward runs after the loop.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    n_hosts = int(np.asarray(schedule).shape[0])
    if init_metrics is None:
        if rng is None:
            raise ValueError("need rng when init_metrics is omitted")
        start = rng.uniform(0.0, 1.0, size=(n_hosts, model.n_m_features))
    else:
        start = np.array(init_metrics, dtype=float, copy=True)

    current = Tensor(start, requires_grad=True)
    first_moment = np.zeros_like(start)
    second_moment = np.zeros_like(start)
    beta1, beta2 = 0.9, 0.999
    steps_taken = 0
    converged = False
    with _frozen_parameters(model):
        score = model(current, schedule, adjacency)
        for step in range(max_steps):
            log_likelihood = score.clip(_EPS, 1.0 - _EPS).log()
            log_likelihood.backward()
            gradient = current.grad
            if gradient is None:
                break
            if adaptive:
                first_moment = beta1 * first_moment + (1 - beta1) * gradient
                second_moment = beta2 * second_moment + (1 - beta2) * gradient ** 2
                m_hat = first_moment / (1 - beta1 ** (step + 1))
                v_hat = second_moment / (1 - beta2 ** (step + 1))
                update = gamma * m_hat / (np.sqrt(v_hat) + 1e-8)
            else:
                update = gamma * gradient
            current = Tensor(
                np.clip(current.data + update, 0.0, 3.0), requires_grad=True
            )
            steps_taken = step + 1
            # Score the updated metrics: this is both the next
            # iteration's ascent point and, on exit, the returned
            # confidence.
            score = model(current, schedule, adjacency)
            if float(np.abs(update).max()) < tol:
                converged = True
                break

    return SurrogateResult(
        metrics=current.data.copy(),
        confidence=float(score.data),
        n_steps=steps_taken,
        converged=converged,
    )


def generate_metrics_batch(
    model: GONDiscriminator,
    schedules: Sequence[np.ndarray],
    adjacencies: Sequence[np.ndarray],
    init_metrics: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    gamma: float = 1e-3,
    max_steps: int = 40,
    tol: float = 1e-5,
    adaptive: bool = True,
) -> List[SurrogateResult]:
    """Eq.-1 ascent over a whole candidate stack in vectorized passes.

    ``schedules`` and ``adjacencies`` are length-``B`` sequences (or
    pre-stacked ``[B, ...]`` arrays) sharing one host count;
    ``init_metrics`` is an optional ``[B, n_hosts, F]`` warm-start
    stack.  When ``init_metrics`` is omitted the noise starts are drawn
    from ``rng`` in one call, consuming the generator stream exactly as
    ``B`` sequential :func:`generate_metrics` calls would.

    Per-element convergence: each element stops ascending the moment
    its own update norm drops below ``tol`` (its confidence is read
    from the same vectorized forward that detected convergence) while
    the still-active elements continue in a compacted stack.  The
    returned list matches looped :func:`generate_metrics` element-wise.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    schedules = np.asarray(schedules, dtype=float)
    adjacencies = np.asarray(adjacencies, dtype=float)
    if schedules.ndim != 3 or adjacencies.ndim != 3:
        raise ValueError(
            f"expected stacked [B, ...] inputs, got schedules "
            f"{schedules.shape} and adjacencies {adjacencies.shape}"
        )
    batch = schedules.shape[0]
    if batch == 0:
        return []
    n_hosts = schedules.shape[1]
    if init_metrics is None:
        if rng is None:
            raise ValueError("need rng when init_metrics is omitted")
        current = rng.uniform(
            0.0, 1.0, size=(batch, n_hosts, model.n_m_features)
        )
    else:
        current = np.array(init_metrics, dtype=float, copy=True)
        if current.shape[0] != batch:
            raise ValueError(
                f"init_metrics batch {current.shape[0]} != {batch}"
            )

    first_moment = np.zeros_like(current)
    second_moment = np.zeros_like(current)
    beta1, beta2 = 0.9, 0.999
    steps_taken = np.zeros(batch, dtype=int)
    converged = np.zeros(batch, dtype=bool)
    confidence = np.zeros(batch, dtype=float)

    active = np.arange(batch)
    with _ASCENT_SPAN.time(), _frozen_parameters(model):
        tensor = Tensor(current[active], requires_grad=True)
        scores = model.forward_batch(
            tensor, schedules[active], adjacencies[active]
        )
        # When elements freeze mid-iteration, ``scores`` is a
        # differentiable slice of a larger stack; ``rows`` maps its
        # rows back into ``tensor`` so the surviving gradients can be
        # read without re-running the forward pass.
        rows: Optional[np.ndarray] = None
        for step in range(max_steps):
            if active.size == 0:
                break
            log_likelihood = scores.clip(_EPS, 1.0 - _EPS).log()
            log_likelihood.sum().backward()
            gradient = tensor.grad
            if gradient is None:
                break
            if rows is not None:
                gradient = gradient[rows]
            if adaptive:
                first_moment[active] = (
                    beta1 * first_moment[active] + (1 - beta1) * gradient
                )
                second_moment[active] = (
                    beta2 * second_moment[active] + (1 - beta2) * gradient ** 2
                )
                m_hat = first_moment[active] / (1 - beta1 ** (step + 1))
                v_hat = second_moment[active] / (1 - beta2 ** (step + 1))
                update = gamma * m_hat / (np.sqrt(v_hat) + 1e-8)
            else:
                update = gamma * gradient
            current[active] = np.clip(current[active] + update, 0.0, 3.0)
            steps_taken[active] = step + 1

            # One vectorized forward over the whole still-active stack:
            # the next ascent point, and the confidence of any element
            # the convergence mask freezes right here.
            tensor = Tensor(current[active], requires_grad=True)
            scores = model.forward_batch(
                tensor, schedules[active], adjacencies[active]
            )
            rows = None
            done = np.abs(update).reshape(active.size, -1).max(axis=1) < tol
            if done.any():
                frozen = active[done]
                converged[frozen] = True
                confidence[frozen] = scores.data[done]
                active = active[~done]
                if active.size == 0:
                    break
                # Narrow the existing graph to the survivors instead of
                # re-running the forward pass: slicing is
                # differentiable, and each row's value/gradient is
                # identical to what a compacted forward would produce.
                rows = np.flatnonzero(~done)
                scores = scores[rows]
    if active.size:
        confidence[active] = scores.data

    _ASCENT_CALLS.inc()
    _ASCENT_ELEMENTS.add(batch)
    _ASCENT_STEPS.add(int(steps_taken.sum()))
    _ASCENT_CONVERGED.add(int(converged.sum()))
    _ASCENT_BATCH.observe(batch)

    return [
        SurrogateResult(
            metrics=current[i].copy(),
            confidence=float(confidence[i]),
            n_steps=int(steps_taken[i]),
            converged=bool(converged[i]),
        )
        for i in range(batch)
    ]


def predict_qos(
    model: GONDiscriminator,
    sample: GONInput,
    objective,
    gamma: float = 1e-3,
    max_steps: int = 40,
) -> tuple[float, SurrogateResult]:
    """Predicted ``O(M*)`` for a candidate ``(S, G)`` pair.

    Warm-starts from the observed metrics in ``sample`` (the paper's
    ``M_{t-1}`` initialisation) and evaluates the objective on the
    converged prediction.  Returns ``(objective_value, result)``.
    """
    result = generate_metrics(
        model,
        sample.schedule,
        sample.adjacency,
        init_metrics=sample.metrics,
        gamma=gamma,
        max_steps=max_steps,
    )
    return objective(result.metrics), result


def predict_qos_batch(
    model: GONDiscriminator,
    samples: Sequence[GONInput],
    objective,
    gamma: float = 1e-3,
    max_steps: int = 40,
) -> List[tuple[float, SurrogateResult]]:
    """Batched :func:`predict_qos`: one vectorized ascent per stack.

    Scores a whole neighbourhood of candidate ``(S, G)`` pairs (warm-
    started from each sample's observed metrics) in a single batched
    eq.-1 run.  Returns ``(objective_value, result)`` pairs in input
    order, matching looped :func:`predict_qos`.
    """
    if not samples:
        return []
    results = generate_metrics_batch(
        model,
        np.stack([s.schedule for s in samples]),
        np.stack([s.adjacency for s in samples]),
        init_metrics=np.stack([s.metrics for s in samples]),
        gamma=gamma,
        max_steps=max_steps,
    )
    return [(objective(r.metrics), r) for r in results]
