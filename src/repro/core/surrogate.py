"""Surrogate QoS generation by input-space gradient ascent (eq. 1).

GONs generate samples without a generator network: starting from an
initial guess, the metric matrix is optimised to maximise the
discriminator's log-likelihood,

    M <- M + gamma * grad_M log D(M, S, G; theta),

and the converged ``M*`` is the predicted performance for ``(S, G)``
while ``D(M*, S, G)`` is the prediction's confidence score.  In
deployment the ascent warm-starts from the previous interval's metrics
``M_{t-1}`` (temporal-correlation trick of §III-B) rather than noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import Tensor
from .features import GONInput
from .gon import GONDiscriminator

__all__ = ["SurrogateResult", "generate_metrics", "predict_qos"]

_EPS = 1e-8


@dataclass(frozen=True)
class SurrogateResult:
    """Outcome of one eq.-1 optimisation run."""

    metrics: np.ndarray       # converged M*
    confidence: float         # D(M*, S, G)
    n_steps: int              # ascent steps actually taken
    converged: bool


def generate_metrics(
    model: GONDiscriminator,
    schedule: np.ndarray,
    adjacency: np.ndarray,
    init_metrics: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    gamma: float = 1e-3,
    max_steps: int = 40,
    tol: float = 1e-5,
    adaptive: bool = True,
) -> SurrogateResult:
    """Run the eq.-1 ascent and return ``M*`` with its confidence.

    Parameters
    ----------
    model:
        Trained discriminator.
    schedule / adjacency:
        The fixed inputs ``S`` and ``G``.
    init_metrics:
        Warm start (``M_{t-1}``); random noise if omitted, matching
        Algorithm 1's noise samples ``Z``.
    gamma:
        Ascent step size (the learning rate swept in Fig. 6a).
    max_steps / tol:
        Convergence controls: stop when the update norm falls below
        ``tol`` or after ``max_steps`` iterations.
    adaptive:
        Use Adam-style adaptive steps in the input space (the practice
        of the original GON implementation, which runs eq. 1 through an
        optimizer "till convergence").  ``False`` gives the literal
        plain-gradient form of eq. 1.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    n_hosts = int(np.asarray(schedule).shape[0])
    if init_metrics is None:
        if rng is None:
            raise ValueError("need rng when init_metrics is omitted")
        start = rng.uniform(0.0, 1.0, size=(n_hosts, model.n_m_features))
    else:
        start = np.array(init_metrics, dtype=float, copy=True)

    current = Tensor(start, requires_grad=True)
    first_moment = np.zeros_like(start)
    second_moment = np.zeros_like(start)
    beta1, beta2 = 0.9, 0.999
    steps_taken = 0
    converged = False
    for step in range(max_steps):
        current.zero_grad()
        score = model(current, schedule, adjacency)
        log_likelihood = score.clip(_EPS, 1.0 - _EPS).log()
        log_likelihood.backward()
        gradient = current.grad
        if gradient is None:
            break
        if adaptive:
            first_moment = beta1 * first_moment + (1 - beta1) * gradient
            second_moment = beta2 * second_moment + (1 - beta2) * gradient ** 2
            m_hat = first_moment / (1 - beta1 ** (step + 1))
            v_hat = second_moment / (1 - beta2 ** (step + 1))
            update = gamma * m_hat / (np.sqrt(v_hat) + 1e-8)
        else:
            update = gamma * gradient
        current = Tensor(
            np.clip(current.data + update, 0.0, 3.0), requires_grad=True
        )
        steps_taken = step + 1
        if float(np.abs(update).max()) < tol:
            converged = True
            break

    final_score = model(current.detach(), schedule, adjacency)
    return SurrogateResult(
        metrics=current.data.copy(),
        confidence=float(final_score.data),
        n_steps=steps_taken,
        converged=converged,
    )


def predict_qos(
    model: GONDiscriminator,
    sample: GONInput,
    objective,
    gamma: float = 1e-3,
    max_steps: int = 40,
) -> tuple[float, SurrogateResult]:
    """Predicted ``O(M*)`` for a candidate ``(S, G)`` pair.

    Warm-starts from the observed metrics in ``sample`` (the paper's
    ``M_{t-1}`` initialisation) and evaluates the objective on the
    converged prediction.  Returns ``(objective_value, result)``.
    """
    result = generate_metrics(
        model,
        sample.schedule,
        sample.adjacency,
        init_metrics=sample.metrics,
        gamma=gamma,
        max_steps=max_steps,
    )
    return objective(result.metrics), result
