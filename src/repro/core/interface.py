"""Resilience-model interface.

Every fault-resilience scheme in the reproduction -- CAROL, the seven
baselines of §V and the four ablations -- implements this contract.
The experiment runner drives the same four-phase interval protocol for
all of them and *measures* decision time, fine-tuning overhead and
memory footprint from the outside, so the Fig. 5 comparisons never rely
on self-reported numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology

__all__ = ["ResilienceModel"]


class ResilienceModel(ABC):
    """Broker-resilience policy driven once per scheduling interval."""

    #: Human-readable identifier used in result tables.
    name: str = "base"

    @abstractmethod
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        """Return the topology for the upcoming interval.

        ``proposal`` is the engine's default initialisation (failed
        hosts stripped, recovered hosts reattached -- Alg. 2 line 4);
        models without an opinion return it unchanged.  The runner
        times this call: it is the Fig. 5(d) *decision time*.
        """

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        """Digest the finished interval; fine-tune/update internal state.

        The runner times this call: it is the Fig. 5(f) *fine-tuning /
        model-update overhead*.  Default: no-op (stateless heuristics).
        """

    def memory_bytes(self) -> int:
        """Resident memory of the model (parameters, buffers, tables).

        Default: a nominal container footprint for stateless policies.
        """
        return 1 * 1024 ** 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
