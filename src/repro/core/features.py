"""Assemble GON inputs from simulator observables.

The discriminator ``D(M, S, G; theta)`` of §IV-A consumes three inputs:
the per-host metric matrix ``M`` (utilisations, QoS, task demands), the
per-host aggregated scheduling decision ``S`` and the topology graph
``G`` whose node features are the resource utilisations ``u_i``.

The canonical encodings are defined simulator-side
(:mod:`repro.simulator.metrics`); this module bundles them into a
single :class:`GONInput` and exposes the column indices the objective
function needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.metrics import IntervalMetrics, M_FEATURES, S_FEATURES
from ..simulator.topology import Topology

__all__ = [
    "GONInput",
    "N_M_FEATURES",
    "N_S_FEATURES",
    "N_NODE_FEATURES",
    "ENERGY_COLUMN",
    "SLO_COLUMN",
    "from_interval",
    "node_features",
]

N_M_FEATURES = len(M_FEATURES)
N_S_FEATURES = len(S_FEATURES)
#: Graph node features are the utilisation block u_i = M[:, :4].
N_NODE_FEATURES = 4
ENERGY_COLUMN = M_FEATURES.index("energy_norm")
SLO_COLUMN = M_FEATURES.index("slo_rate")


@dataclass(frozen=True)
class GONInput:
    """One (M, S, G) tuple ready for the discriminator."""

    metrics: np.ndarray      # [n_hosts, N_M_FEATURES]
    schedule: np.ndarray     # [n_hosts, N_S_FEATURES]
    adjacency: np.ndarray    # [n_hosts, n_hosts]

    def __post_init__(self) -> None:
        n_hosts = self.metrics.shape[0]
        if self.metrics.ndim != 2 or self.metrics.shape[1] != N_M_FEATURES:
            raise ValueError(
                f"metrics must be [n_hosts, {N_M_FEATURES}], got {self.metrics.shape}"
            )
        if self.schedule.shape != (n_hosts, N_S_FEATURES):
            raise ValueError(
                f"schedule must be [{n_hosts}, {N_S_FEATURES}], got {self.schedule.shape}"
            )
        if self.adjacency.shape != (n_hosts, n_hosts):
            raise ValueError(
                f"adjacency must be [{n_hosts}, {n_hosts}], got {self.adjacency.shape}"
            )

    @property
    def n_hosts(self) -> int:
        return self.metrics.shape[0]


def node_features(metrics: np.ndarray) -> np.ndarray:
    """Graph node features: the utilisation block of ``M`` (§IV-A)."""
    return metrics[:, :N_NODE_FEATURES]


def from_interval(
    interval_metrics: IntervalMetrics,
    topology: Topology | None = None,
) -> GONInput:
    """Build a :class:`GONInput` from one simulated interval.

    ``topology`` overrides the interval's own graph -- used when
    scoring *candidate* topologies against the latest metrics during
    the tabu search.
    """
    graph = topology if topology is not None else interval_metrics.topology
    return GONInput(
        metrics=np.asarray(interval_metrics.host_metrics, dtype=float),
        schedule=np.asarray(interval_metrics.schedule_encoding, dtype=float),
        adjacency=graph.adjacency(),
    )
