"""Surrogate scorer seam: where CAROL's GON evaluations execute.

CAROL's decision loop needs three operations from its surrogate --
batched eq.-1 ascents over candidate stacks, single-sample confidence
reads, and confidence-gated fine-tuning.  This module pins that surface
down as the *scorer* interface so the execution backend is swappable:

* :class:`LocalScorer` (the default) runs everything in-process on the
  model CAROL owns -- the PR-2 batched engine, unchanged behaviour;
* ``repro.serving.FleetScorer`` routes ascent stacks to a shared
  scoring service consolidating many concurrent federations into one
  batched GON stream; when fine-tuning diverges this replica from the
  fleet, the new weights ship to the service as a per-client overlay
  so the run stays in the consolidated stream.

Every scorer carries a monotone ``generation`` counter, bumped exactly
when :meth:`fine_tune` mutates the model.  CAROL's persistent surrogate
cache keys its validity on this counter: scores stay reusable across
scheduling intervals precisely as long as the generation stands still
(the model only changes when the POT gate opens -- §III-B).

Scorers also expose a ``diagnostics`` mapping of integer counters.
The ``local_fallbacks`` key is the degradation telemetry campaigns
assert on: it counts ascents a scorer had to run outside its
consolidated stream (always 0 for :class:`LocalScorer`, whose stream
*is* local; 0 for ``FleetScorer`` precisely when overlays keep every
diverged ascent on the service).

Inference backends and the parity contract
------------------------------------------
``LocalScorer`` (and, through it, the serving layer) selects one of
three *inference backends* for the eq.-1 ascent:

``"exact"`` (default)
    The autodiff Tensor-graph engine (`generate_metrics_batch`).  This
    is the bit-exact oracle: records produced under it are the
    reference every other backend is gated against, and the default
    path stays bit-identical across releases.
``"fast"``
    The graph-free float64 kernel (:mod:`repro.core.fastscore`): the
    forward and the closed-form input gradient of the
    GAT->encoder->discriminator stack hand-written as fused numpy
    kernels over the whole ``[B, n, F]`` stack, zero ``Tensor``
    allocation per step.  Gate: scores within ``rtol=1e-12`` of the
    oracle and *identical repair decisions* on the scenario catalog.
    (The shipped kernel mirrors the autodiff op order exactly, so in
    practice it is bitwise-equal -- the CI gate still only assumes
    the documented tier.)
``"fast32"``
    The same kernel with float32 arithmetic for scoring only (never
    training).  Gate: scores within ``rtol=1e-5`` of the oracle on
    every catalog scenario, plus a strong-majority decision-agreement
    canary across the catalog.  Decision agreement is *expected but
    not universal* by construction: wherever a surrogate scores two
    candidates within float32 noise of each other the tie-break can
    flip (observed on one of the nine catalog scenarios even at full
    training scale, and commonly on undertrained GONs).  A kernel
    regression flips decisions systematically; the canary catches
    that, the rtol tier pins per-score correctness.

Only the ascent goes through the kernel: ``confidence()`` (the POT
gate input) and ``fine_tune()`` always run on the exact model path.
Kernels re-export their weights after every ``generation`` bump, so a
fine-tuned scorer never serves stale parameters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..telemetry import MetricsRegistry
from .features import GONInput
from .gon import GONDiscriminator
from .surrogate import SurrogateResult, generate_metrics_batch
from .training import TrainingConfig, fine_tune

__all__ = ["SurrogateScorer", "LocalScorer", "BACKENDS", "validate_backend"]

#: Inference backends a scorer accepts (see the module docstring for
#: the per-tier parity contract).
BACKENDS = ("exact", "fast", "fast32")


def validate_backend(backend: str) -> str:
    """Return ``backend`` or raise ``ValueError`` listing the options."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown scorer backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


class SurrogateScorer(Protocol):
    """The execution backend surface CAROL's decision loop consumes."""

    #: Bumped once per :meth:`fine_tune`; persistent caches key on it.
    generation: int

    #: Integer telemetry counters; every scorer carries at least
    #: ``local_fallbacks`` (ascents degraded out of the scorer's
    #: consolidated stream -- see the module docstring).
    diagnostics: Dict[str, int]

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
    ) -> List[SurrogateResult]:
        """Batched eq.-1 ascent over ``[B, n, F]`` warm-started stacks."""
        ...

    def confidence(self, sample: GONInput) -> float:
        """``D(M, S, G)`` of one realised sample (no gradients kept)."""
        ...

    def fine_tune(
        self,
        samples: Sequence[GONInput],
        config: TrainingConfig,
        iterations: int,
        rng: np.random.Generator,
    ) -> float:
        """Fine-tune on Γ, bump :attr:`generation`, return the loss."""
        ...


class LocalScorer:
    """In-process scorer over an owned :class:`GONDiscriminator`.

    ``backend`` picks the ascent engine (``"exact"`` | ``"fast"`` |
    ``"fast32"``, module docstring has the parity tiers).  The fast
    kernel is built lazily on first ascent and rebuilt whenever
    :meth:`fine_tune` bumps :attr:`generation`.
    """

    def __init__(self, model: GONDiscriminator, backend: str = "exact") -> None:
        self.model = model
        self.backend = validate_backend(backend)
        self.generation = 0
        self._kernel = None
        self._kernel_generation = -1
        # Per-instance registry backing the legacy ``diagnostics``
        # mapping (always enabled: these are record diagnostics, not
        # wall-clock telemetry).  In-process scoring is the
        # consolidated stream here: nothing to fall back from, so the
        # counter stays 0 by construction.
        self.telemetry = MetricsRegistry()
        self._fallbacks = self.telemetry.counter("scorer.local_fallbacks")

    def _fast_kernel(self):
        """The cached fast kernel, re-exported after fine-tuning."""
        if self._kernel is None or self._kernel_generation != self.generation:
            from .fastscore import FastGONKernel

            dtype = "float32" if self.backend == "fast32" else "float64"
            self._kernel = FastGONKernel.from_model(self.model, dtype=dtype)
            self._kernel_generation = self.generation
        return self._kernel

    @property
    def diagnostics(self) -> Dict[str, int]:
        """Legacy integer-counter view of :attr:`telemetry`."""
        return {"local_fallbacks": self._fallbacks.value}

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
    ) -> List[SurrogateResult]:
        if self.backend != "exact":
            return self._fast_kernel().ascent(
                schedules,
                adjacencies,
                init_metrics=metrics,
                gamma=gamma,
                max_steps=max_steps,
            )
        return generate_metrics_batch(
            self.model,
            schedules,
            adjacencies,
            init_metrics=metrics,
            gamma=gamma,
            max_steps=max_steps,
        )

    def confidence(self, sample: GONInput) -> float:
        return self.model.score(sample)

    def fine_tune(
        self,
        samples: Sequence[GONInput],
        config: Optional[TrainingConfig],
        iterations: int,
        rng: np.random.Generator,
    ) -> float:
        loss = fine_tune(
            self.model,
            list(samples),
            config=config,
            iterations=iterations,
            rng=rng,
        )
        self.generation += 1
        return loss
