"""Surrogate scorer seam: where CAROL's GON evaluations execute.

CAROL's decision loop needs three operations from its surrogate --
batched eq.-1 ascents over candidate stacks, single-sample confidence
reads, and confidence-gated fine-tuning.  This module pins that surface
down as the *scorer* interface so the execution backend is swappable:

* :class:`LocalScorer` (the default) runs everything in-process on the
  model CAROL owns -- the PR-2 batched engine, unchanged behaviour;
* ``repro.serving.FleetScorer`` routes ascent stacks to a shared
  scoring service consolidating many concurrent federations into one
  batched GON stream; when fine-tuning diverges this replica from the
  fleet, the new weights ship to the service as a per-client overlay
  so the run stays in the consolidated stream.

Every scorer carries a monotone ``generation`` counter, bumped exactly
when :meth:`fine_tune` mutates the model.  CAROL's persistent surrogate
cache keys its validity on this counter: scores stay reusable across
scheduling intervals precisely as long as the generation stands still
(the model only changes when the POT gate opens -- §III-B).

Scorers also expose a ``diagnostics`` mapping of integer counters.
The ``local_fallbacks`` key is the degradation telemetry campaigns
assert on: it counts ascents a scorer had to run outside its
consolidated stream (always 0 for :class:`LocalScorer`, whose stream
*is* local; 0 for ``FleetScorer`` precisely when overlays keep every
diverged ascent on the service).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..telemetry import MetricsRegistry
from .features import GONInput
from .gon import GONDiscriminator
from .surrogate import SurrogateResult, generate_metrics_batch
from .training import TrainingConfig, fine_tune

__all__ = ["SurrogateScorer", "LocalScorer"]


class SurrogateScorer(Protocol):
    """The execution backend surface CAROL's decision loop consumes."""

    #: Bumped once per :meth:`fine_tune`; persistent caches key on it.
    generation: int

    #: Integer telemetry counters; every scorer carries at least
    #: ``local_fallbacks`` (ascents degraded out of the scorer's
    #: consolidated stream -- see the module docstring).
    diagnostics: Dict[str, int]

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
    ) -> List[SurrogateResult]:
        """Batched eq.-1 ascent over ``[B, n, F]`` warm-started stacks."""
        ...

    def confidence(self, sample: GONInput) -> float:
        """``D(M, S, G)`` of one realised sample (no gradients kept)."""
        ...

    def fine_tune(
        self,
        samples: Sequence[GONInput],
        config: TrainingConfig,
        iterations: int,
        rng: np.random.Generator,
    ) -> float:
        """Fine-tune on Γ, bump :attr:`generation`, return the loss."""
        ...


class LocalScorer:
    """In-process scorer over an owned :class:`GONDiscriminator`."""

    def __init__(self, model: GONDiscriminator) -> None:
        self.model = model
        self.generation = 0
        # Per-instance registry backing the legacy ``diagnostics``
        # mapping (always enabled: these are record diagnostics, not
        # wall-clock telemetry).  In-process scoring is the
        # consolidated stream here: nothing to fall back from, so the
        # counter stays 0 by construction.
        self.telemetry = MetricsRegistry()
        self._fallbacks = self.telemetry.counter("scorer.local_fallbacks")

    @property
    def diagnostics(self) -> Dict[str, int]:
        """Legacy integer-counter view of :attr:`telemetry`."""
        return {"local_fallbacks": self._fallbacks.value}

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
    ) -> List[SurrogateResult]:
        return generate_metrics_batch(
            self.model,
            schedules,
            adjacencies,
            init_metrics=metrics,
            gamma=gamma,
            max_steps=max_steps,
        )

    def confidence(self, sample: GONInput) -> float:
        return self.model.score(sample)

    def fine_tune(
        self,
        samples: Sequence[GONInput],
        config: Optional[TrainingConfig],
        iterations: int,
        rng: np.random.Generator,
    ) -> float:
        loss = fine_tune(
            self.model,
            list(samples),
            config=config,
            iterations=iterations,
            rng=rng,
        )
        self.generation += 1
        return loss
