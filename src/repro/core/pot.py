"""Streaming Peak-Over-Threshold (POT) for confidence dips.

The paper gates GON fine-tuning with the POT method of Siffer et al.
(KDD'17): extreme-value theory fits a Generalised Pareto Distribution
(GPD) to threshold exceedances and converts a target risk ``q`` into a
dynamic threshold ``z_q`` that adapts to the incoming stream (§III-B).

CAROL watches the *lower* tail -- fine-tune when the confidence score
dips below the running threshold -- so we run SPOT on the negated
series internally.  The GPD is fitted by the method of moments, which
is robust at the small excess counts seen early in a run.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["PeakOverThreshold"]


class PeakOverThreshold:
    """Lower-tail streaming POT threshold estimator.

    Parameters
    ----------
    risk:
        Target probability ``q`` of observing a value below ``z_q``.
    init_quantile:
        Quantile of the calibration window used as the initial
        threshold ``t`` (the paper's implementation uses a low
        percentile of past confidence scores).
    calibration_size:
        Observations accumulated before the first threshold is emitted;
        until then :meth:`update` returns ``-inf`` so no fine-tuning
        triggers during warm-up.
    max_history:
        Cap on stored observations (sliding calibration for
        non-stationary streams).
    """

    def __init__(
        self,
        risk: float = 2e-2,
        init_quantile: float = 0.1,
        calibration_size: int = 20,
        max_history: int = 500,
    ) -> None:
        if not 0.0 < risk < 1.0:
            raise ValueError("risk must be in (0, 1)")
        if not 0.0 < init_quantile < 1.0:
            raise ValueError("init_quantile must be in (0, 1)")
        if calibration_size < 5:
            raise ValueError("calibration_size must be >= 5")
        self.risk = risk
        self.init_quantile = init_quantile
        self.calibration_size = calibration_size
        self.max_history = max_history
        self._values: List[float] = []
        self.threshold: float = -np.inf

    # ------------------------------------------------------------------
    @property
    def n_observations(self) -> int:
        return len(self._values)

    @property
    def calibrated(self) -> bool:
        return len(self._values) >= self.calibration_size

    def update(self, value: float) -> float:
        """Ingest a confidence score; return the current threshold.

        The caller fine-tunes when ``value < threshold``.
        """
        self._values.append(float(value))
        if len(self._values) > self.max_history:
            self._values.pop(0)
        if not self.calibrated:
            self.threshold = -np.inf
            return self.threshold
        self.threshold = self._compute_threshold()
        return self.threshold

    # ------------------------------------------------------------------
    def _compute_threshold(self) -> float:
        """SPOT on the negated series (lower-tail extremes)."""
        series = -np.asarray(self._values)
        n = len(series)
        # Initial threshold: high quantile of the negated series
        # corresponds to the low ``init_quantile`` of the raw one.
        t = float(np.quantile(series, 1.0 - self.init_quantile))
        excesses = series[series > t] - t
        n_excess = len(excesses)
        if n_excess < 2:
            # Too few peaks for a tail fit; fall back to the empirical
            # initial threshold.
            return -t

        sigma, xi = self._fit_gpd(excesses)
        ratio = self.risk * n / n_excess
        if abs(xi) < 1e-6:
            z = t + sigma * np.log(1.0 / max(ratio, 1e-12))
        else:
            z = t + (sigma / xi) * (max(ratio, 1e-12) ** (-xi) - 1.0)
        # z is the upper-tail threshold of the negated series; flip
        # back to the confidence scale.  Guard against degenerate fits
        # pushing the trigger above the bulk of the data.
        z = max(z, t)
        return -float(z)

    @staticmethod
    def _fit_gpd(excesses: np.ndarray) -> tuple[float, float]:
        """Method-of-moments GPD fit: returns ``(sigma, xi)``."""
        mean = float(np.mean(excesses))
        var = float(np.var(excesses))
        if var <= 1e-12 or mean <= 1e-12:
            return max(mean, 1e-6), 0.0
        ratio = mean * mean / var
        xi = 0.5 * (1.0 - ratio)
        sigma = 0.5 * mean * (ratio + 1.0)
        # Clamp to the range where moments exist and the fit is sane.
        xi = float(np.clip(xi, -0.5, 0.49))
        return max(sigma, 1e-6), xi
