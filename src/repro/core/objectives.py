"""QoS objective ``O(M)`` (eq. 6-7 of the paper).

A convex combination of system-wide energy consumption and SLO
violation rates computed from the per-host metric matrix:

    q_energy = sum_i M[i, energy],  q_slo = sum_i M[i, slo]
    O(M) = alpha * q_energy + beta * q_slo,   alpha + beta = 1

Lower is better.  ``alpha = beta = 0.5`` throughout the paper's
experiments; energy-constrained deployments raise ``alpha``,
latency-critical ones raise ``beta`` (§IV-B).
"""

from __future__ import annotations

import numpy as np

from .features import ENERGY_COLUMN, SLO_COLUMN

__all__ = ["QoSObjective"]


class QoSObjective:
    """Callable computing ``O(M)`` from a metric matrix."""

    def __init__(self, alpha: float = 0.5, beta: float = 0.5) -> None:
        if abs(alpha + beta - 1.0) > 1e-9:
            raise ValueError("alpha + beta must equal 1 (eq. 7)")
        if alpha < 0 or beta < 0:
            raise ValueError("weights must be non-negative")
        self.alpha = alpha
        self.beta = beta

    def __call__(self, metrics: np.ndarray) -> float:
        metrics = np.asarray(metrics)
        if metrics.ndim != 2:
            raise ValueError("metrics must be a [n_hosts, features] matrix")
        q_energy = float(metrics[:, ENERGY_COLUMN].sum())
        q_slo = float(metrics[:, SLO_COLUMN].sum())
        return self.alpha * q_energy + self.beta * q_slo

    def components(self, metrics: np.ndarray) -> tuple[float, float]:
        """Return ``(q_energy, q_slo)`` separately."""
        metrics = np.asarray(metrics)
        return (
            float(metrics[:, ENERGY_COLUMN].sum()),
            float(metrics[:, SLO_COLUMN].sum()),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QoSObjective(alpha={self.alpha}, beta={self.beta})"
