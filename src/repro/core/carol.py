"""CAROL: the Confidence-Aware Resilience model (Algorithm 2).

Per scheduling interval:

1. start from the engine's topology initialisation (line 4);
2. for each failed broker, apply a random node-shift and run tabu
   search over the node-shift neighbourhood, scoring candidates with
   the GON surrogate through the QoS objective (lines 5-8);
3. when no broker failed, bank the interval's datapoint in the running
   dataset Γ (line 10);
4. compute the confidence ``C = D(M_t, S_t, G_t)``, update the POT
   threshold and fine-tune the GON on Γ only when ``C`` dips below it
   (lines 11-16) -- the parsimonious fine-tuning that gives CAROL its
   low overheads.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..simulator.detection import FailureReport
from ..telemetry import MetricsRegistry, merge_snapshots
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .features import GONInput, from_interval
from .gon import GONDiscriminator
from .interface import ResilienceModel
from .nodeshift import neighbours, random_node_shift, reassignment_neighbours
from .objectives import QoSObjective
from .pot import PeakOverThreshold
from .scoring import LocalScorer, SurrogateScorer
from .tabu import batched_objective, tabu_search
from .training import TrainingConfig

__all__ = ["CAROLConfig", "CAROL"]


@dataclass(frozen=True)
class CAROLConfig:
    """CAROL hyper-parameters (paper values as defaults)."""

    #: Surrogate ascent step size, gamma of eq. 1 (paper's best: 1e-3;
    #: one decade higher here -- see TrainingConfig.generation_gamma).
    gamma: float = 1e-2
    #: Ascent iterations per surrogate evaluation during the search.
    surrogate_steps: int = 8
    #: Tabu list size L (paper: 100, Fig. 6c).
    tabu_size: int = 100
    #: Tabu iterations / non-improving patience per failed broker.
    tabu_iterations: int = 4
    tabu_patience: int = 2
    #: Neighbourhood subsample per tabu iteration (tractability bound;
    #: the full neighbourhood is evaluated when smaller than this).
    neighbourhood_sample: int = 24
    #: POT risk and calibration (§III-B).
    pot_risk: float = 2e-2
    pot_calibration: int = 20
    #: Running-dataset capacity and the minimum needed to fine-tune.
    buffer_capacity: int = 200
    min_buffer: int = 8
    #: Fine-tuning passes over Γ per trigger.
    fine_tune_iterations: int = 2
    #: Per-interval topology maintenance (§V-C: "allowing node-shift at
    #: each interval"): on failure-free intervals, up to this many
    #: cheap worker-reassignment candidates are scored against the
    #: incumbent.  0 disables maintenance (strict failure-only repair).
    maintenance_candidates: int = 6
    #: Capacity of the persistent surrogate-score cache (entries).  The
    #: cache is keyed on ``(canonical_key, metrics-hash)`` and survives
    #: across scheduling intervals between fine-tunes; FIFO eviction
    #: bounds its footprint.  0 disables caching entirely.
    score_cache_capacity: int = 4096
    #: What the cached score is keyed against besides the topology:
    #:
    #: * ``"context"`` (default) -- the hash of the warm-start metrics
    #:   and schedule.  Hits are exact (identical ascent inputs ->
    #:   identical scores); since the observed context drifts every
    #:   interval, reuse is mostly *within* an interval (tabu
    #:   revisits, multi-broker rounds, the proactive phases).
    #: * ``"generation"`` -- the topology alone, valid until the next
    #:   fine-tune.  The eq.-1 ascent approximates a fixed point of
    #:   the *model*, and the model only changes when the POT gate
    #:   opens, so a topology's score is reused across intervals and
    #:   quiet-interval maintenance becomes nearly free.  Scores then
    #:   lag the current context between fine-tunes -- a documented
    #:   throughput/fidelity trade (see ``benchmarks/bench_campaign``).
    score_cache_scope: str = "context"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.score_cache_scope not in ("context", "generation"):
            raise ValueError(
                f"unknown score_cache_scope {self.score_cache_scope!r}; "
                "expected 'context' or 'generation'"
            )


@dataclass
class CAROLDiagnostics:
    """Telemetry for the Fig. 2 confidence/threshold visualisation,
    plus the persistent surrogate-cache counters.

    The integer counters live on a per-instance
    :class:`~repro.telemetry.MetricsRegistry` (under ``carol.cache.*``
    and ``carol.fine_tunes``); the legacy attribute reads
    (``cache_hits`` etc.) and the :meth:`counters` keys are preserved
    as aliases.  This registry is deterministic bookkeeping that feeds
    ``RunRecord.diagnostics``, so it stays enabled regardless of the
    process-wide telemetry toggle.
    """

    confidences: List[float] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)
    fine_tuned: List[bool] = field(default_factory=list)
    #: Surrogate ascents actually run per interval (cache misses).
    tabu_evaluations: List[int] = field(default_factory=list)
    #: Per-instance registry backing the integer counters.
    telemetry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Rolling hash over every repair choice and POT gate outcome --
    #: the decision-parity surface scorer backends are gated on.
    _decision_hash: object = field(
        default_factory=lambda: hashlib.blake2b(digest_size=8), repr=False
    )

    def note_decision(self, kind: str, payload: object) -> None:
        """Fold one decision into the rolling digest.

        ``kind`` tags the decision site (``"repair"``, ``"preventive"``,
        ``"fine_tune"``); ``payload`` is its outcome -- a chosen
        topology's ``canonical_key()`` or the POT gate's bool.  Two runs
        made identical decisions in identical order iff their digests
        match, which is exactly the assertion the fast-backend parity
        gate needs without shipping every topology in the record.
        """
        self._decision_hash.update(kind.encode())
        self._decision_hash.update(repr(payload).encode())

    @property
    def decision_digest(self) -> str:
        """Hex digest of all decisions so far (stable across reads)."""
        return self._decision_hash.copy().hexdigest()

    @property
    def cache_hits(self) -> int:
        """Lookups answered by the persistent cross-interval cache."""
        return self.telemetry.counter("carol.cache.hits").value

    @property
    def cache_misses(self) -> int:
        """Lookups that had to run a fresh eq.-1 ascent."""
        return self.telemetry.counter("carol.cache.misses").value

    @property
    def cache_evictions(self) -> int:
        """Entries dropped -- capacity FIFO plus generation flushes."""
        return self.telemetry.counter("carol.cache.evictions").value

    @property
    def n_fine_tunes(self) -> int:
        return sum(self.fine_tuned)

    @property
    def cache_hit_rate(self) -> float:
        """Hits over all lookups since construction (0.0 when idle)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def counters(self) -> dict:
        """The integer telemetry as a plain dict (campaign records).

        Legacy key names -- the registry view of the same values uses
        the namespaced ``carol.*`` metric names.
        """
        return {
            "n_fine_tunes": self.n_fine_tunes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "decision_digest": self.decision_digest,
        }


class CAROL(ResilienceModel):
    """Confidence-aware resilience model over a trained GON."""

    name = "CAROL"

    def __init__(
        self,
        model: GONDiscriminator,
        alpha: float = 0.5,
        beta: float = 0.5,
        config: Optional[CAROLConfig] = None,
        scorer: Optional[SurrogateScorer] = None,
    ) -> None:
        self.model = model
        self.config = config or CAROLConfig()
        self.objective = QoSObjective(alpha, beta)
        self.pot = PeakOverThreshold(
            risk=self.config.pot_risk,
            calibration_size=self.config.pot_calibration,
        )
        self.rng = np.random.default_rng(self.config.seed)
        # Γ ring buffer: deque(maxlen=...) evicts the oldest datapoint
        # in O(1) instead of the O(n) list.pop(0).
        self.buffer: Deque[GONInput] = deque(maxlen=self.config.buffer_capacity)
        self.diagnostics = CAROLDiagnostics()
        #: Execution backend for GON evaluations; the default runs
        #: in-process, ``repro.serving.FleetScorer`` routes ascents to
        #: a shared cross-federation scoring service.
        self.scorer: SurrogateScorer = (
            scorer if scorer is not None else LocalScorer(model)
        )
        # Persistent surrogate cache: (canonical_key, metrics-hash) ->
        # (objective value, predicted M*).  Entries survive across
        # scheduling intervals and are flushed only when fine-tuning
        # actually changes the model (scorer generation bump).
        self._score_cache: "OrderedDict[tuple, Tuple[float, np.ndarray]]" = (
            OrderedDict()
        )
        self._cache_generation = self.scorer.generation
        self._training_config = TrainingConfig(
            generation_gamma=self.config.gamma,
            generation_steps=self.config.surrogate_steps,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    # Persistent surrogate-score cache
    # ------------------------------------------------------------------
    def _context_hash(self, metrics: np.ndarray, schedule: np.ndarray) -> bytes:
        """Digest of the ascent context (warm start ``M`` and ``S``).

        Under the default ``"context"`` cache scope this, together with
        a topology's canonical key, pins down every input of the eq.-1
        ascent, so equal keys guarantee equal scores and cached entries
        are exact, not approximations.  Under ``"generation"`` scope
        the context collapses to a constant: entries are keyed on the
        topology alone and live until the next fine-tune flush.
        """
        if self.config.score_cache_scope == "generation":
            return b"generation"
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr(metrics.shape).encode())
        digest.update(metrics.tobytes())
        digest.update(schedule.tobytes())
        return digest.digest()

    def _invalidate_score_cache(self) -> None:
        """Flush every entry (the model changed: scores are stale)."""
        self.diagnostics.telemetry.counter("carol.cache.evictions").add(
            len(self._score_cache)
        )
        self._score_cache.clear()
        self._cache_generation = self.scorer.generation

    def surrogate_scores(
        self,
        candidates: Sequence[Topology],
        metrics: np.ndarray,
        schedule: np.ndarray,
        ctx: Optional[bytes] = None,
        keys: Optional[Sequence[tuple]] = None,
    ) -> List[Tuple[float, np.ndarray]]:
        """``(objective value, predicted M*)`` per candidate topology.

        All cache-missing candidates are scored in one vectorized eq.-1
        ascent (via :attr:`scorer`, so fleet deployments consolidate
        the stack with other federations); everything else is served
        from the persistent cache.  ``keys`` are optional pre-computed
        canonical keys (tabu search already derives them), ``ctx`` the
        optional pre-computed :meth:`_context_hash`.
        """
        if self._cache_generation != self.scorer.generation:
            self._invalidate_score_cache()
        if ctx is None:
            ctx = self._context_hash(metrics, schedule)
        if keys is None:
            keys = [candidate.canonical_key() for candidate in candidates]

        diag_reg = self.diagnostics.telemetry
        hits = diag_reg.counter("carol.cache.hits")
        misses = diag_reg.counter("carol.cache.misses")
        out: List[Optional[Tuple[float, np.ndarray]]] = [None] * len(keys)
        # Cache-missing keys in first-seen order -> their output slots.
        pending: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for i, key in enumerate(keys):
            full_key = (key, ctx)
            entry = self._score_cache.get(full_key)
            if entry is not None:
                hits.inc()
                out[i] = entry
            elif full_key in pending:
                # Duplicate within this call: one ascent serves both.
                hits.inc()
                pending[full_key].append(i)
            else:
                misses.inc()
                pending[full_key] = [i]

        if pending:
            batch = len(pending)
            first_slots = [slots[0] for slots in pending.values()]
            results = self.scorer.ascent(
                np.repeat(metrics[None], batch, axis=0),
                np.repeat(schedule[None], batch, axis=0),
                np.stack([candidates[i].adjacency() for i in first_slots]),
                gamma=self.config.gamma,
                max_steps=self.config.surrogate_steps,
            )
            capacity = self.config.score_cache_capacity
            for (full_key, slots), result in zip(pending.items(), results):
                entry = (float(self.objective(result.metrics)), result.metrics)
                if capacity > 0:  # capacity 0 = caching disabled
                    self._score_cache[full_key] = entry
                for slot in slots:
                    out[slot] = entry
            evictions = diag_reg.counter("carol.cache.evictions")
            while len(self._score_cache) > capacity:
                self._score_cache.popitem(last=False)
                evictions.inc()
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Alg. 2 lines 4-8: topology repair
    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        if view.last_metrics is None:
            # No observations yet (interval 1): nothing to optimise.
            self.diagnostics.tabu_evaluations.append(0)
            self.diagnostics.note_decision("repair", proposal.canonical_key())
            return proposal

        last = view.last_metrics
        metrics = np.asarray(last.host_metrics, dtype=float)
        schedule = np.asarray(last.schedule_encoding, dtype=float)
        ctx = self._context_hash(metrics, schedule)
        misses_before = self.diagnostics.cache_misses

        @batched_objective
        def omega(
            candidates: Sequence[Topology], keys=None
        ) -> List[float]:
            """Objective scores of a graph batch (the paper's Omega).

            Backed by :meth:`surrogate_scores`: cache-missing
            candidates run in one vectorized eq.-1 ascent, and the
            persistent ``(canonical_key, metrics-hash)`` cache carries
            scores across tabu iterations, repair rounds *and*
            scheduling intervals between fine-tunes.  Tabu search hands
            its pre-computed canonical keys through ``keys``.
            """
            return [
                score
                for score, _predicted in self.surrogate_scores(
                    candidates, metrics, schedule, ctx=ctx, keys=keys
                )
            ]

        def sampled_neighbours(topology: Topology) -> List[Topology]:
            options = neighbours(topology)
            limit = self.config.neighbourhood_sample
            if len(options) > limit:
                chosen = self.rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in chosen]
            return options

        if report.failed_brokers:
            # Lines 7-8: random node-shift as the search start, once
            # per failed broker, then tabu search.  The engine's
            # initialisation stays the incumbent: a weakly-trained
            # surrogate must beat it to move the topology.
            current, current_key = proposal, None
            for _failed in report.failed_brokers:
                start = random_node_shift(current, self.rng)
                result = tabu_search(
                    start,
                    objective=omega,
                    neighbourhood=sampled_neighbours,
                    tabu_size=self.config.tabu_size,
                    max_iterations=self.config.tabu_iterations,
                    patience=self.config.tabu_patience,
                )
                current, current_key = result.best, result.best_key
            repair_scores = omega(
                [current, proposal],
                keys=[current_key, proposal.canonical_key()],
            )
            chosen = current if repair_scores[0] <= repair_scores[1] else proposal
        elif self.config.maintenance_candidates > 0:
            # Line 4 / §V-C: per-interval node-shift maintenance.
            # Cheap reassignment moves only; the incumbent competes,
            # and the whole slate is scored in one batched ascent.
            options = reassignment_neighbours(proposal)
            limit = self.config.maintenance_candidates
            if len(options) > limit:
                picks = self.rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in picks]
            slate = [proposal, *options]
            scores = omega(slate)
            chosen = slate[min(range(len(slate)), key=scores.__getitem__)]
        else:
            chosen = proposal
        # Ascents actually run this interval (misses; hits were free).
        self.diagnostics.tabu_evaluations.append(
            self.diagnostics.cache_misses - misses_before
        )
        self.diagnostics.note_decision("repair", chosen.canonical_key())
        return chosen

    # ------------------------------------------------------------------
    # Alg. 2 lines 10-16: confidence tracking and fine-tuning
    # ------------------------------------------------------------------
    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        sample = from_interval(metrics)
        report = metrics.failure_report
        broker_failed = bool(report and report.failed_brokers)
        if not broker_failed:
            # Line 10: save healthy datapoints into Γ (the deque's
            # maxlen evicts the oldest entry automatically).
            self.buffer.append(sample)

        # Line 11: confidence score of the realised state.
        confidence = self.scorer.confidence(sample)
        # Line 12: POT threshold update.
        threshold = self.pot.update(confidence)

        fine_tuned = False
        if confidence < threshold and len(self.buffer) >= self.config.min_buffer:
            # Lines 14-16: fine-tune on Γ, then clear it.  The scorer
            # bumps its generation, so the persistent score cache is
            # flushed exactly when the model actually changes.
            self.scorer.fine_tune(
                list(self.buffer),
                config=self._training_config,
                iterations=self.config.fine_tune_iterations,
                rng=self.rng,
            )
            self.buffer.clear()
            self._invalidate_score_cache()
            fine_tuned = True
            self.diagnostics.telemetry.counter("carol.fine_tunes").inc()

        self.diagnostics.confidences.append(confidence)
        self.diagnostics.thresholds.append(
            threshold if np.isfinite(threshold) else float("nan")
        )
        self.diagnostics.fine_tuned.append(fine_tuned)
        self.diagnostics.note_decision("fine_tune", fine_tuned)

    # ------------------------------------------------------------------
    def scorer_diagnostics(self) -> dict:
        """The execution backend's counters plus this model's own.

        Flat dict of integer counters (``local_fallbacks``,
        ``overlay_installs`` when fleet-mounted, the cache counters,
        ``n_fine_tunes``) plus the ``decision_digest`` hex string,
        surfaced into campaign records so fleet runs can assert, e.g.,
        that overlays kept every diverged ascent on the service
        (``local_fallbacks == 0``) and so record dumps from different
        scorer backends can be checked for decision parity
        (``benchmarks/compare_records.py --decisions``).
        """
        counters = dict(getattr(self.scorer, "diagnostics", None) or {})
        counters.update(self.diagnostics.counters())
        return counters

    def telemetry_snapshot(self) -> dict:
        """Merged per-instance registries (model + scorer).

        The namespaced (``carol.*`` / ``scorer.*``) registry view of
        :meth:`scorer_diagnostics`; :func:`repro.experiments.campaign.run_cell`
        folds it into the process registry after every cell so campaign
        telemetry aggregates per-model counters fleet-wide.
        """
        snaps = [self.diagnostics.telemetry.snapshot()]
        scorer_registry = getattr(self.scorer, "telemetry", None)
        if scorer_registry is not None:
            snaps.append(scorer_registry.snapshot())
        return merge_snapshots(*snaps)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """GON parameters + optimiser moments + Γ + the score cache."""
        buffer_bytes = sum(
            s.metrics.nbytes + s.schedule.nbytes + s.adjacency.nbytes
            for s in self.buffer
        )
        # The persistent cache holds a predicted M* per entry; it is
        # resident broker memory like everything else here, so it
        # enters the Fig. 5e accounting rather than hiding from it.
        cache_bytes = sum(
            predicted.nbytes for _score, predicted in self._score_cache.values()
        )
        return self.model.footprint_bytes() + buffer_bytes + cache_bytes
