"""CAROL: the Confidence-Aware Resilience model (Algorithm 2).

Per scheduling interval:

1. start from the engine's topology initialisation (line 4);
2. for each failed broker, apply a random node-shift and run tabu
   search over the node-shift neighbourhood, scoring candidates with
   the GON surrogate through the QoS objective (lines 5-8);
3. when no broker failed, bank the interval's datapoint in the running
   dataset Γ (line 10);
4. compute the confidence ``C = D(M_t, S_t, G_t)``, update the POT
   threshold and fine-tune the GON on Γ only when ``C`` dips below it
   (lines 11-16) -- the parsimonious fine-tuning that gives CAROL its
   low overheads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .features import GONInput, from_interval
from .gon import GONDiscriminator
from .interface import ResilienceModel
from .nodeshift import neighbours, random_node_shift, reassignment_neighbours
from .objectives import QoSObjective
from .pot import PeakOverThreshold
from .surrogate import predict_qos_batch
from .tabu import batched_objective, tabu_search
from .training import TrainingConfig, fine_tune

__all__ = ["CAROLConfig", "CAROL"]


@dataclass(frozen=True)
class CAROLConfig:
    """CAROL hyper-parameters (paper values as defaults)."""

    #: Surrogate ascent step size, gamma of eq. 1 (paper's best: 1e-3;
    #: one decade higher here -- see TrainingConfig.generation_gamma).
    gamma: float = 1e-2
    #: Ascent iterations per surrogate evaluation during the search.
    surrogate_steps: int = 8
    #: Tabu list size L (paper: 100, Fig. 6c).
    tabu_size: int = 100
    #: Tabu iterations / non-improving patience per failed broker.
    tabu_iterations: int = 4
    tabu_patience: int = 2
    #: Neighbourhood subsample per tabu iteration (tractability bound;
    #: the full neighbourhood is evaluated when smaller than this).
    neighbourhood_sample: int = 24
    #: POT risk and calibration (§III-B).
    pot_risk: float = 2e-2
    pot_calibration: int = 20
    #: Running-dataset capacity and the minimum needed to fine-tune.
    buffer_capacity: int = 200
    min_buffer: int = 8
    #: Fine-tuning passes over Γ per trigger.
    fine_tune_iterations: int = 2
    #: Per-interval topology maintenance (§V-C: "allowing node-shift at
    #: each interval"): on failure-free intervals, up to this many
    #: cheap worker-reassignment candidates are scored against the
    #: incumbent.  0 disables maintenance (strict failure-only repair).
    maintenance_candidates: int = 6
    seed: int = 0


@dataclass
class CAROLDiagnostics:
    """Telemetry for the Fig. 2 confidence/threshold visualisation."""

    confidences: List[float] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)
    fine_tuned: List[bool] = field(default_factory=list)
    tabu_evaluations: List[int] = field(default_factory=list)

    @property
    def n_fine_tunes(self) -> int:
        return sum(self.fine_tuned)


class CAROL(ResilienceModel):
    """Confidence-aware resilience model over a trained GON."""

    name = "CAROL"

    def __init__(
        self,
        model: GONDiscriminator,
        alpha: float = 0.5,
        beta: float = 0.5,
        config: Optional[CAROLConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or CAROLConfig()
        self.objective = QoSObjective(alpha, beta)
        self.pot = PeakOverThreshold(
            risk=self.config.pot_risk,
            calibration_size=self.config.pot_calibration,
        )
        self.rng = np.random.default_rng(self.config.seed)
        # Γ ring buffer: deque(maxlen=...) evicts the oldest datapoint
        # in O(1) instead of the O(n) list.pop(0).
        self.buffer: Deque[GONInput] = deque(maxlen=self.config.buffer_capacity)
        self.diagnostics = CAROLDiagnostics()
        self._training_config = TrainingConfig(
            generation_gamma=self.config.gamma,
            generation_steps=self.config.surrogate_steps,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    # Alg. 2 lines 4-8: topology repair
    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        if view.last_metrics is None:
            # No observations yet (interval 1): nothing to optimise.
            self.diagnostics.tabu_evaluations.append(0)
            return proposal

        last = view.last_metrics
        metrics = np.asarray(last.host_metrics, dtype=float)
        schedule = np.asarray(last.schedule_encoding, dtype=float)
        cache: Dict[tuple, float] = {}

        @batched_objective
        def omega(candidates: Sequence[Topology]) -> List[float]:
            """Objective scores of a graph batch (the paper's Omega).

            All cache-missing candidates are scored in one vectorized
            eq.-1 ascent; the canonical-key cache carries scores across
            tabu iterations and repair rounds.
            """
            keyed = [(candidate.canonical_key(), candidate) for candidate in candidates]
            missing: List[Topology] = []
            missing_keys: List[tuple] = []
            queued: set = set()
            for key, candidate in keyed:
                if key not in cache and key not in queued:
                    queued.add(key)
                    missing.append(candidate)
                    missing_keys.append(key)
            if missing:
                samples = [
                    GONInput(metrics, schedule, candidate.adjacency())
                    for candidate in missing
                ]
                scored = predict_qos_batch(
                    self.model,
                    samples,
                    self.objective,
                    gamma=self.config.gamma,
                    max_steps=self.config.surrogate_steps,
                )
                for key, (score, _result) in zip(missing_keys, scored):
                    cache[key] = score
            return [cache[key] for key, _ in keyed]

        def sampled_neighbours(topology: Topology) -> List[Topology]:
            options = neighbours(topology)
            limit = self.config.neighbourhood_sample
            if len(options) > limit:
                chosen = self.rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in chosen]
            return options

        if report.failed_brokers:
            # Lines 7-8: random node-shift as the search start, once
            # per failed broker, then tabu search.  The engine's
            # initialisation stays the incumbent: a weakly-trained
            # surrogate must beat it to move the topology.
            current = proposal
            for _failed in report.failed_brokers:
                start = random_node_shift(current, self.rng)
                result = tabu_search(
                    start,
                    objective=omega,
                    neighbourhood=sampled_neighbours,
                    tabu_size=self.config.tabu_size,
                    max_iterations=self.config.tabu_iterations,
                    patience=self.config.tabu_patience,
                )
                current = result.best
            repair_scores = omega([current, proposal])
            chosen = current if repair_scores[0] <= repair_scores[1] else proposal
        elif self.config.maintenance_candidates > 0:
            # Line 4 / §V-C: per-interval node-shift maintenance.
            # Cheap reassignment moves only; the incumbent competes,
            # and the whole slate is scored in one batched ascent.
            options = reassignment_neighbours(proposal)
            limit = self.config.maintenance_candidates
            if len(options) > limit:
                picks = self.rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in picks]
            slate = [proposal, *options]
            scores = omega(slate)
            chosen = slate[min(range(len(slate)), key=scores.__getitem__)]
        else:
            chosen = proposal
        self.diagnostics.tabu_evaluations.append(len(cache))
        return chosen

    # ------------------------------------------------------------------
    # Alg. 2 lines 10-16: confidence tracking and fine-tuning
    # ------------------------------------------------------------------
    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        sample = from_interval(metrics)
        report = metrics.failure_report
        broker_failed = bool(report and report.failed_brokers)
        if not broker_failed:
            # Line 10: save healthy datapoints into Γ (the deque's
            # maxlen evicts the oldest entry automatically).
            self.buffer.append(sample)

        # Line 11: confidence score of the realised state.
        confidence = self.model.score(sample)
        # Line 12: POT threshold update.
        threshold = self.pot.update(confidence)

        fine_tuned = False
        if confidence < threshold and len(self.buffer) >= self.config.min_buffer:
            # Lines 14-16: fine-tune on Γ, then clear it.
            fine_tune(
                self.model,
                list(self.buffer),
                config=self._training_config,
                iterations=self.config.fine_tune_iterations,
                rng=self.rng,
            )
            self.buffer.clear()
            fine_tuned = True

        self.diagnostics.confidences.append(confidence)
        self.diagnostics.thresholds.append(
            threshold if np.isfinite(threshold) else float("nan")
        )
        self.diagnostics.fine_tuned.append(fine_tuned)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """GON parameters + optimiser moments + the Γ buffer."""
        buffer_bytes = sum(
            s.metrics.nbytes + s.schedule.nbytes + s.adjacency.nbytes
            for s in self.buffer
        )
        return self.model.footprint_bytes() + buffer_bytes
