"""Execution-trace collection: the training dataset Λ = {M_t, S_t, G_t}.

To train the GON the paper runs DeFog benchmarks for 1000 five-minute
intervals on the testbed, "periodically chang[ing] the graph topology
every ten intervals" so the dataset covers ~100 distinct topologies
(§IV-D).  :func:`collect_trace` reproduces that protocol on the
co-simulator and :class:`Trace` gives the dataset an npz round-trip.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..config import ExperimentConfig
from .engine import EdgeFederation
from .metrics import M_FEATURES
from .topology import Topology

__all__ = ["TraceSample", "Trace", "collect_trace"]


@dataclass(frozen=True)
class TraceSample:
    """One datapoint (M_t, S_t, G_t) plus its realised QoS."""

    metrics: np.ndarray          # [n_hosts, len(M_FEATURES)]
    schedule: np.ndarray         # [n_hosts, len(S_FEATURES)]
    adjacency: np.ndarray        # [n_hosts, n_hosts]
    #: Realised objective O(M_t) under the run's alpha/beta weights.
    objective: float


@dataclass
class Trace:
    """The dataset Λ: a sequence of trace samples."""

    samples: List[TraceSample] = field(default_factory=list)
    n_topologies: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> TraceSample:
        return self.samples[index]

    # ------------------------------------------------------------------
    def as_arrays(self) -> dict:
        """Stack the trace into dense arrays for training."""
        if not self.samples:
            raise ValueError("trace is empty")
        return {
            "metrics": np.stack([s.metrics for s in self.samples]),
            "schedule": np.stack([s.schedule for s in self.samples]),
            "adjacency": np.stack([s.adjacency for s in self.samples]),
            "objective": np.array([s.objective for s in self.samples]),
        }

    def save(self, path: str) -> None:
        """Persist as npz."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        arrays = self.as_arrays()
        arrays["n_topologies"] = np.array(self.n_topologies)
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "Trace":
        with np.load(path) as archive:
            metrics = archive["metrics"]
            schedule = archive["schedule"]
            adjacency = archive["adjacency"]
            objective = archive["objective"]
            n_topologies = int(archive["n_topologies"])
        samples = [
            TraceSample(
                metrics=metrics[i],
                schedule=schedule[i],
                adjacency=adjacency[i],
                objective=float(objective[i]),
            )
            for i in range(metrics.shape[0])
        ]
        return cls(samples=samples, n_topologies=n_topologies)


def collect_trace(
    config: ExperimentConfig,
    n_intervals: Optional[int] = None,
    topology_mutator: Optional[Callable[[Topology, np.random.Generator], Topology]] = None,
    mutate_every: int = 10,
) -> Trace:
    """Run the simulator and record Λ.

    Parameters
    ----------
    config:
        Experiment configuration; the paper uses the DeFog suite here.
    n_intervals:
        Trace length (paper: 1000); defaults to ``config.n_intervals``.
    topology_mutator:
        Callable applying a random topology change (the experiments
        wire in a random node-shift from ``repro.core.nodeshift``).
        ``None`` keeps the topology fixed.
    mutate_every:
        Apply the mutator every this many intervals (paper: 10).
    """
    n_intervals = n_intervals or config.n_intervals
    federation = EdgeFederation(config)
    mutation_rng = np.random.default_rng(config.seed + 9999)
    trace = Trace()
    seen_topologies = set()

    for t in range(n_intervals):
        federation.begin_interval()
        proposal = federation.propose_topology()
        if topology_mutator is not None and t > 0 and t % mutate_every == 0:
            proposal = topology_mutator(proposal, mutation_rng)
        federation.set_topology(proposal)
        metrics = federation.run_interval()
        seen_topologies.add(metrics.topology.canonical_key())

        energy = float(metrics.host_metrics[:, M_FEATURES.index("energy_norm")].sum())
        slo = float(metrics.host_metrics[:, M_FEATURES.index("slo_rate")].sum())
        objective = config.alpha * energy + config.beta * slo
        trace.samples.append(
            TraceSample(
                metrics=metrics.host_metrics.copy(),
                schedule=metrics.schedule_encoding.copy(),
                adjacency=metrics.topology.adjacency(),
                objective=objective,
            )
        )

    trace.n_topologies = len(seen_topologies)
    return trace
