"""``repro.simulator`` -- COSCO-style co-simulator of an edge federation.

Substitutes the paper's 16-node Raspberry-Pi testbed (see DESIGN.md):
heterogeneous Pi-4B host models with measured power curves, a broker-
worker topology over LEIs, distance-derived network latencies, mobile
gateways, DeFog/AIoTBench workload generators, the four-attack fault
injector, quorum failure detection, reboot recovery and a GOBI-style
underlying scheduler, all driven in five-minute scheduling intervals.
"""

from .detection import DetectionProtocol, FailureReport
from .engine import EdgeFederation, SystemView
from .faults import AttackEvent, FaultInjector
from .gateway import Gateway, GatewayFleet
from .host import Host, HostSpec, RESOURCES, make_pi_cluster
from .metrics import (
    IntervalMetrics,
    M_FEATURES,
    RunMetrics,
    S_FEATURES,
    encode_host_metrics,
    encode_schedule,
)
from .network import NetworkModel
from .power import InterpolatedPowerModel, LinearPowerModel, PI4B_POWER, PowerModel
from .recovery import ensure_brokered, reattach_recovered, strip_failed
from .scheduler import (
    GOBIScheduler,
    LeastUtilScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulingDecision,
)
from .task import Task, TaskSpec
from .topology import Topology, initial_topology
from .trace import Trace, TraceSample, collect_trace
from .workloads import (
    AIOT_PROFILES,
    ApplicationProfile,
    DEFOG_PROFILES,
    WorkloadGenerator,
    make_aiot_generator,
    make_defog_generator,
    make_generator,
)

__all__ = [
    "EdgeFederation",
    "SystemView",
    "DetectionProtocol",
    "FailureReport",
    "FaultInjector",
    "AttackEvent",
    "Gateway",
    "GatewayFleet",
    "Host",
    "HostSpec",
    "RESOURCES",
    "make_pi_cluster",
    "IntervalMetrics",
    "RunMetrics",
    "M_FEATURES",
    "S_FEATURES",
    "encode_host_metrics",
    "encode_schedule",
    "NetworkModel",
    "PowerModel",
    "LinearPowerModel",
    "InterpolatedPowerModel",
    "PI4B_POWER",
    "ensure_brokered",
    "reattach_recovered",
    "strip_failed",
    "Scheduler",
    "SchedulingDecision",
    "GOBIScheduler",
    "LeastUtilScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "Task",
    "TaskSpec",
    "Topology",
    "initial_topology",
    "Trace",
    "TraceSample",
    "collect_trace",
    "WorkloadGenerator",
    "ApplicationProfile",
    "DEFOG_PROFILES",
    "AIOT_PROFILES",
    "make_defog_generator",
    "make_aiot_generator",
    "make_generator",
]
