"""``repro.simulator`` -- COSCO-style co-simulator of an edge federation.

Substitutes the paper's 16-node Raspberry-Pi testbed (see DESIGN.md):
heterogeneous Pi-4B host models with measured power curves, a broker-
worker topology over LEIs, distance-derived network latencies, mobile
gateways, DeFog/AIoTBench workload generators, the four-attack fault
injector, quorum failure detection, reboot recovery and a GOBI-style
underlying scheduler, all driven in five-minute scheduling intervals.
"""

from .detection import DetectionProtocol, FailureReport
from .engine import EdgeFederation, SystemView
from .faults import (
    FAULT_MODELS,
    ArrivalSurgeModel,
    AttackEvent,
    CascadeAttackModel,
    CorrelatedGroupAttackModel,
    FaultInjector,
    FaultModel,
    PartitionFaultModel,
    PoissonAttackModel,
    build_fault_models,
    default_fault_models,
    register_fault_model,
    validate_fault_model_names,
)
from .gateway import Gateway, GatewayFleet
from .host import HOST_CLASSES, Host, HostSpec, RESOURCES, make_fleet, make_pi_cluster
from .metrics import (
    IntervalMetrics,
    M_FEATURES,
    RunMetrics,
    S_FEATURES,
    encode_host_metrics,
    encode_schedule,
)
from .network import NetworkModel
from .power import (
    InterpolatedPowerModel,
    LinearPowerModel,
    NUC_POWER,
    PI4B_POWER,
    PowerModel,
    XEON_POWER,
)
from .recovery import ensure_brokered, reattach_recovered, strip_failed
from .scheduler import (
    GOBIScheduler,
    LeastUtilScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulingDecision,
)
from .task import Task, TaskSpec
from .topology import Topology, initial_topology
from .trace import Trace, TraceSample, collect_trace
from .workloads import (
    AIOT_PROFILES,
    ApplicationProfile,
    DEFOG_PROFILES,
    WorkloadGenerator,
    make_aiot_generator,
    make_defog_generator,
    make_generator,
)

__all__ = [
    "EdgeFederation",
    "SystemView",
    "DetectionProtocol",
    "FailureReport",
    "FaultInjector",
    "FaultModel",
    "PoissonAttackModel",
    "CorrelatedGroupAttackModel",
    "CascadeAttackModel",
    "PartitionFaultModel",
    "ArrivalSurgeModel",
    "FAULT_MODELS",
    "register_fault_model",
    "validate_fault_model_names",
    "build_fault_models",
    "default_fault_models",
    "AttackEvent",
    "Gateway",
    "GatewayFleet",
    "Host",
    "HostSpec",
    "HOST_CLASSES",
    "RESOURCES",
    "make_pi_cluster",
    "make_fleet",
    "IntervalMetrics",
    "RunMetrics",
    "M_FEATURES",
    "S_FEATURES",
    "encode_host_metrics",
    "encode_schedule",
    "NetworkModel",
    "PowerModel",
    "LinearPowerModel",
    "InterpolatedPowerModel",
    "PI4B_POWER",
    "NUC_POWER",
    "XEON_POWER",
    "ensure_brokered",
    "reattach_recovered",
    "strip_failed",
    "Scheduler",
    "SchedulingDecision",
    "GOBIScheduler",
    "LeastUtilScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "Task",
    "TaskSpec",
    "Topology",
    "initial_topology",
    "Trace",
    "TraceSample",
    "collect_trace",
    "WorkloadGenerator",
    "ApplicationProfile",
    "DEFOG_PROFILES",
    "AIOT_PROFILES",
    "make_defog_generator",
    "make_aiot_generator",
    "make_generator",
]
