"""Broker failure detection (§IV-G).

On the testbed every broker pings every other broker each 30 s (five
ICMP packets, 10 s timeout) and runs a signed-log audit on responders;
a broker reported unresponsive by *all* of its peers is declared
compromised.  We reproduce the decision-visible behaviour: which nodes
are flagged at an interval boundary and how much detection latency the
protocol contributes to LEI downtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .host import Host
from .topology import Topology

__all__ = ["FailureReport", "DetectionProtocol"]


@dataclass(frozen=True)
class FailureReport:
    """Outcome of the liveness protocol at an interval boundary."""

    interval: int
    failed_brokers: Tuple[int, ...]
    failed_workers: Tuple[int, ...]
    #: Seconds between the failure and its detection (ping period plus
    #: timeout), charged as additional downtime for the orphaned LEI.
    detection_delay_seconds: float
    #: Brokers that responded to pings but failed the audit check
    #: (byzantine-but-responsive); treated as failed.
    audit_failures: Tuple[int, ...] = ()

    @property
    def any_broker_failed(self) -> bool:
        return bool(self.failed_brokers)

    @property
    def all_failed(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.failed_brokers) | set(self.failed_workers)))


class DetectionProtocol:
    """Quorum ping + audit detection.

    Parameters
    ----------
    ping_period_seconds / timeout_seconds:
        Protocol constants from §IV-G (30 s and 10 s).
    audit_failure_probability:
        Chance that an *alive but attacked* broker fails its audit and
        is treated as compromised -- byzantine misbehaviour that pure
        liveness checks would miss.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        ping_period_seconds: float = 30.0,
        timeout_seconds: float = 10.0,
        audit_failure_probability: float = 0.05,
    ) -> None:
        if ping_period_seconds <= 0 or timeout_seconds <= 0:
            raise ValueError("protocol periods must be positive")
        if not 0.0 <= audit_failure_probability <= 1.0:
            raise ValueError("audit_failure_probability must be in [0, 1]")
        self.rng = rng
        self.ping_period_seconds = ping_period_seconds
        self.timeout_seconds = timeout_seconds
        self.audit_failure_probability = audit_failure_probability

    def detect(
        self,
        interval: int,
        topology: Topology,
        hosts: Sequence[Host],
    ) -> FailureReport:
        """Run one detection round against the current host states."""
        host_by_id = {host.host_id: host for host in hosts}
        failed_brokers: List[int] = []
        failed_workers: List[int] = []
        audit_failures: List[int] = []

        for broker in sorted(topology.brokers):
            host = host_by_id[broker]
            if not host.alive:
                # Unresponsive to pings from every peer -> compromised.
                failed_brokers.append(broker)
            elif self._under_attack(host) and (
                self.rng.random() < self.audit_failure_probability
            ):
                # Responsive but the signed-log audit check fails.
                audit_failures.append(broker)
                failed_brokers.append(broker)

        for worker in topology.workers:
            if not host_by_id[worker].alive:
                failed_workers.append(worker)

        # Expected detection latency: uniform failure arrival within a
        # ping period, plus the full timeout before declaring death.
        delay = self.ping_period_seconds / 2.0 + self.timeout_seconds
        return FailureReport(
            interval=interval,
            failed_brokers=tuple(failed_brokers),
            failed_workers=tuple(failed_workers),
            detection_delay_seconds=delay,
            audit_failures=tuple(audit_failures),
        )

    @staticmethod
    def _under_attack(host: Host) -> bool:
        return any(value > 0.0 for value in host.fault_load.values())
