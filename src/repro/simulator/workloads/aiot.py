"""AIoTBench workloads (test/generalisation suite, §V-A).

The paper evaluates on AIoTBench: seven computer-vision applications
named after the networks they run -- three heavy-weight (**ResNet18**,
**ResNet34**, **ResNext32x4d**) and four light-weight (**SqueezeNet**,
**GoogleNet**, **MobileNetV2**, **MnasNet**) -- inferencing over COCO
images.  Chosen by the paper specifically for "volatile utilisation
characteristics and heterogeneous resource requirements", which we
reproduce with wider demand spreads (higher cv) than DeFog and a
heavier drift process.
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationProfile, WorkloadGenerator

__all__ = ["AIOT_PROFILES", "make_aiot_generator", "HEAVY_APPS", "LIGHT_APPS"]

HEAVY_APPS = ("resnet18", "resnet34", "resnext32x4d")
LIGHT_APPS = ("squeezenet", "googlenet", "mobilenetv2", "mnasnet")

AIOT_PROFILES = (
    # Heavy-weight networks: large batches of COCO inference.
    ApplicationProfile(
        name="resnet18",
        mean_mi=300_000.0,
        mean_ram_gb=1.4,
        mean_disk_mb=180.0,
        mean_net_mb=60.0,
        slo_seconds=200.0,
        cv=0.35,
    ),
    ApplicationProfile(
        name="resnet34",
        mean_mi=480_000.0,
        mean_ram_gb=1.9,
        mean_disk_mb=200.0,
        mean_net_mb=60.0,
        slo_seconds=300.0,
        cv=0.35,
    ),
    ApplicationProfile(
        name="resnext32x4d",
        mean_mi=560_000.0,
        mean_ram_gb=2.2,
        mean_disk_mb=220.0,
        mean_net_mb=70.0,
        slo_seconds=340.0,
        cv=0.40,
    ),
    # Light-weight networks: fast, bursty inference streams.
    ApplicationProfile(
        name="squeezenet",
        mean_mi=90_000.0,
        mean_ram_gb=0.5,
        mean_disk_mb=80.0,
        mean_net_mb=40.0,
        slo_seconds=90.0,
        cv=0.30,
    ),
    ApplicationProfile(
        name="googlenet",
        mean_mi=160_000.0,
        mean_ram_gb=0.8,
        mean_disk_mb=100.0,
        mean_net_mb=45.0,
        slo_seconds=130.0,
        cv=0.30,
    ),
    ApplicationProfile(
        name="mobilenetv2",
        mean_mi=110_000.0,
        mean_ram_gb=0.6,
        mean_disk_mb=90.0,
        mean_net_mb=40.0,
        slo_seconds=100.0,
        cv=0.30,
    ),
    ApplicationProfile(
        name="mnasnet",
        mean_mi=100_000.0,
        mean_ram_gb=0.55,
        mean_disk_mb=85.0,
        mean_net_mb=40.0,
        slo_seconds=95.0,
        cv=0.30,
    ),
)


def make_aiot_generator(
    rng: np.random.Generator,
    arrival_rate: float = 1.2,
    drift_scale: float = 0.04,
    jump_probability: float = 0.02,
) -> WorkloadGenerator:
    """Build the AIoTBench bag-of-tasks generator used at test time."""
    return WorkloadGenerator(
        AIOT_PROFILES,
        arrival_rate=arrival_rate,
        rng=rng,
        drift_scale=drift_scale,
        jump_probability=jump_probability,
    )
