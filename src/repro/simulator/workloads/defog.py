"""DeFog benchmark workloads (training suite, §IV-D).

The paper trains the GON on execution traces of three DeFog
applications (McChesney et al., SEC'19): **Yolo** (object detection,
heavy CPU + RAM), **PocketSphinx** (speech-to-text, CPU-bound with
long runs) and **Aeneas** (audio-text alignment, CPU + disk).  The
envelopes below are synthetic but calibrated to the relative demands
reported in the DeFog paper for Pi-class devices; CAROL only observes
the induced utilisation traces, so matching relative shape is what
matters (see DESIGN.md substitution table).
"""

from __future__ import annotations

import numpy as np

from .base import ApplicationProfile, WorkloadGenerator

__all__ = ["DEFOG_PROFILES", "make_defog_generator"]

DEFOG_PROFILES = (
    # Yolo: single-shot CNN detection; ~100s on a Pi at full load,
    # large resident model.
    ApplicationProfile(
        name="yolo",
        mean_mi=380_000.0,
        mean_ram_gb=1.8,
        mean_disk_mb=220.0,
        mean_net_mb=35.0,
        slo_seconds=220.0,
        cv=0.30,
    ),
    # PocketSphinx: long CPU-bound decoding of audio chunks.
    ApplicationProfile(
        name="pocketsphinx",
        mean_mi=520_000.0,
        mean_ram_gb=0.9,
        mean_disk_mb=60.0,
        mean_net_mb=12.0,
        slo_seconds=320.0,
        cv=0.25,
    ),
    # Aeneas: forced alignment; moderate CPU with disk churn.
    ApplicationProfile(
        name="aeneas",
        mean_mi=260_000.0,
        mean_ram_gb=0.6,
        mean_disk_mb=400.0,
        mean_net_mb=20.0,
        slo_seconds=180.0,
        cv=0.25,
    ),
)


def make_defog_generator(
    rng: np.random.Generator,
    arrival_rate: float = 1.2,
    drift_scale: float = 0.02,
    jump_probability: float = 0.01,
) -> WorkloadGenerator:
    """Build the DeFog bag-of-tasks generator used for trace collection."""
    return WorkloadGenerator(
        DEFOG_PROFILES,
        arrival_rate=arrival_rate,
        rng=rng,
        drift_scale=drift_scale,
        jump_probability=jump_probability,
    )
