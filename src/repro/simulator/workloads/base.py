"""Workload generator framework.

Generators produce :class:`~repro.simulator.task.TaskSpec` draws around
per-application envelopes and are explicitly *non-stationary*: demand
statistics drift via a bounded random walk and occasionally jump
regime, reproducing the paper's setting where "statistical moments and
correlations of the workload characteristics are non-stationary and
vary over time" (§I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..task import TaskSpec

__all__ = ["ApplicationProfile", "WorkloadGenerator"]


@dataclass(frozen=True)
class ApplicationProfile:
    """Mean resource envelope for one benchmark application."""

    name: str
    mean_mi: float
    mean_ram_gb: float
    mean_disk_mb: float
    mean_net_mb: float
    slo_seconds: float
    #: Coefficient of variation applied to each demand draw.
    cv: float = 0.25

    def __post_init__(self) -> None:
        if min(self.mean_mi, self.mean_ram_gb, self.mean_disk_mb,
               self.mean_net_mb, self.slo_seconds) < 0:
            raise ValueError("profile means must be non-negative")
        if self.mean_mi <= 0:
            raise ValueError("mean_mi must be positive")
        if not 0 <= self.cv < 1:
            raise ValueError("cv must be in [0, 1)")


class WorkloadGenerator:
    """Poisson bag-of-tasks generator over a set of application profiles.

    Parameters
    ----------
    profiles:
        Application envelopes sampled uniformly at random per task
        (§V-A: "sampled uniformly from the ... applications").
    arrival_rate:
        Poisson rate of new tasks per LEI per interval (paper: 1.2).
    rng:
        Random source.
    drift_scale / jump_probability:
        Non-stationarity knobs: per-interval multiplicative random walk
        on demand means, and the chance of an abrupt regime change.
    """

    def __init__(
        self,
        profiles: Sequence[ApplicationProfile],
        arrival_rate: float,
        rng: np.random.Generator,
        drift_scale: float = 0.02,
        jump_probability: float = 0.01,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one application profile")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.profiles = list(profiles)
        self.arrival_rate = arrival_rate
        self.rng = rng
        self.drift_scale = drift_scale
        self.jump_probability = jump_probability
        #: Multiplicative demand modifier, one per profile (random walk).
        self._regime = np.ones(len(self.profiles))

    # ------------------------------------------------------------------
    def advance_regime(self) -> None:
        """One step of the non-stationary demand process."""
        walk = self.rng.normal(0.0, self.drift_scale, size=len(self.profiles))
        self._regime = np.clip(self._regime * np.exp(walk), 0.4, 2.5)
        if self.rng.random() < self.jump_probability:
            # Regime jump: demand statistics shift abruptly.
            self._regime = np.clip(
                self._regime * self.rng.uniform(0.6, 1.8, size=len(self.profiles)),
                0.4,
                2.5,
            )

    def regime_snapshot(self) -> np.ndarray:
        """Current demand multipliers (read-only copy, used by tests)."""
        return self._regime.copy()

    def tasks_for_interval(
        self, n_leis: int, rate_multiplier: float = 1.0
    ) -> List[TaskSpec]:
        """Draw the new-task bag for one interval across all LEIs.

        ``rate_multiplier`` scales the arrival rate for this interval
        only -- the hook through which flash-crowd surges and diurnal
        load curves modulate the gateway-side arrival process.
        """
        if rate_multiplier < 0:
            raise ValueError("rate_multiplier must be non-negative")
        self.advance_regime()
        total = int(self.rng.poisson(self.arrival_rate * n_leis * rate_multiplier))
        return [self._draw_task() for _ in range(total)]

    # ------------------------------------------------------------------
    def _draw_task(self) -> TaskSpec:
        index = int(self.rng.integers(len(self.profiles)))
        profile = self.profiles[index]
        scale = self._regime[index]

        def noisy(mean: float) -> float:
            if mean == 0:
                return 0.0
            draw = self.rng.normal(1.0, profile.cv)
            return max(mean * scale * draw, mean * 0.1)

        return TaskSpec(
            application=profile.name,
            total_mi=noisy(profile.mean_mi),
            ram_gb=noisy(profile.mean_ram_gb),
            disk_mb=noisy(profile.mean_disk_mb),
            net_mb=noisy(profile.mean_net_mb),
            slo_seconds=profile.slo_seconds,
        )
