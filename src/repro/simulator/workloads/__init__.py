"""Workload suites: DeFog (training) and AIoTBench (evaluation)."""

from .aiot import AIOT_PROFILES, HEAVY_APPS, LIGHT_APPS, make_aiot_generator
from .base import ApplicationProfile, WorkloadGenerator
from .defog import DEFOG_PROFILES, make_defog_generator

__all__ = [
    "ApplicationProfile",
    "WorkloadGenerator",
    "DEFOG_PROFILES",
    "make_defog_generator",
    "AIOT_PROFILES",
    "make_aiot_generator",
    "HEAVY_APPS",
    "LIGHT_APPS",
]


def make_generator(suite: str, rng, arrival_rate: float = 1.2, **kwargs):
    """Factory keyed by suite name (``"defog"`` or ``"aiot"``)."""
    if suite == "defog":
        return make_defog_generator(rng, arrival_rate=arrival_rate, **kwargs)
    if suite == "aiot":
        return make_aiot_generator(rng, arrival_rate=arrival_rate, **kwargs)
    raise ValueError(f"unknown workload suite {suite!r}")
