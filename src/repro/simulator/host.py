"""Edge host models.

The testbed (§IV-C) is 16 Raspberry Pi 4B nodes, 8 with 4 GB RAM and 8
with 8 GB, i.e. heterogeneous in memory while sharing the same SoC.
A :class:`HostSpec` captures static capacities; a :class:`Host` carries
the per-interval runtime state (resident tasks, utilisations, fault
load, liveness).

Beyond the paper's Pi-only fleet, :data:`HOST_CLASSES` names additional
edge host classes (Intel-NUC mini PCs and a Xeon edge server) so that
scenarios can exercise genuinely heterogeneous federations;
:func:`make_fleet` builds a fleet from a ``(class, count)`` composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .power import NUC_POWER, PI4B_POWER, XEON_POWER, PowerModel

__all__ = [
    "HostSpec",
    "Host",
    "make_pi_cluster",
    "make_fleet",
    "HOST_CLASSES",
    "RESOURCES",
]

#: Resource axes tracked per host (order used in metric matrices).
RESOURCES = ("cpu", "ram", "disk", "net")


@dataclass(frozen=True)
class HostSpec:
    """Static description of an edge node."""

    name: str
    #: Aggregate compute capacity in MIPS (millions of instructions/s).
    cpu_mips: float
    ram_gb: float
    #: Sequential disk bandwidth in MB/s (SD card class).
    disk_mbps: float
    #: Network bandwidth in Mbit/s.
    net_mbps: float
    power_model: PowerModel = PI4B_POWER

    def __post_init__(self) -> None:
        for attr in ("cpu_mips", "ram_gb", "disk_mbps", "net_mbps"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


#: Pi 4B, 4 GB variant: 4x Cortex-A72 @ 1.5 GHz.
PI4B_4GB = HostSpec(name="pi4b-4gb", cpu_mips=4000.0, ram_gb=4.0,
                    disk_mbps=40.0, net_mbps=1000.0)
#: Pi 4B, 8 GB variant.
PI4B_8GB = HostSpec(name="pi4b-8gb", cpu_mips=4000.0, ram_gb=8.0,
                    disk_mbps=40.0, net_mbps=1000.0)
#: Intel NUC mini PC: 4-core i5, 16 GB RAM, NVMe storage.
NUC_I5 = HostSpec(name="nuc-i5", cpu_mips=24000.0, ram_gb=16.0,
                  disk_mbps=450.0, net_mbps=1000.0,
                  power_model=NUC_POWER)
#: Single-socket Xeon edge server: 8 cores, 64 GB RAM, 10 GbE.
XEON_EDGE = HostSpec(name="xeon-edge", cpu_mips=80000.0, ram_gb=64.0,
                     disk_mbps=900.0, net_mbps=10000.0,
                     power_model=XEON_POWER)

#: Host classes available to scenario fleet compositions.
HOST_CLASSES: Dict[str, HostSpec] = {
    "pi4b-4gb": PI4B_4GB,
    "pi4b-8gb": PI4B_8GB,
    "nuc": NUC_I5,
    "xeon": XEON_EDGE,
}


class Host:
    """Runtime state of a single edge node.

    Utilisation on each axis is the ratio of aggregate demand to
    capacity; values above 1.0 represent contention (demands are then
    served proportionally slower).  ``fault_load`` holds extra synthetic
    demand injected by the fault module, and ``management_load`` the
    CPU/RAM cost of running broker software (scheduler, resilience
    model) on this node.
    """

    def __init__(self, host_id: int, spec: HostSpec) -> None:
        self.host_id = host_id
        self.spec = spec
        self.alive = True
        #: Seconds of the current interval lost to being rebooted.
        self.downtime_seconds = 0.0
        #: Remaining reboot time if the node crashed (0 when healthy).
        self.reboot_remaining = 0.0
        #: Extra demand per resource axis injected by attacks.
        self.fault_load: Dict[str, float] = {axis: 0.0 for axis in RESOURCES}
        #: Broker-software demand (cpu fraction, ram GB).
        self.management_cpu = 0.0
        self.management_ram_gb = 0.0
        #: Task ids resident this interval (set by the engine).
        self.task_ids: List[int] = []
        #: Last computed utilisations, exposed to the metrics layer.
        self.utilisation: Dict[str, float] = {axis: 0.0 for axis in RESOURCES}

    # ------------------------------------------------------------------
    def capacity(self, axis: str) -> float:
        """Capacity along one resource axis in that axis' native unit."""
        if axis == "cpu":
            return self.spec.cpu_mips
        if axis == "ram":
            return self.spec.ram_gb
        if axis == "disk":
            return self.spec.disk_mbps
        if axis == "net":
            return self.spec.net_mbps
        raise KeyError(f"unknown resource axis {axis!r}")

    def compute_utilisation(self, demand: Dict[str, float]) -> Dict[str, float]:
        """Combine task demand, fault load and management load.

        ``demand`` maps each axis to the aggregate task demand in native
        units.  Fault load is expressed as a utilisation fraction and
        added directly; management CPU likewise.
        """
        utilisation = {}
        for axis in RESOURCES:
            base = demand.get(axis, 0.0) / self.capacity(axis)
            base += self.fault_load[axis]
            if axis == "cpu":
                base += self.management_cpu
            elif axis == "ram":
                base += self.management_ram_gb / self.spec.ram_gb
            utilisation[axis] = base
        self.utilisation = utilisation
        return utilisation

    def is_overloaded(self, threshold: float = 1.0) -> bool:
        """True if any axis exceeds ``threshold`` (failure condition)."""
        return any(value > threshold for value in self.utilisation.values())

    def crash(self, reboot_seconds: float) -> None:
        """Mark the node unresponsive; it reboots for ``reboot_seconds``."""
        self.alive = False
        self.reboot_remaining = reboot_seconds

    def advance_reboot(self, seconds: float) -> bool:
        """Progress a reboot by ``seconds``; returns True when back up."""
        if self.alive:
            return True
        self.downtime_seconds += min(seconds, self.reboot_remaining)
        self.reboot_remaining -= seconds
        if self.reboot_remaining <= 0:
            self.alive = True
            self.reboot_remaining = 0.0
            # A rebooted node restores from its last snapshot with
            # fault load cleared (recoverable-failure assumption, §III-A).
            self.fault_load = {axis: 0.0 for axis in RESOURCES}
            return True
        return False

    def reset_interval(self) -> None:
        """Clear per-interval transient state."""
        self.downtime_seconds = 0.0
        self.task_ids = []

    def power_watts(self) -> float:
        """Instantaneous power draw at current utilisation."""
        return self.spec.power_model.watts(self.utilisation["cpu"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "down"
        return f"Host(#{self.host_id} {self.spec.name} {status})"


def make_pi_cluster(n_hosts: int, n_large: int) -> List[Host]:
    """Build the heterogeneous Pi cluster of the testbed.

    The first ``n_large`` hosts are the 8 GB variant (the paper places
    initial brokers on 8 GB nodes), the rest 4 GB.
    """
    if not 0 <= n_large <= n_hosts:
        raise ValueError("n_large out of range")
    hosts = []
    for host_id in range(n_hosts):
        spec = PI4B_8GB if host_id < n_large else PI4B_4GB
        hosts.append(Host(host_id, spec))
    return hosts


def make_fleet(composition: Sequence[Tuple[str, int]]) -> List[Host]:
    """Build a heterogeneous fleet from ``(host_class, count)`` pairs.

    Host ids run contiguously in composition order, so same-class hosts
    form contiguous "racks" -- the unit targeted by correlated fault
    models.  Scenario conventions place the beefier broker-capable
    classes first, mirroring the paper's 8 GB-nodes-first layout.
    """
    hosts: List[Host] = []
    for class_name, count in composition:
        spec = HOST_CLASSES.get(class_name)
        if spec is None:
            raise ValueError(
                f"unknown host class {class_name!r}; "
                f"known: {sorted(HOST_CLASSES)}"
            )
        if count < 1:
            raise ValueError(f"host class {class_name!r} count must be >= 1")
        for _ in range(count):
            hosts.append(Host(len(hosts), spec))
    if len(hosts) < 2:
        raise ValueError("a fleet needs at least two hosts")
    return hosts
