"""Metric collection and the canonical per-host feature encoding.

The paper's model consumes, per host ``i``, the vector
``M_i = [u_i, q_i, t_i]`` (§IV-A): resource utilisations ``u_i`` (CPU,
RAM, disk, network), QoS metrics ``q_i`` (energy, SLO violation rate)
and aggregate task demands ``t_i`` (with SLO deadlines).  The
scheduling decision ``S`` is a task-to-host one-hot matrix, which we
aggregate per host so every encoding stays agnostic to the task count.

These encodings are *simulator-level* (raw observables); the GON and
baseline surrogates assemble their own inputs from them in
``repro.core.features``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .detection import FailureReport
from .host import RESOURCES, Host
from .scheduler import SchedulingDecision
from .task import Task
from .topology import Topology

__all__ = [
    "M_FEATURES",
    "S_FEATURES",
    "IntervalMetrics",
    "RunMetrics",
    "encode_host_metrics",
    "encode_schedule",
]

#: Columns of the per-host metric matrix M.
M_FEATURES = (
    "cpu_util",
    "ram_util",
    "disk_util",
    "net_util",
    "energy_norm",
    "slo_rate",
    "n_tasks_norm",
    "task_cpu_norm",
    "task_ram_norm",
    "task_deadline_norm",
)

#: Columns of the per-host schedule encoding S.
S_FEATURES = ("new_tasks_norm", "active_tasks_norm", "incoming_mi_norm")

#: Normalisation constants.
_TASK_COUNT_SCALE = 10.0
_DEADLINE_SCALE = 600.0


@dataclass
class IntervalMetrics:
    """Everything observed during one scheduling interval."""

    interval: int
    topology: Topology
    #: Per-host metric matrix, shape [n_hosts, len(M_FEATURES)].
    host_metrics: np.ndarray
    #: Per-host schedule encoding, shape [n_hosts, len(S_FEATURES)].
    schedule_encoding: np.ndarray
    #: Total energy drawn this interval (kWh).
    energy_kwh: float
    #: Response times of tasks completed this interval (seconds).
    response_times: List[float] = field(default_factory=list)
    #: SLO violation flags aligned with ``response_times``.
    slo_violations: List[bool] = field(default_factory=list)
    n_active_tasks: int = 0
    n_new_tasks: int = 0
    failure_report: Optional[FailureReport] = None
    #: Seconds of resilience downtime suffered by orphaned LEIs.
    downtime_seconds: float = 0.0
    #: Attack events injected this interval.
    attacks: Tuple = ()

    @property
    def n_completed(self) -> int:
        return len(self.response_times)

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return float(np.mean(self.response_times))

    @property
    def slo_violation_rate(self) -> float:
        if not self.slo_violations:
            return 0.0
        return float(np.mean(self.slo_violations))


@dataclass
class RunMetrics:
    """Aggregates over a full experiment run (the Fig. 5 metrics)."""

    intervals: List[IntervalMetrics] = field(default_factory=list)
    #: Wall-clock seconds spent in resilience decisions, per interval.
    decision_times: List[float] = field(default_factory=list)
    #: Wall-clock seconds spent fine-tuning models, per interval.
    fine_tune_times: List[float] = field(default_factory=list)
    #: Resident memory of the resilience model (bytes).
    model_memory_bytes: int = 0

    def add(self, metrics: IntervalMetrics) -> None:
        self.intervals.append(metrics)

    # -- Fig. 5(a): total energy -------------------------------------
    @property
    def total_energy_kwh(self) -> float:
        return float(sum(m.energy_kwh for m in self.intervals))

    # -- Fig. 5(b): mean response time -------------------------------
    @property
    def mean_response_time(self) -> float:
        times = [t for m in self.intervals for t in m.response_times]
        return float(np.mean(times)) if times else 0.0

    # -- Fig. 5(c): SLO violation rate --------------------------------
    @property
    def slo_violation_rate(self) -> float:
        flags = [v for m in self.intervals for v in m.slo_violations]
        return float(np.mean(flags)) if flags else 0.0

    # -- Fig. 5(d): mean decision time --------------------------------
    @property
    def mean_decision_time(self) -> float:
        return float(np.mean(self.decision_times)) if self.decision_times else 0.0

    # -- Fig. 5(f): total fine-tuning overhead ------------------------
    @property
    def total_fine_tune_seconds(self) -> float:
        return float(sum(self.fine_tune_times))

    # -- Fig. 5(e): memory consumption as % of an 8 GB broker ---------
    def memory_percent(self, node_ram_gb: float = 8.0) -> float:
        return 100.0 * self.model_memory_bytes / (node_ram_gb * 1024 ** 3)

    @property
    def n_completed(self) -> int:
        return sum(m.n_completed for m in self.intervals)

    @property
    def total_downtime_seconds(self) -> float:
        return float(sum(m.downtime_seconds for m in self.intervals))

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline metrics (one Fig. 5 bar group)."""
        return {
            "energy_kwh": self.total_energy_kwh,
            "response_time_s": self.mean_response_time,
            "slo_violation_rate": self.slo_violation_rate,
            "decision_time_s": self.mean_decision_time,
            "memory_percent": self.memory_percent(),
            "fine_tune_overhead_s": self.total_fine_tune_seconds,
            "completed_tasks": float(self.n_completed),
            "downtime_s": self.total_downtime_seconds,
        }


def encode_host_metrics(
    hosts: Sequence[Host],
    tasks_by_host: Dict[int, List[Task]],
    energy_joules_by_host: np.ndarray,
    slo_rate_by_host: np.ndarray,
    interval_seconds: float,
) -> np.ndarray:
    """Build the per-host metric matrix ``M`` (eq. 3's input)."""
    n_hosts = len(hosts)
    matrix = np.zeros((n_hosts, len(M_FEATURES)))
    for row, host in enumerate(hosts):
        utilisation = host.utilisation
        resident = tasks_by_host.get(host.host_id, [])
        peak_joules = host.spec.power_model.watts(1.0) * interval_seconds
        matrix[row, 0:4] = [utilisation[axis] for axis in RESOURCES]
        matrix[row, 4] = energy_joules_by_host[row] / max(peak_joules, 1e-9)
        matrix[row, 5] = slo_rate_by_host[row]
        matrix[row, 6] = len(resident) / _TASK_COUNT_SCALE
        if resident:
            capacity_mi = host.spec.cpu_mips * interval_seconds
            matrix[row, 7] = float(
                np.mean([t.remaining_mi for t in resident])
            ) / max(capacity_mi, 1e-9)
            matrix[row, 8] = float(
                np.mean([t.spec.ram_gb for t in resident])
            ) / host.spec.ram_gb
            matrix[row, 9] = float(
                np.mean([t.spec.slo_seconds for t in resident])
            ) / _DEADLINE_SCALE
    return matrix


def encode_schedule(
    decision: SchedulingDecision,
    tasks: Sequence[Task],
    new_task_ids: set,
    hosts: Sequence[Host],
    interval_seconds: float,
) -> np.ndarray:
    """Aggregate the one-hot schedule matrix ``S`` per host.

    The paper encodes ``S`` as a [p x |H|] one-hot matrix; summing the
    rows per host (split into new/active, plus incoming work volume)
    preserves the information the surrogate needs while keeping the
    encoding independent of the task count ``p``.
    """
    index_of = {host.host_id: i for i, host in enumerate(hosts)}
    matrix = np.zeros((len(hosts), len(S_FEATURES)))
    task_by_id = {task.task_id: task for task in tasks}
    for task_id, host_id in decision.placements.items():
        row = index_of.get(host_id)
        task = task_by_id.get(task_id)
        if row is None or task is None:
            continue
        host = hosts[row]
        if task_id in new_task_ids:
            matrix[row, 0] += 1.0 / _TASK_COUNT_SCALE
        else:
            matrix[row, 1] += 1.0 / _TASK_COUNT_SCALE
        capacity_mi = host.spec.cpu_mips * interval_seconds
        matrix[row, 2] += task.remaining_mi / max(capacity_mi, 1e-9)
    return matrix
