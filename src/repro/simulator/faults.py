"""Fault-injection module (§IV-F) with pluggable fault models.

The paper's injector reimplements the observable behaviour of the
container-cloud fault injector of Ye et al.: four attack types --
**CPU overload** (hog application), **RAM contention** (continuous
read/write), **Disk attack** (IOZone-style bandwidth consumption) and
**DDOS attack** (HTTP connection floods contending the NIC) -- arriving
as a Poisson process with rate ``lambda_f = 0.5`` per interval, the
attack drawn uniformly at random.  That process is
:class:`PoissonAttackModel` here.

Scenario diversity demands richer failure regimes, so the injector now
drives a list of :class:`FaultModel` plugins:

* :class:`CorrelatedGroupAttackModel` -- rack-level correlated attacks:
  one event stresses a whole contiguous block of hosts simultaneously
  (shared power feed / top-of-rack switch failure domain).
* :class:`CascadeAttackModel` -- overload cascades: neighbours of a
  host that failed last interval inherit part of its load and may be
  driven over the failure threshold themselves.
* :class:`PartitionFaultModel` -- network partitions: a fraction of the
  live fleet is cut off at once, manifesting (per the paper's §III-A
  fault class) as saturating network contention on the severed group.
* :class:`ArrivalSurgeModel` -- gateway-side flash crowds: no host is
  attacked, but the task arrival rate is multiplied for a few
  intervals, overloading the federation from the workload side.

Every host-directed attack manifests as resource over-utilisation on
its target (the paper restricts attention to exactly this fault class,
§III-A); a node whose utilisation crosses the failure threshold becomes
byzantine-unresponsive and must reboot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..config import FaultConfig
from .host import RESOURCES, Host
from .topology import Topology

__all__ = [
    "AttackEvent",
    "FaultModel",
    "FAULT_MODELS",
    "register_fault_model",
    "validate_fault_model_names",
    "PoissonAttackModel",
    "CorrelatedGroupAttackModel",
    "CascadeAttackModel",
    "PartitionFaultModel",
    "ArrivalSurgeModel",
    "build_fault_models",
    "default_fault_models",
    "FaultInjector",
]

#: Resource axis stressed by each attack type.
ATTACK_AXIS = {
    "cpu_overload": "cpu",
    "ram_contention": "ram",
    "disk_attack": "disk",
    "ddos_attack": "net",
}

#: Injected extra utilisation range per attack (fraction of capacity).
ATTACK_INTENSITY = {
    "cpu_overload": (0.5, 1.1),
    "ram_contention": (0.5, 1.0),
    "disk_attack": (0.6, 1.3),
    "ddos_attack": (0.6, 1.3),
}

#: Net-axis load placed on every host severed by a partition; above any
#: sane failure threshold, so the group reliably drops out together.
PARTITION_INTENSITY = 2.0


@dataclass(frozen=True)
class AttackEvent:
    """One injected fault event.

    ``target`` is a host id, or ``-1`` for fleet-wide events (arrival
    surges) that stress no individual node.  ``model`` names the fault
    model that produced the event, letting analyses separate the
    baseline Poisson process from scenario-specific campaigns.
    """

    interval: int
    target: int
    attack_type: str
    axis: str
    intensity: float
    #: Number of intervals the synthetic load persists.
    duration: int
    #: Which fault model produced the event.  Required: every emitter
    #: must attribute its events, so telemetry and fuzzer reports never
    #: misfile a partition or surge under the Poisson baseline.
    model: str


class FaultModel:
    """One source of fault events; the injector drives a list of these.

    Models share the injector's RNG and are sampled in registration
    order, keeping a run's random stream deterministic for a fixed
    model list.  ``sample`` may inspect the injector (e.g. for the
    neighbours of recently failed hosts); ``decay`` ages any internal
    state once per interval; ``arrival_multiplier`` lets workload-side
    models modulate the gateway arrival process.

    Registered models (see :func:`register_fault_model`) additionally
    implement two classmethods consumed by :func:`build_fault_models`:
    ``enabled(config)`` says whether a :class:`FaultConfig` switches
    the model on in auto mode, and ``from_config(config, broker_bias)``
    constructs an instance from that config unconditionally.
    """

    name = "fault"

    def sample(
        self,
        interval: int,
        topology: Topology,
        hosts: Sequence[Host],
        injector: "FaultInjector",
    ) -> List[AttackEvent]:
        return []

    def decay(self) -> None:
        """Advance internal state by one interval."""

    def arrival_multiplier(self) -> float:
        """Factor applied to the gateway arrival rate this interval."""
        return 1.0

    @classmethod
    def enabled(cls, config: FaultConfig) -> bool:
        """Whether ``config`` switches this model on in auto mode."""
        raise NotImplementedError(f"{cls.__name__} defines no enabled()")

    @classmethod
    def from_config(
        cls, config: FaultConfig, broker_bias: float = 0.6
    ) -> "FaultModel":
        """Construct an instance from ``config`` (unconditionally)."""
        raise NotImplementedError(f"{cls.__name__} defines no from_config()")


#: Named fault-model registry: ``name`` -> model class.  Insertion
#: order is sampling order in auto mode, and it deliberately mirrors
#: the historical ``default_fault_models`` construction order
#: (poisson, correlated, cascade, partition, surge) so existing runs
#: keep their random streams bit-identical.
FAULT_MODELS: Dict[str, type] = {}


def register_fault_model(cls: type) -> type:
    """Class decorator: add a :class:`FaultModel` subclass by name.

    Specs reference these names declaratively through
    ``FaultConfig.models``; unknown or duplicate names fail loudly at
    registration / spec-compile time rather than mid-run.
    """
    name = getattr(cls, "name", "")
    if not name or name == FaultModel.name:
        raise ValueError(f"{cls.__name__} must declare a distinct name")
    existing = FAULT_MODELS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"fault model {name!r} already registered by {existing.__name__}"
        )
    FAULT_MODELS[name] = cls
    return cls


def validate_fault_model_names(names: Sequence[str]) -> None:
    """Reject unknown or duplicate fault-model names, loudly.

    Called from ``ScenarioSpec.__post_init__`` so a typo in a spec's
    ``faults.models`` surfaces when the spec is built, not halfway
    through a campaign.
    """
    seen = set()
    for name in names:
        if name not in FAULT_MODELS:
            raise ValueError(
                f"unknown fault model {name!r}; "
                f"registered: {sorted(FAULT_MODELS)}"
            )
        if name in seen:
            raise ValueError(f"duplicate fault model {name!r}")
        seen.add(name)


def _live_hosts(topology: Topology, hosts: Sequence[Host]) -> List[int]:
    return [h.host_id for h in hosts if h.alive and h.host_id in topology.attached]


@register_fault_model
class PoissonAttackModel(FaultModel):
    """The paper's baseline process: independent uniform attacks.

    ``broker_bias`` is the probability that an attack targets a broker
    rather than an arbitrary host; the paper's experiments direct
    attacks so as to cause *broker* byzantine failures, which this
    reproduces while still exercising worker-failure paths.
    """

    name = "poisson"

    def __init__(
        self,
        rate: float,
        attack_types: Sequence[str],
        broker_bias: float = 0.6,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if not 0.0 <= broker_bias <= 1.0:
            raise ValueError("broker_bias must be in [0, 1]")
        self.rate = rate
        self.attack_types = tuple(attack_types)
        self.broker_bias = broker_bias

    @classmethod
    def enabled(cls, config: FaultConfig) -> bool:
        return config.rate > 0

    @classmethod
    def from_config(cls, config, broker_bias=0.6):
        return cls(config.rate, config.attack_types, broker_bias)

    def sample(self, interval, topology, hosts, injector):
        rng = injector.rng
        events: List[AttackEvent] = []
        n_attacks = int(rng.poisson(self.rate))
        live = _live_hosts(topology, hosts)
        if not live:
            return events
        live_brokers = [h for h in live if h in topology.brokers]
        for _ in range(n_attacks):
            attack_type = str(rng.choice(self.attack_types))
            axis = ATTACK_AXIS[attack_type]
            low, high = ATTACK_INTENSITY[attack_type]
            intensity = float(rng.uniform(low, high))
            if live_brokers and rng.random() < self.broker_bias:
                target = int(rng.choice(live_brokers))
            else:
                target = int(rng.choice(live))
            duration = int(rng.integers(1, 3))  # 1 or 2 intervals
            events.append(AttackEvent(
                interval, target, attack_type, axis, intensity, duration,
                model=self.name,
            ))
        return events


@register_fault_model
class CorrelatedGroupAttackModel(FaultModel):
    """Rack-level correlated attacks.

    Hosts are grouped into contiguous racks of ``group_size`` by id
    (fleet compositions lay same-class hosts out contiguously, so a
    rack is also physically meaningful).  One event draws a single
    attack type and intensity and applies it to every live host of a
    randomly chosen rack -- the shared-failure-domain outages (power
    feed, top-of-rack switch) stressed by the resilient-edge-federation
    literature.
    """

    name = "correlated"

    def __init__(
        self,
        rate: float,
        group_size: int,
        attack_types: Sequence[str],
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.rate = rate
        self.group_size = group_size
        self.attack_types = tuple(attack_types)

    @classmethod
    def enabled(cls, config: FaultConfig) -> bool:
        return config.correlated_rate > 0

    @classmethod
    def from_config(cls, config, broker_bias=0.6):
        return cls(
            config.correlated_rate,
            config.correlated_group_size,
            config.attack_types,
        )

    def sample(self, interval, topology, hosts, injector):
        rng = injector.rng
        events: List[AttackEvent] = []
        n_events = int(rng.poisson(self.rate))
        if n_events == 0:
            return events
        live = _live_hosts(topology, hosts)
        if not live:
            return events
        for _ in range(n_events):
            attack_type = str(rng.choice(self.attack_types))
            axis = ATTACK_AXIS[attack_type]
            low, high = ATTACK_INTENSITY[attack_type]
            # One draw shared by the whole rack: the point of correlation.
            intensity = float(rng.uniform(low, high))
            duration = int(rng.integers(1, 3))
            anchor = int(rng.choice(live))
            rack = anchor // self.group_size
            targets = [h for h in live if h // self.group_size == rack]
            for target in targets:
                events.append(AttackEvent(
                    interval, target, attack_type, axis, intensity, duration,
                    model=self.name,
                ))
        return events


@register_fault_model
class CascadeAttackModel(FaultModel):
    """Overload cascades triggered by neighbour failure.

    When a host fails, its topology neighbours (its broker, its LEI's
    workers, or the remaining broker clique) absorb its orphaned load
    and retry traffic; with probability ``probability`` each neighbour
    is hit by an extra utilisation spike the following interval, which
    can snowball into multi-interval cascading outages -- the failure
    mode the confidence-aware repair loop must damp rather than amplify.
    """

    name = "cascade"

    #: Resource axes a cascade spike can land on (orphaned compute /
    #: state re-replication / retry traffic).
    CASCADE_AXES = ("cpu", "ram", "net")

    def __init__(self, probability: float, intensity: float = 0.8) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        self.probability = probability
        self.intensity = intensity

    @classmethod
    def enabled(cls, config: FaultConfig) -> bool:
        return config.cascade_probability > 0

    @classmethod
    def from_config(cls, config, broker_bias=0.6):
        return cls(config.cascade_probability, config.cascade_intensity)

    def sample(self, interval, topology, hosts, injector):
        rng = injector.rng
        events: List[AttackEvent] = []
        candidates = sorted(injector.recent_failure_neighbors)
        if not candidates:
            return events
        live = set(_live_hosts(topology, hosts))
        for target in candidates:
            if target not in live:
                continue
            if rng.random() >= self.probability:
                continue
            axis = str(rng.choice(self.CASCADE_AXES))
            intensity = float(self.intensity * rng.uniform(0.8, 1.2))
            events.append(AttackEvent(
                interval, target, "cascade_overload", axis, intensity,
                duration=1, model=self.name,
            ))
        return events


@register_fault_model
class PartitionFaultModel(FaultModel):
    """Network partition events.

    A partition severs a random ``fraction`` of the live fleet from the
    rest of the federation for ``duration`` intervals.  Within the
    paper's fault class (resource over-utilisation, §III-A) this
    manifests as saturating network contention on every severed host:
    heartbeats and data transfers time out, the quorum marks the group
    failed, and the resilience model must rebuild the topology from the
    surviving side.
    """

    name = "partition"

    def __init__(self, rate: float, fraction: float, duration: int = 2) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        if duration < 1:
            raise ValueError("duration must be >= 1")
        self.rate = rate
        self.fraction = fraction
        self.duration = duration

    @classmethod
    def enabled(cls, config: FaultConfig) -> bool:
        return config.partition_rate > 0

    @classmethod
    def from_config(cls, config, broker_bias=0.6):
        return cls(
            config.partition_rate,
            config.partition_fraction,
            config.partition_duration,
        )

    def sample(self, interval, topology, hosts, injector):
        rng = injector.rng
        events: List[AttackEvent] = []
        n_events = int(rng.poisson(self.rate))
        if n_events == 0:
            return events
        live = _live_hosts(topology, hosts)
        for _ in range(n_events):
            if len(live) < 2:
                break
            k = max(1, min(int(round(self.fraction * len(live))), len(live) - 1))
            severed = rng.choice(np.asarray(live), size=k, replace=False)
            for target in sorted(int(h) for h in severed):
                events.append(AttackEvent(
                    interval, target, "network_partition", "net",
                    PARTITION_INTENSITY, duration=self.duration,
                    model=self.name,
                ))
        return events


@register_fault_model
class ArrivalSurgeModel(FaultModel):
    """Gateway-side flash crowds.

    A surge event sampled in interval ``t`` multiplies the task arrival
    rate in intervals ``t+1 .. t+duration`` (interval ``t``'s arrivals
    are already drawn when faults are sampled); concurrent surges
    compound.  No host is attacked directly; the federation is
    overloaded through its front door, the workload regime the
    flash-crowd scenarios study.
    """

    name = "surge"

    def __init__(self, rate: float, multiplier: float, duration: int = 1) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if duration < 1:
            raise ValueError("duration must be >= 1")
        self.rate = rate
        self.multiplier = multiplier
        self.duration = duration
        #: Active surges as ``[multiplier, remaining_intervals]``.
        self._active: List[List[float]] = []

    @classmethod
    def enabled(cls, config: FaultConfig) -> bool:
        return config.surge_rate > 0

    @classmethod
    def from_config(cls, config, broker_bias=0.6):
        return cls(
            config.surge_rate, config.surge_multiplier, config.surge_duration
        )

    def sample(self, interval, topology, hosts, injector):
        rng = injector.rng
        events: List[AttackEvent] = []
        n_events = int(rng.poisson(self.rate))
        for _ in range(n_events):
            # +1 because the injection interval's decay consumes one
            # tick before the first post-event arrival draw reads us.
            self._active.append([self.multiplier, float(self.duration) + 1.0])
            events.append(AttackEvent(
                interval, -1, "arrival_surge", "arrival",
                self.multiplier, duration=self.duration, model=self.name,
            ))
        return events

    def decay(self) -> None:
        self._active = [
            [m, ttl - 1.0] for m, ttl in self._active if ttl > 1.0
        ]

    def arrival_multiplier(self) -> float:
        factor = 1.0
        for multiplier, _ttl in self._active:
            factor *= multiplier
        return factor


def build_fault_models(
    config: FaultConfig, broker_bias: float = 0.6
) -> List[FaultModel]:
    """Instantiate the fault models a :class:`FaultConfig` calls for.

    With ``config.models`` empty (**auto mode**, the historical
    behaviour) every registered model whose ``enabled(config)`` says so
    is built, in registry order -- a stock config enables only the
    paper's Poisson process, scenario configs switch on the richer
    campaigns through their rate fields.  With ``config.models`` set,
    exactly those models are built, in the order named, regardless of
    rate gating; unknown names raise.

    If ``config.chaos`` carries compiled schedule rows (see
    :meth:`repro.chaos.schedule.ChaosSchedule.to_rows`), the schedule's
    deterministic :class:`~repro.chaos.schedule.ScheduledFaultModel` is
    appended **last** -- it consumes no RNG, so its position cannot
    perturb the stochastic models' shared random stream.
    """
    models: List[FaultModel] = []
    names = tuple(getattr(config, "models", ()) or ())
    if names:
        validate_fault_model_names(names)
        for name in names:
            models.append(FAULT_MODELS[name].from_config(config, broker_bias))
    else:
        for cls in FAULT_MODELS.values():
            if cls.enabled(config):
                models.append(cls.from_config(config, broker_bias))
    chaos_rows = tuple(getattr(config, "chaos", ()) or ())
    if chaos_rows:
        # Deferred import: repro.chaos depends on this module.
        from ..chaos.schedule import ChaosSchedule

        models.append(ChaosSchedule.from_rows(chaos_rows).compile())
    return models


def default_fault_models(
    config: FaultConfig, broker_bias: float = 0.6
) -> List[FaultModel]:
    """Back-compat alias for :func:`build_fault_models`."""
    return build_fault_models(config, broker_bias)


class FaultInjector:
    """Samples fault events from its models and applies them to hosts.

    Parameters
    ----------
    config:
        Fault process parameters (rates, recovery bounds, threshold).
    rng:
        Random source shared by all models (sampled in model order, so
        a fixed model list keeps runs deterministic).
    broker_bias:
        Broker-targeting probability of the baseline Poisson model.
    models:
        Explicit fault-model list; defaults to
        :func:`build_fault_models` derived from ``config``.
    """

    def __init__(
        self,
        config: FaultConfig,
        rng: np.random.Generator,
        broker_bias: float = 0.6,
        models: Optional[Sequence[FaultModel]] = None,
    ) -> None:
        if not 0.0 <= broker_bias <= 1.0:
            raise ValueError("broker_bias must be in [0, 1]")
        self.config = config
        self.rng = rng
        self.broker_bias = broker_bias
        self.models: List[FaultModel] = (
            list(models) if models is not None
            else build_fault_models(config, broker_bias)
        )
        #: Active attacks, target -> list of (axis, intensity, ttl).
        self._active: Dict[int, List[List]] = {}
        self.history: List[AttackEvent] = []
        #: Live neighbours of hosts that failed in the last interval,
        #: consumed by cascade models.
        self.recent_failure_neighbors: Set[int] = set()

    # ------------------------------------------------------------------
    def inject(self, interval: int, topology: Topology, hosts: Sequence[Host]) -> List[AttackEvent]:
        """Sample this interval's fault events and register them."""
        events: List[AttackEvent] = []
        for model in self.models:
            events.extend(model.sample(interval, topology, hosts, self))
        for event in events:
            self.history.append(event)
            if event.target >= 0 and event.axis in RESOURCES:
                self._active.setdefault(event.target, []).append(
                    [event.axis, event.intensity, event.duration]
                )
        # Cascade triggers are consumed once, by the interval after the
        # failure; clearing here keeps a single outage from re-firing.
        self.recent_failure_neighbors = set()
        return events

    def arrival_multiplier(self) -> float:
        """Combined workload-side multiplier of all active fault events."""
        factor = 1.0
        for model in self.models:
            factor *= model.arrival_multiplier()
        return factor

    def apply_loads(self, hosts: Sequence[Host]) -> None:
        """Write current attack loads into ``host.fault_load``."""
        for host in hosts:
            load = {axis: 0.0 for axis in host.fault_load}
            for axis, intensity, _ttl in self._active.get(host.host_id, []):
                load[axis] += intensity
            host.fault_load = load

    def decay(self) -> None:
        """Age active attacks by one interval; expired ones vanish."""
        for target in list(self._active):
            remaining = []
            for axis, intensity, ttl in self._active[target]:
                if ttl > 1:
                    remaining.append([axis, intensity, ttl - 1])
            if remaining:
                self._active[target] = remaining
            else:
                del self._active[target]
        for model in self.models:
            model.decay()

    def clear_host(self, host_id: int) -> None:
        """Drop attacks on a host (it rebooted to a clean snapshot)."""
        self._active.pop(host_id, None)

    def draw_recovery_seconds(self) -> float:
        """Reboot duration for a crashed node (1-5 minutes, §IV-I)."""
        low, high = self.config.recovery_seconds
        return float(self.rng.uniform(low, high))

    def check_failures(self, hosts: Sequence[Host], topology: Topology) -> List[int]:
        """Crash hosts whose utilisation exceeds the failure threshold.

        Returns the ids of hosts that became unresponsive.  Utilisation
        must already have been computed for the interval.  The topology
        neighbours of every newly failed host are recorded for the
        cascade models to sample next interval.
        """
        failed = []
        threshold = self.config.failure_threshold
        for host in hosts:
            if not host.alive or host.host_id not in topology.attached:
                continue
            if host.is_overloaded(threshold):
                host.crash(self.draw_recovery_seconds())
                self.clear_host(host.host_id)
                failed.append(host.host_id)
        neighbors: Set[int] = set()
        for host_id in failed:
            if host_id in topology.brokers:
                neighbors.update(topology.lei(host_id))
                neighbors.update(topology.brokers - {host_id})
            elif host_id in topology.assignment:
                neighbors.add(topology.assignment[host_id])
        self.recent_failure_neighbors = neighbors - set(failed)
        return failed
