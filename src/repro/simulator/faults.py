"""Fault-injection module (§IV-F).

Reimplements the observable behaviour of the container-cloud fault
injector of Ye et al. used by the paper: four attack types --
**CPU overload** (hog application), **RAM contention** (continuous
read/write), **Disk attack** (IOZone-style bandwidth consumption) and
**DDOS attack** (HTTP connection floods contending the NIC) -- arriving
as a Poisson process with rate ``lambda_f = 0.5`` per interval, the
attack drawn uniformly at random.

Every attack manifests as resource over-utilisation on its target (the
paper restricts attention to exactly this fault class, §III-A); a node
whose utilisation crosses the failure threshold becomes byzantine-
unresponsive and must reboot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..config import FaultConfig
from .host import Host
from .topology import Topology

__all__ = ["AttackEvent", "FaultInjector"]

#: Resource axis stressed by each attack type.
ATTACK_AXIS = {
    "cpu_overload": "cpu",
    "ram_contention": "ram",
    "disk_attack": "disk",
    "ddos_attack": "net",
}

#: Injected extra utilisation range per attack (fraction of capacity).
ATTACK_INTENSITY = {
    "cpu_overload": (0.5, 1.1),
    "ram_contention": (0.5, 1.0),
    "disk_attack": (0.6, 1.3),
    "ddos_attack": (0.6, 1.3),
}


@dataclass(frozen=True)
class AttackEvent:
    """One injected attack."""

    interval: int
    target: int
    attack_type: str
    axis: str
    intensity: float
    #: Number of intervals the synthetic load persists.
    duration: int


class FaultInjector:
    """Samples attacks and applies/decays their load on hosts.

    Parameters
    ----------
    config:
        Fault process parameters (rate, recovery bounds, threshold).
    rng:
        Random source.
    broker_bias:
        Probability that an attack targets a broker rather than an
        arbitrary host; the paper's experiments direct attacks so as to
        cause *broker* byzantine failures, which this reproduces while
        still exercising worker-failure paths.
    """

    def __init__(
        self,
        config: FaultConfig,
        rng: np.random.Generator,
        broker_bias: float = 0.6,
    ) -> None:
        if not 0.0 <= broker_bias <= 1.0:
            raise ValueError("broker_bias must be in [0, 1]")
        self.config = config
        self.rng = rng
        self.broker_bias = broker_bias
        #: Active attacks, target -> list of (axis, intensity, ttl).
        self._active: Dict[int, List[List]] = {}
        self.history: List[AttackEvent] = []

    # ------------------------------------------------------------------
    def inject(self, interval: int, topology: Topology, hosts: Sequence[Host]) -> List[AttackEvent]:
        """Sample this interval's attacks and register them."""
        events: List[AttackEvent] = []
        n_attacks = int(self.rng.poisson(self.config.rate))
        live = [h.host_id for h in hosts if h.alive and h.host_id in topology.attached]
        if not live:
            return events
        live_brokers = [h for h in live if h in topology.brokers]
        for _ in range(n_attacks):
            attack_type = str(self.rng.choice(self.config.attack_types))
            axis = ATTACK_AXIS[attack_type]
            low, high = ATTACK_INTENSITY[attack_type]
            intensity = float(self.rng.uniform(low, high))
            if live_brokers and self.rng.random() < self.broker_bias:
                target = int(self.rng.choice(live_brokers))
            else:
                target = int(self.rng.choice(live))
            duration = int(self.rng.integers(1, 3))  # 1 or 2 intervals
            event = AttackEvent(interval, target, attack_type, axis, intensity, duration)
            events.append(event)
            self.history.append(event)
            self._active.setdefault(target, []).append([axis, intensity, duration])
        return events

    def apply_loads(self, hosts: Sequence[Host]) -> None:
        """Write current attack loads into ``host.fault_load``."""
        for host in hosts:
            load = {axis: 0.0 for axis in host.fault_load}
            for axis, intensity, _ttl in self._active.get(host.host_id, []):
                load[axis] += intensity
            host.fault_load = load

    def decay(self) -> None:
        """Age active attacks by one interval; expired ones vanish."""
        for target in list(self._active):
            remaining = []
            for axis, intensity, ttl in self._active[target]:
                if ttl > 1:
                    remaining.append([axis, intensity, ttl - 1])
            if remaining:
                self._active[target] = remaining
            else:
                del self._active[target]

    def clear_host(self, host_id: int) -> None:
        """Drop attacks on a host (it rebooted to a clean snapshot)."""
        self._active.pop(host_id, None)

    def draw_recovery_seconds(self) -> float:
        """Reboot duration for a crashed node (1-5 minutes, §IV-I)."""
        low, high = self.config.recovery_seconds
        return float(self.rng.uniform(low, high))

    def check_failures(self, hosts: Sequence[Host], topology: Topology) -> List[int]:
        """Crash hosts whose utilisation exceeds the failure threshold.

        Returns the ids of hosts that became unresponsive.  Utilisation
        must already have been computed for the interval.
        """
        failed = []
        threshold = self.config.failure_threshold
        for host in hosts:
            if not host.alive or host.host_id not in topology.attached:
                continue
            if host.is_overloaded(threshold):
                host.crash(self.draw_recovery_seconds())
                self.clear_host(host.host_id)
                failed.append(host.host_id)
        return failed
