"""Underlying task schedulers.

The paper assumes "an underlying scheduler in the system independent
from the proposed fault-tolerance solution" (§III-A) and builds on the
GOBI surrogate-optimisation scheduler of COSCO in its implementation
(§IV-D).  The resilience layer consumes the scheduling decision ``S_t``
but never makes it.

:class:`GOBIScheduler` approximates GOBI's behaviour: place each task
where the marginal predicted objective (energy + contention) increase
is smallest, then rebalance overloaded workers.  Simpler policies are
provided for ablations and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .host import Host
from .task import Task
from .topology import Topology

__all__ = [
    "SchedulingDecision",
    "Scheduler",
    "GOBIScheduler",
    "LeastUtilScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
]


@dataclass
class SchedulingDecision:
    """Placement decided for one interval (the paper's ``S_t``).

    ``placements`` covers every running task (new and active) mapped to
    a host; ``migrations`` lists tasks moved away from their previous
    host this interval.
    """

    placements: Dict[int, int] = field(default_factory=dict)
    migrations: List[Tuple[int, int, int]] = field(default_factory=list)

    def host_of(self, task_id: int) -> int:
        return self.placements[task_id]

    def tasks_on(self, host_id: int) -> List[int]:
        return [t for t, h in self.placements.items() if h == host_id]


class Scheduler:
    """Scheduler interface: place new tasks, optionally migrate active."""

    name = "base"

    def schedule(
        self,
        new_tasks_by_broker: Mapping[int, Sequence[Task]],
        active_tasks: Sequence[Task],
        topology: Topology,
        hosts: Sequence[Host],
    ) -> SchedulingDecision:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @staticmethod
    def _live_workers_of(
        broker: int, topology: Topology, host_by_id: Mapping[int, Host]
    ) -> List[int]:
        """Placement candidates in a LEI: live workers, else the broker."""
        workers = [w for w in topology.lei(broker) if host_by_id[w].alive]
        if workers:
            return workers
        # A broker may act as a worker when its LEI has none (§I).
        return [broker]


class GOBIScheduler(Scheduler):
    """Greedy surrogate-objective placement in the spirit of GOBI/COSCO.

    For each new task, candidate hosts in the receiving LEI are scored
    with a projected-objective estimate (CPU contention + RAM pressure
    + a small energy slope term) and the minimiser wins.  After
    placement, workers projected above ``rebalance_threshold`` CPU
    utilisation shed their smallest task to the least-loaded worker of
    the same LEI.
    """

    name = "gobi"

    def __init__(self, rebalance_threshold: float = 0.9) -> None:
        if rebalance_threshold <= 0:
            raise ValueError("rebalance_threshold must be positive")
        self.rebalance_threshold = rebalance_threshold

    def schedule(
        self,
        new_tasks_by_broker: Mapping[int, Sequence[Task]],
        active_tasks: Sequence[Task],
        topology: Topology,
        hosts: Sequence[Host],
    ) -> SchedulingDecision:
        host_by_id = {host.host_id: host for host in hosts}
        decision = SchedulingDecision()

        # Projected load accumulators per host.
        cpu_load = {h.host_id: 0.0 for h in hosts}
        ram_load = {h.host_id: 0.0 for h in hosts}

        # Keep active tasks where they are (unless their host died).
        for task in active_tasks:
            if task.finished:
                continue
            host = host_by_id.get(task.host) if task.host is not None else None
            if host is not None and host.alive and task.host in topology.attached:
                decision.placements[task.task_id] = task.host
                cpu_load[task.host] += task.spec.cpu_share
                ram_load[task.host] += task.spec.ram_gb
            else:
                # Host failed: task will be re-run; route through its
                # entry broker's LEI below.
                broker = self._fallback_broker(task, topology, host_by_id)
                target = self._best_host(
                    task, broker, topology, host_by_id, cpu_load, ram_load
                )
                previous = task.host if task.host is not None else target
                decision.placements[task.task_id] = target
                decision.migrations.append((task.task_id, previous, target))
                cpu_load[target] += task.spec.cpu_share
                ram_load[target] += task.spec.ram_gb

        # Place new tasks greedily by projected objective.
        for broker in sorted(new_tasks_by_broker):
            for task in new_tasks_by_broker[broker]:
                live_broker = (
                    broker
                    if broker in topology.brokers and host_by_id[broker].alive
                    else self._fallback_broker(task, topology, host_by_id)
                )
                target = self._best_host(
                    task, live_broker, topology, host_by_id, cpu_load, ram_load
                )
                decision.placements[task.task_id] = target
                cpu_load[target] += task.spec.cpu_share
                ram_load[target] += task.spec.ram_gb

        self._rebalance(decision, active_tasks, topology, host_by_id, cpu_load, ram_load)
        return decision

    # ------------------------------------------------------------------
    def _best_host(
        self,
        task: Task,
        broker: int,
        topology: Topology,
        host_by_id: Mapping[int, Host],
        cpu_load: Dict[int, float],
        ram_load: Dict[int, float],
    ) -> int:
        candidates = self._live_workers_of(broker, topology, host_by_id)
        best, best_score = candidates[0], float("inf")
        for candidate in candidates:
            host = host_by_id[candidate]
            projected_cpu = (cpu_load[candidate] + task.spec.cpu_share)
            projected_ram = (ram_load[candidate] + task.spec.ram_gb) / host.spec.ram_gb
            # Surrogate objective: contention dominates, energy slope
            # penalises waking an idle node only mildly.
            score = projected_cpu + 1.5 * max(projected_ram - 1.0, 0.0) \
                + 0.25 * projected_ram
            if score < best_score:
                best, best_score = candidate, score
        return best

    def _fallback_broker(
        self,
        task: Task,
        topology: Topology,
        host_by_id: Mapping[int, Host],
    ) -> int:
        live_brokers = [
            b for b in sorted(topology.brokers) if host_by_id[b].alive
        ]
        if not live_brokers:
            # Engine guarantees a live broker before scheduling.
            raise RuntimeError("no live brokers available for scheduling")
        if task.entry_broker in live_brokers:
            return task.entry_broker
        return live_brokers[0]

    def _rebalance(
        self,
        decision: SchedulingDecision,
        active_tasks: Sequence[Task],
        topology: Topology,
        host_by_id: Mapping[int, Host],
        cpu_load: Dict[int, float],
        ram_load: Dict[int, float],
    ) -> None:
        task_by_id = {task.task_id: task for task in active_tasks}
        for broker in sorted(topology.brokers):
            workers = self._live_workers_of(broker, topology, host_by_id)
            if len(workers) < 2:
                continue
            for worker in workers:
                if cpu_load[worker] <= self.rebalance_threshold:
                    continue
                resident = [
                    task_by_id[t]
                    for t in decision.tasks_on(worker)
                    if t in task_by_id
                ]
                if not resident:
                    continue
                smallest = min(resident, key=lambda t: t.remaining_mi)
                target = min(workers, key=lambda w: cpu_load[w])
                if target == worker:
                    continue
                decision.placements[smallest.task_id] = target
                decision.migrations.append((smallest.task_id, worker, target))
                cpu_load[worker] -= smallest.spec.cpu_share
                cpu_load[target] += smallest.spec.cpu_share
                ram_load[worker] -= smallest.spec.ram_gb
                ram_load[target] += smallest.spec.ram_gb


class LeastUtilScheduler(Scheduler):
    """Place every task on the least CPU-loaded live worker of its LEI."""

    name = "least_util"

    def schedule(self, new_tasks_by_broker, active_tasks, topology, hosts):
        host_by_id = {host.host_id: host for host in hosts}
        decision = SchedulingDecision()
        cpu_load = {h.host_id: 0.0 for h in hosts}

        for task in active_tasks:
            if task.finished:
                continue
            if (
                task.host is not None
                and host_by_id[task.host].alive
                and task.host in topology.attached
            ):
                decision.placements[task.task_id] = task.host
                cpu_load[task.host] += task.spec.cpu_share

        live_brokers = [b for b in sorted(topology.brokers) if host_by_id[b].alive]
        for task in active_tasks:
            if task.finished or task.task_id in decision.placements:
                continue
            broker = task.entry_broker if task.entry_broker in live_brokers else live_brokers[0]
            candidates = self._live_workers_of(broker, topology, host_by_id)
            target = min(candidates, key=lambda w: cpu_load[w])
            previous = task.host if task.host is not None else target
            decision.placements[task.task_id] = target
            decision.migrations.append((task.task_id, previous, target))
            cpu_load[target] += task.spec.cpu_share

        for broker in sorted(new_tasks_by_broker):
            for task in new_tasks_by_broker[broker]:
                live = broker if broker in live_brokers else live_brokers[0]
                candidates = self._live_workers_of(live, topology, host_by_id)
                target = min(candidates, key=lambda w: cpu_load[w])
                decision.placements[task.task_id] = target
                cpu_load[target] += task.spec.cpu_share
        return decision


class RoundRobinScheduler(Scheduler):
    """Cycle new tasks across each LEI's live workers."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def schedule(self, new_tasks_by_broker, active_tasks, topology, hosts):
        host_by_id = {host.host_id: host for host in hosts}
        decision = SchedulingDecision()
        live_brokers = [b for b in sorted(topology.brokers) if host_by_id[b].alive]

        for task in active_tasks:
            if task.finished:
                continue
            if (
                task.host is not None
                and host_by_id[task.host].alive
                and task.host in topology.attached
            ):
                decision.placements[task.task_id] = task.host
            else:
                broker = task.entry_broker if task.entry_broker in live_brokers else live_brokers[0]
                candidates = self._live_workers_of(broker, topology, host_by_id)
                target = candidates[self._cursor % len(candidates)]
                self._cursor += 1
                previous = task.host if task.host is not None else target
                decision.placements[task.task_id] = target
                decision.migrations.append((task.task_id, previous, target))

        for broker in sorted(new_tasks_by_broker):
            for task in new_tasks_by_broker[broker]:
                live = broker if broker in live_brokers else live_brokers[0]
                candidates = self._live_workers_of(live, topology, host_by_id)
                target = candidates[self._cursor % len(candidates)]
                self._cursor += 1
                decision.placements[task.task_id] = target
        return decision


class RandomScheduler(Scheduler):
    """Uniform random placement (baseline of last resort for tests)."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def schedule(self, new_tasks_by_broker, active_tasks, topology, hosts):
        host_by_id = {host.host_id: host for host in hosts}
        decision = SchedulingDecision()
        live_brokers = [b for b in sorted(topology.brokers) if host_by_id[b].alive]

        def place(task: Task, broker: int) -> int:
            candidates = self._live_workers_of(broker, topology, host_by_id)
            return int(self.rng.choice(candidates))

        for task in active_tasks:
            if task.finished:
                continue
            if (
                task.host is not None
                and host_by_id[task.host].alive
                and task.host in topology.attached
            ):
                decision.placements[task.task_id] = task.host
            else:
                broker = task.entry_broker if task.entry_broker in live_brokers else live_brokers[0]
                target = place(task, broker)
                previous = task.host if task.host is not None else target
                decision.placements[task.task_id] = target
                decision.migrations.append((task.task_id, previous, target))

        for broker in sorted(new_tasks_by_broker):
            for task in new_tasks_by_broker[broker]:
                live = broker if broker in live_brokers else live_brokers[0]
                decision.placements[task.task_id] = place(task, live)
        return decision
