"""Broker/worker recovery (§IV-I).

Failures are recoverable: a crashed node reboots (1-5 minutes) from its
last snapshot.  On the testbed a VRRP virtual-IP pool (keepalived)
keeps the broker endpoints stable; once a failed node is back online it
rejoins as a *worker* of the closest active broker by network latency,
applied during topology initialisation at the interval start (line 4 of
Algorithm 2).
"""

from __future__ import annotations

from typing import Sequence

from .host import Host
from .network import NetworkModel
from .topology import Topology

__all__ = ["reattach_recovered", "strip_failed", "ensure_brokered"]


def strip_failed(topology: Topology, hosts: Sequence[Host]) -> Topology:
    """Detach every dead host from ``topology``.

    Detaching a dead broker orphans its workers; callers then hand the
    orphans to the resilience model (or :func:`ensure_brokered`).
    Callers must guarantee at least one live broker remains -- a
    topology cannot exist broker-less -- which :func:`ensure_brokered`
    arranges by promoting a live node first.
    """
    result = topology
    for host in hosts:
        if not host.alive and host.host_id in result.attached:
            result = result.detach(host.host_id)
    return result


def reattach_recovered(
    topology: Topology,
    hosts: Sequence[Host],
    network: NetworkModel,
) -> Topology:
    """Attach every live unattached host as a worker of its closest broker.

    Mirrors the keepalived-based rejoin: "as soon as a failed node comes
    back online, we add it to the graph topology and assign it as a
    worker in the closest active broker as per network latency".
    """
    result = topology
    live = {host.host_id for host in hosts if host.alive}
    brokers = [b for b in sorted(result.brokers) if b in live]
    if not brokers:
        return result
    for host_id in result.unattached:
        if host_id not in live:
            continue
        closest = network.closest_host(network.positions[host_id], brokers)
        result = result.attach_worker(host_id, closest)
    return result


def ensure_brokered(
    topology: Topology,
    hosts: Sequence[Host],
    network: NetworkModel,
) -> Topology:
    """Guarantee at least one live broker and no stranded live workers.

    This is the engine's safety net beneath any resilience model: if a
    model returns a topology whose brokers are all dead (or fails to
    place live hosts), the federation would halt, which the VRRP layer
    prevents on the real testbed by promoting a live node.
    """
    live = {host.host_id for host in hosts if host.alive}
    result = topology
    live_brokers = [b for b in result.brokers if b in live]
    if not live_brokers:
        # Promote before stripping: a topology must always keep at
        # least one broker, so the dead ones cannot be detached first.
        candidates = sorted(live - set(result.brokers))
        if not candidates:
            # Whole federation down; keep structure, nothing can run.
            return result
        result = result.promote(candidates[0])
    result = strip_failed(result, hosts)
    return reattach_recovered(result, hosts, network)
