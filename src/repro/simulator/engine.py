"""The federated-edge co-simulator.

Drives the discrete scheduling-interval loop of §III-A: at the start of
interval ``I_t`` failures are detected, the topology is repaired (by
whichever resilience model the experiment wires in), new tasks arrive
through gateways, the underlying scheduler produces ``S_t`` and the
interval executes -- producing the performance metrics ``M_t`` that the
next decision consumes.

The engine is policy-free: experiments drive it through the four-phase
protocol ``begin_interval`` -> (resilience model chooses a topology) ->
``set_topology`` -> ``run_interval``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import telemetry as _telemetry
from ..config import ExperimentConfig
from .detection import DetectionProtocol, FailureReport
from .faults import FaultInjector
from .gateway import GatewayFleet
from .host import RESOURCES, Host, make_fleet, make_pi_cluster
from .metrics import (
    IntervalMetrics,
    encode_host_metrics,
    encode_schedule,
)
from .network import NetworkModel
from .recovery import ensure_brokered
from .scheduler import GOBIScheduler, Scheduler, SchedulingDecision
from .task import Task
from .topology import Topology, initial_topology

__all__ = ["SystemView", "EdgeFederation"]

# Interval-loop telemetry (process registry): wall-clock spans and
# task-flow counters.  Observation only -- nothing here feeds back
# into simulation state, so records stay bit-identical with telemetry
# on, off, or absent.
_INTERVAL_SPAN = _telemetry.span("sim.interval")
_INTERVALS = _telemetry.counter("sim.intervals")
_TASKS_ARRIVED = _telemetry.counter("sim.tasks_arrived")
_TASKS_COMPLETED = _telemetry.counter("sim.tasks_completed")
_ATTACKS = _telemetry.counter("sim.attacks")

#: Broker state shipped during a node-shift (resource logs, task table).
BROKER_STATE_MB = 64.0
#: Time to start the broker-management Docker container on a new broker.
CONTAINER_INIT_SECONDS = 10.0
#: Worker-side cost of refreshing its broker IP at a reassignment.
WORKER_REASSIGN_SECONDS = 1.0
#: Management baseline: broker software idle CPU fraction / RAM in GB.
MANAGEMENT_BASE_CPU = 0.05
MANAGEMENT_CPU_PER_WORKER = 0.012
MANAGEMENT_CPU_PER_TASK = 0.004
MANAGEMENT_BASE_RAM_GB = 0.5


@dataclass
class SystemView:
    """Read-only snapshot handed to resilience models each interval.

    Everything a broker-resident model can observe: the current
    topology, per-host liveness and utilisation, the network, the
    previous interval's metric matrix ``M`` and schedule encoding
    ``S``, plus the QoS weights.
    """

    interval: int
    topology: Topology
    hosts: Sequence[Host]
    network: NetworkModel
    last_metrics: Optional[IntervalMetrics]
    alpha: float
    beta: float
    interval_seconds: float

    @property
    def live_host_ids(self) -> frozenset:
        return frozenset(h.host_id for h in self.hosts if h.alive)

    def utilisation_matrix(self) -> np.ndarray:
        """Per-host [cpu, ram, disk, net] utilisation."""
        matrix = np.zeros((len(self.hosts), len(RESOURCES)))
        for row, host in enumerate(self.hosts):
            matrix[row] = [host.utilisation[axis] for axis in RESOURCES]
        return matrix


class EdgeFederation:
    """Co-simulator of a broker-worker edge federation."""

    def __init__(
        self,
        config: ExperimentConfig,
        scheduler: Optional[Scheduler] = None,
        workload=None,
        topology: Optional[Topology] = None,
        seed: Union[int, np.random.SeedSequence, None] = None,
    ) -> None:
        from .workloads import make_generator

        self.config = config
        fed = config.federation
        seed = config.seed if seed is None else seed
        # Independent streams so component behaviour is stable when
        # other components change (standard variance-reduction practice).
        # SeedSequence.spawn gives provably independent children, unlike
        # offsetting a shared seed.
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        streams = root.spawn(5)
        self._rng_network = np.random.default_rng(streams[0])
        self._rng_workload = np.random.default_rng(streams[1])
        self._rng_faults = np.random.default_rng(streams[2])
        self._rng_gateways = np.random.default_rng(streams[3])
        self._rng_detection = np.random.default_rng(streams[4])

        # FederationConfig guarantees fleet counts sum to n_hosts.
        self.hosts: List[Host] = (
            make_fleet(fed.fleet) if fed.fleet
            else make_pi_cluster(fed.n_hosts, fed.n_large_hosts)
        )
        self.topology = topology or initial_topology(fed.n_hosts, fed.n_leis)
        self.network = NetworkModel(
            fed.n_hosts, fed.n_leis, self._rng_network, link_mbps=fed.link_mbps
        )
        self.gateways = GatewayFleet(
            n_gateways=2 * fed.n_leis, network=self.network, rng=self._rng_gateways
        )
        self.workload = workload or make_generator(
            config.workload.suite,
            self._rng_workload,
            arrival_rate=config.workload.arrival_rate,
            drift_scale=config.workload.drift_scale,
            jump_probability=config.workload.jump_probability,
        )
        self.faults = FaultInjector(config.faults, self._rng_faults)
        self.detection = DetectionProtocol(self._rng_detection)
        self.scheduler = scheduler or GOBIScheduler()

        self.active_tasks: List[Task] = []
        self.completed_tasks: List[Task] = []
        self.interval = 0
        self.now = 0.0
        self.last_metrics: Optional[IntervalMetrics] = None
        self.last_decision: Optional[SchedulingDecision] = None
        self._last_report: Optional[FailureReport] = None
        self._pending_downtime: Dict[int, float] = {}
        self._nodeshift_overhead = 0.0
        #: Resilience-model resource profile charged to brokers.
        self._management_cpu_seconds = 0.0
        self._management_memory_gb = 0.0

    # ------------------------------------------------------------------
    # Phase 1: interval boundary -- detection
    # ------------------------------------------------------------------
    def begin_interval(self) -> FailureReport:
        """Open interval ``t+1``: reset hosts and detect failures."""
        self.interval += 1
        for host in self.hosts:
            host.reset_interval()
        report = self.detection.detect(self.interval, self.topology, self.hosts)
        self._last_report = report
        self._pending_downtime = {}
        self._nodeshift_overhead = 0.0
        return report

    def propose_topology(self) -> Topology:
        """Default topology initialisation (Alg. 2 line 4).

        Strips failed hosts and reattaches recovered ones; resilience
        models start their search from this graph.
        """
        return ensure_brokered(self.topology, self.hosts, self.network)

    @property
    def view(self) -> SystemView:
        return SystemView(
            interval=self.interval,
            topology=self.topology,
            hosts=self.hosts,
            network=self.network,
            last_metrics=self.last_metrics,
            alpha=self.config.alpha,
            beta=self.config.beta,
            interval_seconds=self.config.federation.interval_seconds,
        )

    # ------------------------------------------------------------------
    # Phase 2: topology commit
    # ------------------------------------------------------------------
    def set_topology(self, topology: Topology) -> float:
        """Commit the repaired topology; returns node-shift overhead (s).

        The overhead models broker-state transfer plus management-
        container start-up for promotions/demotions and the IP refresh
        for reassigned workers.  It is charged as downtime to the
        orphaned LEIs' tasks this interval (§III-B: node-shifts "entail
        transfer of broker level data ... and initializing management
        software containers").
        """
        previous = self.topology
        repaired = ensure_brokered(topology, self.hosts, self.network)

        promoted = sorted(repaired.brokers - previous.brokers)
        demoted = sorted(previous.brokers - repaired.brokers)
        reassigned = [
            worker
            for worker, broker in repaired.assignment.items()
            if previous.assignment.get(worker, broker) != broker
        ]

        overhead = 0.0
        live_old_brokers = [
            b for b in previous.brokers
            if self.hosts[b].alive and b in repaired.attached
        ]
        for new_broker in promoted:
            source = (
                min(
                    live_old_brokers,
                    key=lambda b: self.network.latency_seconds(b, new_broker),
                )
                if live_old_brokers
                else new_broker
            )
            overhead += self.network.transfer_seconds(
                source, new_broker, BROKER_STATE_MB
            )
            overhead += CONTAINER_INIT_SECONDS
        overhead += WORKER_REASSIGN_SECONDS * (len(reassigned) + len(demoted))

        # Charge downtime to the LEIs orphaned by the failed brokers.
        report = self._last_report
        if report is not None and report.failed_brokers:
            for broker in report.failed_brokers:
                if broker not in previous.brokers:
                    continue
                for worker in previous.lei(broker):
                    self._pending_downtime[worker] = (
                        self._pending_downtime.get(worker, 0.0)
                        + report.detection_delay_seconds
                        + overhead
                    )

        self._nodeshift_overhead = overhead
        self.topology = repaired
        return overhead

    def set_management_profile(self, cpu_seconds: float, memory_gb: float) -> None:
        """Declare the resilience model's resource use for this interval.

        ``cpu_seconds`` of model compute (decision + fine-tuning,
        already scaled to edge-hardware speed) and resident ``memory_gb``
        are charged to every broker, reproducing the paper's observation
        that fine-tuning "consumes large portions of the computational
        and memory resources" of broker nodes (§I).
        """
        if cpu_seconds < 0 or memory_gb < 0:
            raise ValueError("management profile must be non-negative")
        self._management_cpu_seconds = cpu_seconds
        self._management_memory_gb = memory_gb

    # ------------------------------------------------------------------
    # Phase 3: execution
    # ------------------------------------------------------------------
    @_INTERVAL_SPAN
    def run_interval(self) -> IntervalMetrics:
        """Execute the committed interval and return its metrics."""
        fed = self.config.federation
        interval_seconds = fed.interval_seconds
        host_by_id = {host.host_id: host for host in self.hosts}

        # Rebooting hosts progress their recovery during this interval.
        for host in self.hosts:
            if not host.alive:
                host.advance_reboot(interval_seconds)

        # -- New tasks arrive through the gateways ---------------------
        live_brokers = [
            b for b in sorted(self.topology.brokers) if host_by_id[b].alive
        ]
        new_tasks: List[Task] = []
        routed: Dict[int, List[Task]] = {}
        if live_brokers:
            specs = self.workload.tasks_for_interval(
                fed.n_leis, rate_multiplier=self._arrival_multiplier()
            )
            routed = self.gateways.route_tasks(specs, live_brokers, self.now)
            new_tasks = [task for tasks in routed.values() for task in tasks]

        # -- Underlying scheduler decides S_t ---------------------------
        decision = self.scheduler.schedule(
            routed, self.active_tasks, self.topology, self.hosts
        )
        self._apply_decision(decision, host_by_id)
        self.active_tasks.extend(new_tasks)
        for task in new_tasks:
            task.host = decision.placements.get(task.task_id, task.entry_broker)

        # -- Resource demand and utilisation ----------------------------
        tasks_by_host: Dict[int, List[Task]] = {}
        for task in self.active_tasks:
            if task.host is not None:
                tasks_by_host.setdefault(task.host, []).append(task)

        self._apply_management_load(live_brokers, tasks_by_host)
        attacks = tuple(self.faults.inject(self.interval, self.topology, self.hosts))
        self.faults.apply_loads(self.hosts)

        for host in self.hosts:
            demand = self._demand_of(
                tasks_by_host.get(host.host_id, []), host, interval_seconds
            )
            host.compute_utilisation(demand)
            host.task_ids = [t.task_id for t in tasks_by_host.get(host.host_id, [])]

        # -- Task progress ----------------------------------------------
        completions: List[Task] = []
        slo_counts = np.zeros(len(self.hosts))
        done_counts = np.zeros(len(self.hosts))
        for host in self.hosts:
            resident = tasks_by_host.get(host.host_id, [])
            if not resident:
                continue
            effective = self._effective_seconds(host, interval_seconds)
            speed = self._effective_mips(host)
            for task in resident:
                stall = self._pending_downtime.get(host.host_id, 0.0)
                window = max(effective - stall, 0.0)
                start = self.now + (interval_seconds - window)
                task.progress(speed * task.spec.cpu_share, window, start)
                if task.finished:
                    completions.append(task)
                    done_counts[host.host_id] += 1
                    if task.violates_slo:
                        slo_counts[host.host_id] += 1

        # -- Energy ------------------------------------------------------
        energy_joules = np.zeros(len(self.hosts))
        for row, host in enumerate(self.hosts):
            idle = host.spec.power_model.watts(0.0)
            if host.alive:
                busy_seconds = interval_seconds - host.downtime_seconds
                energy_joules[row] = (
                    host.power_watts() * busy_seconds
                    + idle * host.downtime_seconds
                )
            else:
                energy_joules[row] = idle * interval_seconds

        # -- Failures for the next interval -------------------------------
        self.faults.check_failures(self.hosts, self.topology)
        self.faults.decay()

        # -- Bookkeeping & metrics ----------------------------------------
        for task in completions:
            self.active_tasks.remove(task)
        self.completed_tasks.extend(completions)

        slo_rate_by_host = np.divide(
            slo_counts,
            np.maximum(done_counts, 1.0),
        )
        metrics = IntervalMetrics(
            interval=self.interval,
            topology=self.topology,
            host_metrics=encode_host_metrics(
                self.hosts, tasks_by_host, energy_joules, slo_rate_by_host,
                interval_seconds,
            ),
            schedule_encoding=encode_schedule(
                decision,
                self.active_tasks + completions,
                {t.task_id for t in new_tasks},
                self.hosts,
                interval_seconds,
            ),
            energy_kwh=float(energy_joules.sum()) / 3.6e6,
            response_times=[t.response_time for t in completions],
            slo_violations=[t.violates_slo for t in completions],
            n_active_tasks=len(self.active_tasks),
            n_new_tasks=len(new_tasks),
            failure_report=self._last_report,
            downtime_seconds=sum(self._pending_downtime.values())
            + sum(h.downtime_seconds for h in self.hosts),
            attacks=attacks,
        )
        _INTERVALS.inc()
        _TASKS_ARRIVED.add(len(new_tasks))
        _TASKS_COMPLETED.add(len(completions))
        _ATTACKS.add(len(attacks))
        self.last_metrics = metrics
        self.last_decision = decision
        self.now += interval_seconds
        # Management profile is re-declared each interval by the runner.
        self._management_cpu_seconds = 0.0
        return metrics

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _arrival_multiplier(self) -> float:
        """Scenario-driven arrival-rate factor for the current interval.

        Combines active flash-crowd surges (fault side) with the
        configured diurnal load curve (workload side).
        """
        factor = self.faults.arrival_multiplier()
        amplitude = self.config.workload.diurnal_amplitude
        if amplitude > 0.0:
            period = self.config.workload.diurnal_period
            factor *= 1.0 + amplitude * float(
                np.sin(2.0 * np.pi * self.interval / period)
            )
        return factor

    def _apply_decision(
        self, decision: SchedulingDecision, host_by_id: Dict[int, Host]
    ) -> None:
        """Apply migrations/reruns implied by the scheduling decision."""
        task_by_id = {task.task_id: task for task in self.active_tasks}
        for task_id, source, target in decision.migrations:
            task = task_by_id.get(task_id)
            if task is None:
                continue
            source_host = host_by_id.get(source)
            if source_host is not None and not source_host.alive:
                # Re-run after a worker failure: restart from scratch
                # (§III-A: "we simply rerun tasks on the worker with the
                # least resource utilization").
                task.remaining_mi = task.spec.total_mi
                task.stall_seconds += self.config.federation.interval_seconds * 0.1
                task.host = target
            else:
                migration_seconds = self.network.transfer_seconds(
                    source, target, task.spec.ram_gb * 1024.0
                )
                task.migrate(target, migration_seconds)
        for task_id, host_id in decision.placements.items():
            task = task_by_id.get(task_id)
            if task is not None and task.host != host_id:
                task.host = host_id

    def _apply_management_load(
        self, live_brokers: List[int], tasks_by_host: Dict[int, List[Task]]
    ) -> None:
        """Charge broker-software and resilience-model load to brokers."""
        interval_seconds = self.config.federation.interval_seconds
        model_cpu_fraction = min(
            self._management_cpu_seconds / interval_seconds, 1.0
        )
        for host in self.hosts:
            host.management_cpu = 0.0
            host.management_ram_gb = 0.0
        for broker in live_brokers:
            host = self.hosts[broker]
            lei = self.topology.lei(broker)
            n_tasks = sum(len(tasks_by_host.get(w, [])) for w in lei)
            n_tasks += len(tasks_by_host.get(broker, []))
            host.management_cpu = (
                MANAGEMENT_BASE_CPU
                + MANAGEMENT_CPU_PER_WORKER * len(lei)
                + MANAGEMENT_CPU_PER_TASK * n_tasks
                + model_cpu_fraction
            )
            host.management_ram_gb = (
                MANAGEMENT_BASE_RAM_GB + self._management_memory_gb
            )

    @staticmethod
    def _demand_of(
        tasks: List[Task], host: Host, interval_seconds: float
    ) -> Dict[str, float]:
        """Aggregate native-unit demand of resident tasks on ``host``."""
        demand = {axis: 0.0 for axis in RESOURCES}
        for task in tasks:
            demand["cpu"] += task.spec.cpu_share * host.spec.cpu_mips
            demand["ram"] += task.spec.ram_gb
            demand["disk"] += task.spec.disk_mb / interval_seconds
            demand["net"] += task.spec.net_mb * 8.0 / interval_seconds
        return demand

    def _effective_seconds(self, host: Host, interval_seconds: float) -> float:
        """Execution window after reboot downtime."""
        return max(interval_seconds - host.downtime_seconds, 0.0)

    def _effective_mips(self, host: Host) -> float:
        """Per-share MIPS under contention.

        CPU contention (util > 1) shares the processor proportionally;
        RAM over-subscription triggers swap thrashing over the network-
        attached disk (§I), slowing progress further; disk/network
        saturation adds a milder penalty.
        """
        cpu_util = host.utilisation["cpu"]
        ram_excess = max(host.utilisation["ram"] - 1.0, 0.0)
        io_excess = max(host.utilisation["disk"] - 1.0, 0.0) + max(
            host.utilisation["net"] - 1.0, 0.0
        )
        mips = host.spec.cpu_mips
        if cpu_util > 1.0:
            mips /= cpu_util
        mips /= 1.0 + 2.0 * ram_excess
        mips /= 1.0 + 0.5 * io_excess
        return mips
