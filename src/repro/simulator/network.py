"""Network model: inter-host latencies and transfer times.

The testbed emulates geographically distant LEIs by shaping broker-to-
broker latency with NetLimiter, following an urban edge-mobility model
(§IV-C).  We reproduce the observable effect: hosts live at fixed 2-D
positions grouped into geographic sites; latency grows with distance,
and all links carry 1 Gbps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["NetworkModel"]


class NetworkModel:
    """Distance-derived latency matrix plus bandwidth accounting.

    Parameters
    ----------
    n_hosts:
        Number of edge nodes.
    n_sites:
        Number of geographic clusters (matches the initial LEI count;
        LEI membership may later drift from geography as node-shifts
        reassign workers -- exactly as on the real testbed).
    rng:
        Source of randomness for site placement.
    link_mbps:
        Link bandwidth (1 Gbps on the testbed).
    """

    #: Propagation latency per unit of distance (seconds).
    LATENCY_PER_UNIT = 0.002
    #: Base switching latency for any hop (seconds).
    BASE_LATENCY = 0.001
    #: Side of the square region sites are scattered over.
    REGION_SIZE = 10.0
    #: Spread of hosts around their site centre.
    SITE_SPREAD = 0.4

    def __init__(
        self,
        n_hosts: int,
        n_sites: int,
        rng: np.random.Generator,
        link_mbps: float = 1000.0,
    ) -> None:
        if n_hosts < 1 or n_sites < 1:
            raise ValueError("need at least one host and one site")
        if link_mbps <= 0:
            raise ValueError("link_mbps must be positive")
        self.n_hosts = n_hosts
        self.n_sites = n_sites
        self.link_mbps = link_mbps

        centres = rng.uniform(0.0, self.REGION_SIZE, size=(n_sites, 2))
        sites = np.arange(n_hosts) % n_sites
        jitter = rng.normal(0.0, self.SITE_SPREAD, size=(n_hosts, 2))
        self.positions = centres[sites] + jitter
        self.site_of_host = sites

        deltas = self.positions[:, None, :] - self.positions[None, :, :]
        distances = np.sqrt((deltas ** 2).sum(axis=-1))
        self.latency = self.BASE_LATENCY + self.LATENCY_PER_UNIT * distances
        np.fill_diagonal(self.latency, 0.0)

    # ------------------------------------------------------------------
    def latency_seconds(self, a: int, b: int) -> float:
        """One-way latency between hosts ``a`` and ``b``."""
        return float(self.latency[a, b])

    def transfer_seconds(self, a: int, b: int, megabytes: float) -> float:
        """Time to move ``megabytes`` from ``a`` to ``b``.

        Latency plus serialisation delay at the link bandwidth; loopback
        transfers are free.
        """
        if megabytes < 0:
            raise ValueError("megabytes must be non-negative")
        if a == b:
            return 0.0
        serialisation = (megabytes * 8.0) / self.link_mbps
        return self.latency_seconds(a, b) + serialisation

    def closest_host(self, position: np.ndarray, candidates: Sequence[int]) -> int:
        """Candidate host with lowest latency from ``position``.

        Used by gateways to pick their broker ("closest broker in terms
        of network latency", §III-A).  Ties broken by host id for
        determinism; callers inject randomness by perturbing positions.
        """
        candidates = list(candidates)
        if not candidates:
            raise ValueError("no candidate hosts")
        position = np.asarray(position, dtype=float)
        deltas = self.positions[candidates] - position
        distances = np.sqrt((deltas ** 2).sum(axis=-1))
        return candidates[int(np.argmin(distances))]
