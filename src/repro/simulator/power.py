"""Host power models.

Energy is a first-class QoS metric in the paper (eq. 6-7); the testbed
measures it per Raspberry-Pi node.  We model power as a piecewise-linear
interpolation over CPU utilisation, anchored at published Pi-4B
measurements (idle ~2.7 W, all-cores-loaded ~6.4 W, with throttling
headroom up to ~7.3 W under combined CPU+IO stress).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "PowerModel",
    "LinearPowerModel",
    "InterpolatedPowerModel",
    "PI4B_POWER",
    "NUC_POWER",
    "XEON_POWER",
]


class PowerModel:
    """Map CPU utilisation in [0, 1+] to instantaneous watts."""

    def watts(self, cpu_utilisation: float) -> float:
        raise NotImplementedError

    def energy_joules(self, cpu_utilisation: float, seconds: float) -> float:
        """Energy over a window at constant utilisation."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.watts(cpu_utilisation) * seconds


class LinearPowerModel(PowerModel):
    """``watts = idle + (peak - idle) * util`` clamped to [idle, peak]."""

    def __init__(self, idle_watts: float, peak_watts: float) -> None:
        if idle_watts < 0 or peak_watts < idle_watts:
            raise ValueError("need 0 <= idle_watts <= peak_watts")
        self.idle_watts = idle_watts
        self.peak_watts = peak_watts

    def watts(self, cpu_utilisation: float) -> float:
        utilisation = min(max(cpu_utilisation, 0.0), 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * utilisation


class InterpolatedPowerModel(PowerModel):
    """Piecewise-linear power curve through measured (util, watts) points.

    Utilisation beyond the last anchor saturates at the final wattage,
    modelling thermal throttling under over-utilisation attacks.
    """

    def __init__(self, utilisations: Sequence[float], watts: Sequence[float]) -> None:
        utilisations = np.asarray(utilisations, dtype=float)
        watts_arr = np.asarray(watts, dtype=float)
        if utilisations.ndim != 1 or utilisations.shape != watts_arr.shape:
            raise ValueError("utilisations and watts must be equal-length 1-D")
        if len(utilisations) < 2:
            raise ValueError("need at least two anchor points")
        if np.any(np.diff(utilisations) <= 0):
            raise ValueError("utilisation anchors must be strictly increasing")
        if np.any(watts_arr < 0):
            raise ValueError("watts must be non-negative")
        self._utils = utilisations
        self._watts = watts_arr

    def watts(self, cpu_utilisation: float) -> float:
        return float(np.interp(cpu_utilisation, self._utils, self._watts))


#: Measured Raspberry Pi 4B curve (util fraction -> watts).
PI4B_POWER = InterpolatedPowerModel(
    utilisations=[0.0, 0.25, 0.5, 0.75, 1.0, 1.5],
    watts=[2.7, 4.0, 5.0, 5.8, 6.4, 7.3],
)

#: Intel NUC (i5-class mini PC) curve, anchored at published SPECpower-
#: style measurements: ~6 W idle, ~32 W all-cores, throttling headroom.
NUC_POWER = InterpolatedPowerModel(
    utilisations=[0.0, 0.25, 0.5, 0.75, 1.0, 1.5],
    watts=[6.0, 14.0, 21.0, 27.0, 32.0, 36.0],
)

#: Single-socket Xeon edge server curve (~55 W idle, ~150 W loaded).
XEON_POWER = InterpolatedPowerModel(
    utilisations=[0.0, 0.25, 0.5, 0.75, 1.0, 1.5],
    watts=[55.0, 85.0, 110.0, 132.0, 150.0, 165.0],
)
