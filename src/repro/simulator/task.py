"""Task (container) model.

The workload is bag-of-tasks: independent containers entering each LEI
at interval starts, each with a soft SLO deadline (§III-A).  A task's
compute demand is expressed in millions of instructions (MI); hosts
serve resident tasks proportionally to their demands, so progress per
interval follows from the host's effective MIPS share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TaskSpec", "Task"]


@dataclass(frozen=True)
class TaskSpec:
    """Static requirements of one task."""

    #: Application name (e.g. ``"yolo"`` or ``"resnet18"``).
    application: str
    #: Total work in millions of instructions.
    total_mi: float
    #: Resident-set size in GB while running.
    ram_gb: float
    #: Disk traffic generated over the task's life, MB.
    disk_mb: float
    #: Network traffic generated over the task's life, MB.
    net_mb: float
    #: Soft SLO deadline in seconds from creation.
    slo_seconds: float
    #: Nominal CPU parallelism the container can exploit, as a fraction
    #: of one host's cores it can saturate (0, 1].  The benchmark
    #: containers are pinned to two of the Pi's four cores.
    cpu_share: float = 0.5

    def __post_init__(self) -> None:
        if self.total_mi <= 0:
            raise ValueError("total_mi must be positive")
        if self.ram_gb < 0 or self.disk_mb < 0 or self.net_mb < 0:
            raise ValueError("resource demands must be non-negative")
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if not 0 < self.cpu_share <= 1:
            raise ValueError("cpu_share must be in (0, 1]")


class Task:
    """Runtime state of a task instance."""

    _COUNTER = 0

    def __init__(self, spec: TaskSpec, created_at: float, lei_broker: int) -> None:
        Task._COUNTER += 1
        self.task_id = Task._COUNTER
        self.spec = spec
        #: Simulation time (seconds) of creation at the gateway.
        self.created_at = created_at
        #: Broker that received the task from the gateway.
        self.entry_broker = lei_broker
        #: Host currently executing the task (None while queued).
        self.host: Optional[int] = None
        self.remaining_mi = spec.total_mi
        #: Extra latency accrued from queueing, stalls and migrations.
        self.stall_seconds = 0.0
        self.finished_at: Optional[float] = None
        self.migrations = 0

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def response_time(self) -> float:
        """Seconds from creation to result delivery (only when finished).

        Includes queueing/migration/ingress stalls, which delay the
        result even though they do not consume compute.
        """
        if self.finished_at is None:
            raise RuntimeError("task has not finished")
        return self.finished_at - self.created_at + self.stall_seconds

    @property
    def violates_slo(self) -> bool:
        """Soft-deadline violation indicator for a finished task."""
        return self.response_time > self.spec.slo_seconds

    def progress(self, mips_share: float, seconds: float, now: float) -> None:
        """Advance execution given an effective MIPS allocation.

        Completion inside the window is timestamped by linear
        interpolation, so response times are not quantised to interval
        boundaries.
        """
        if self.finished:
            return
        if mips_share <= 0 or seconds <= 0:
            return
        work = mips_share * seconds
        if work >= self.remaining_mi:
            fraction = self.remaining_mi / work
            self.finished_at = now + seconds * fraction
            self.remaining_mi = 0.0
        else:
            self.remaining_mi -= work

    def migrate(self, new_host: int, migration_seconds: float) -> None:
        """Move the task to ``new_host``, charging migration stall time."""
        if self.host is not None and self.host != new_host:
            self.migrations += 1
            self.stall_seconds += migration_seconds
        self.host = new_host

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else f"{self.remaining_mi:.0f}MI left"
        return f"Task(#{self.task_id} {self.spec.application} {state})"
