"""Gateway devices and their mobility model.

Users submit tasks through gateway devices that forward them to the
*closest broker in terms of network latency*, breaking ties uniformly
at random (§III-A).  To emulate shifting load across LEIs the paper
drives gateways with a mobility model (§IV-C); we use a random-waypoint
walk over the same 2-D region as the network model, which produces the
load-imbalance dynamics the resilience models must cope with.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .network import NetworkModel
from .task import Task, TaskSpec

__all__ = ["Gateway", "GatewayFleet"]


class Gateway:
    """A mobile gateway performing a random-waypoint walk."""

    def __init__(
        self,
        gateway_id: int,
        position: np.ndarray,
        rng: np.random.Generator,
        region_size: float,
        speed: float = 0.6,
    ) -> None:
        self.gateway_id = gateway_id
        self.position = np.asarray(position, dtype=float)
        self.rng = rng
        self.region_size = region_size
        self.speed = speed
        self._waypoint = self._new_waypoint()

    def _new_waypoint(self) -> np.ndarray:
        return self.rng.uniform(0.0, self.region_size, size=2)

    def move(self) -> None:
        """One mobility step toward the current waypoint."""
        direction = self._waypoint - self.position
        distance = float(np.linalg.norm(direction))
        if distance < self.speed:
            self.position = self._waypoint.copy()
            self._waypoint = self._new_waypoint()
            return
        self.position = self.position + direction / distance * self.speed

    def choose_broker(self, network: NetworkModel, brokers: Sequence[int]) -> int:
        """Pick the latency-closest live broker, random tie-breaks.

        A small positional jitter implements the paper's uniform
        tie-breaking without needing exact-equality checks.
        """
        jitter = self.rng.normal(0.0, 1e-3, size=2)
        return network.closest_host(self.position + jitter, brokers)


class GatewayFleet:
    """All gateways of the federation; routes a task bag to brokers."""

    def __init__(
        self,
        n_gateways: int,
        network: NetworkModel,
        rng: np.random.Generator,
    ) -> None:
        if n_gateways < 1:
            raise ValueError("need at least one gateway")
        self.network = network
        self.rng = rng
        self.gateways = [
            Gateway(
                gateway_id=i,
                position=rng.uniform(0.0, NetworkModel.REGION_SIZE, size=2),
                rng=rng,
                region_size=NetworkModel.REGION_SIZE,
            )
            for i in range(n_gateways)
        ]

    def route_tasks(
        self,
        specs: Sequence[TaskSpec],
        brokers: Sequence[int],
        now: float,
    ) -> Dict[int, List[Task]]:
        """Move gateways one step and route ``specs`` to brokers.

        Returns ``{broker_id: [tasks]}``.  Each task records its entry
        broker; the network latency of the gateway-to-broker hop is
        charged as initial stall time.
        """
        if not brokers:
            raise ValueError("cannot route tasks: no live brokers")
        for gateway in self.gateways:
            gateway.move()

        routed: Dict[int, List[Task]] = {broker: [] for broker in brokers}
        for spec in specs:
            gateway = self.gateways[int(self.rng.integers(len(self.gateways)))]
            broker = gateway.choose_broker(self.network, brokers)
            task = Task(spec, created_at=now, lei_broker=broker)
            # Gateway-to-broker ingress: latency + payload serialisation.
            task.stall_seconds += self.network.transfer_seconds(
                broker, broker, 0.0
            ) + self.network.BASE_LATENCY
            routed[broker].append(task)
        return routed
