"""Broker-worker topology of the edge federation.

The assignment of edge nodes as brokers or workers, plus the mapping of
each worker to a broker, *is* the system topology (§III-A).  Brokers of
different LEIs are fully interconnected; workers connect only to their
broker.  CAROL's whole action space is transformations of this object
(node-shifts), so it is immutable and hashable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

import networkx as nx
import numpy as np

__all__ = ["Topology", "initial_topology"]


class Topology:
    """Immutable broker-worker topology over ``n_hosts`` nodes.

    Parameters
    ----------
    n_hosts:
        Total number of hosts in the federation (fixed, §I: "for a
        fixed number of devices in the system").
    brokers:
        Host ids acting as brokers.
    assignment:
        Mapping of worker host id to its broker's host id.  Hosts in
        neither set are *unattached* -- rebooting after a failure or
        orphaned awaiting a node-shift.
    """

    __slots__ = ("n_hosts", "brokers", "assignment", "_key")

    def __init__(
        self,
        n_hosts: int,
        brokers: Iterable[int],
        assignment: Mapping[int, int],
    ) -> None:
        self.n_hosts = int(n_hosts)
        self.brokers: FrozenSet[int] = frozenset(int(b) for b in brokers)
        self.assignment: Dict[int, int] = {int(w): int(b) for w, b in assignment.items()}
        self._validate()
        self._key = (
            tuple(sorted(self.brokers)),
            tuple(sorted(self.assignment.items())),
        )

    def _validate(self) -> None:
        if not self.brokers:
            raise ValueError("topology must have at least one broker")
        for broker in self.brokers:
            if not 0 <= broker < self.n_hosts:
                raise ValueError(f"broker id {broker} out of range")
        for worker, broker in self.assignment.items():
            if not 0 <= worker < self.n_hosts:
                raise ValueError(f"worker id {worker} out of range")
            if worker in self.brokers:
                raise ValueError(f"host {worker} is both broker and worker")
            if broker not in self.brokers:
                raise ValueError(
                    f"worker {worker} assigned to non-broker {broker}"
                )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def workers(self) -> Tuple[int, ...]:
        return tuple(sorted(self.assignment))

    @property
    def attached(self) -> FrozenSet[int]:
        """Hosts participating in the federation right now."""
        return self.brokers | frozenset(self.assignment)

    @property
    def unattached(self) -> Tuple[int, ...]:
        """Hosts outside the topology (rebooting or orphaned)."""
        return tuple(
            h for h in range(self.n_hosts) if h not in self.attached
        )

    def lei(self, broker: int) -> Tuple[int, ...]:
        """Workers managed by ``broker`` (its Local Edge Infrastructure)."""
        if broker not in self.brokers:
            raise KeyError(f"host {broker} is not a broker")
        return tuple(sorted(w for w, b in self.assignment.items() if b == broker))

    def broker_of(self, host: int) -> int:
        """Broker managing ``host`` (a broker manages itself)."""
        if host in self.brokers:
            return host
        if host in self.assignment:
            return self.assignment[host]
        raise KeyError(f"host {host} is unattached")

    def lei_sizes(self) -> Dict[int, int]:
        """Worker count per broker."""
        sizes = {broker: 0 for broker in self.brokers}
        for broker in self.assignment.values():
            sizes[broker] += 1
        return sizes

    # ------------------------------------------------------------------
    # Transformations (all return new Topology objects)
    # ------------------------------------------------------------------
    def detach(self, host: int) -> "Topology":
        """Remove ``host`` from the topology.

        Detaching a broker orphans its workers (they become unattached
        too); the resilience model is responsible for re-attaching them
        via node-shifts.
        """
        if host in self.brokers:
            assignment = {
                w: b for w, b in self.assignment.items() if b != host
            }
            return Topology(self.n_hosts, self.brokers - {host}, assignment)
        if host in self.assignment:
            assignment = dict(self.assignment)
            del assignment[host]
            return Topology(self.n_hosts, self.brokers, assignment)
        return self

    def attach_worker(self, host: int, broker: int) -> "Topology":
        """Attach unattached ``host`` as a worker of ``broker``."""
        if host in self.attached:
            raise ValueError(f"host {host} is already attached")
        assignment = dict(self.assignment)
        assignment[host] = broker
        return Topology(self.n_hosts, self.brokers, assignment)

    def promote(self, worker: int) -> "Topology":
        """Make ``worker`` (or an unattached host) a broker."""
        if worker in self.brokers:
            raise ValueError(f"host {worker} is already a broker")
        assignment = dict(self.assignment)
        assignment.pop(worker, None)
        return Topology(self.n_hosts, self.brokers | {worker}, assignment)

    def demote(self, broker: int, new_broker: int) -> "Topology":
        """Turn ``broker`` into a worker of ``new_broker``.

        The demoted broker's workers move to ``new_broker`` as well
        (the broker-to-worker counterpart of a Type-2 shift).
        """
        if broker not in self.brokers:
            raise KeyError(f"host {broker} is not a broker")
        if new_broker not in self.brokers or new_broker == broker:
            raise ValueError("new_broker must be a different current broker")
        assignment = {
            w: (new_broker if b == broker else b)
            for w, b in self.assignment.items()
        }
        assignment[broker] = new_broker
        return Topology(self.n_hosts, self.brokers - {broker}, assignment)

    def reassign(self, worker: int, broker: int) -> "Topology":
        """Move an existing worker under a different broker."""
        if worker not in self.assignment:
            raise KeyError(f"host {worker} is not a worker")
        assignment = dict(self.assignment)
        assignment[worker] = broker
        return Topology(self.n_hosts, self.brokers, assignment)

    # ------------------------------------------------------------------
    # Graph exports
    # ------------------------------------------------------------------
    def adjacency(self) -> np.ndarray:
        """Symmetric 0/1 adjacency over all ``n_hosts`` nodes.

        Workers link to their broker; brokers form a clique (brokers are
        interconnected and share data, §III-A).  Unattached hosts are
        isolated, which the graph-attention encoder handles through
        self-loops.
        """
        adjacency = np.zeros((self.n_hosts, self.n_hosts))
        brokers = sorted(self.brokers)
        for i, a in enumerate(brokers):
            for b in brokers[i + 1:]:
                adjacency[a, b] = adjacency[b, a] = 1.0
        for worker, broker in self.assignment.items():
            adjacency[worker, broker] = adjacency[broker, worker] = 1.0
        return adjacency

    def to_networkx(self) -> nx.Graph:
        """Export as an undirected networkx graph with role attributes."""
        graph = nx.Graph()
        for host in range(self.n_hosts):
            if host in self.brokers:
                role = "broker"
            elif host in self.assignment:
                role = "worker"
            else:
                role = "unattached"
            graph.add_node(host, role=role)
        adjacency = self.adjacency()
        rows, cols = np.nonzero(np.triu(adjacency))
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return graph

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def canonical_key(self) -> tuple:
        """Hashable identity used by the tabu list."""
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Topology) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        leis = {b: self.lei(b) for b in sorted(self.brokers)}
        return f"Topology(brokers={sorted(self.brokers)}, leis={leis})"


def initial_topology(n_hosts: int, n_leis: int) -> Topology:
    """The paper's starting topology (§IV-C).

    The first ``n_leis`` hosts (8 GB nodes) are brokers; remaining hosts
    are distributed symmetrically across the LEIs.
    """
    if n_leis < 1 or n_leis > n_hosts // 2:
        raise ValueError(f"cannot build {n_leis} LEIs from {n_hosts} hosts")
    brokers = list(range(n_leis))
    assignment = {
        host: brokers[(host - n_leis) % n_leis]
        for host in range(n_leis, n_hosts)
    }
    return Topology(n_hosts, brokers, assignment)
