"""Experiment configuration dataclasses.

Every experiment in the reproduction is parameterised through these
configs rather than module-level constants, so the paper-scale setup
(16 Raspberry-Pi hosts, 4 LEIs, 100 five-minute evaluation intervals,
1000 trace intervals) and the fast CI-scale setup coexist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["FederationConfig", "WorkloadConfig", "FaultConfig", "ExperimentConfig"]


def _normalize_chaos_rows(rows) -> Tuple[Tuple, ...]:
    """Structurally check and freeze compiled chaos-schedule rows.

    Rows are the plain-data form produced by
    ``repro.chaos.schedule.ChaosSchedule.to_rows``:
    ``(kind, start, duration, ((param, value), ...))``.  Only structure
    is validated here -- this module must stay importable without
    :mod:`repro.chaos` (which imports the simulator, which imports this
    module); semantic validation happens when the schedule is rebuilt.
    """
    normalized = []
    for row in rows:
        row = tuple(row)
        if len(row) != 4:
            raise ValueError(
                f"chaos rows must be (kind, start, duration, params), got {row!r}"
            )
        kind, start, duration, params = row
        if not isinstance(kind, str) or not kind:
            raise ValueError(f"chaos row kind must be a string, got {kind!r}")
        for label, value in (("start", start), ("duration", duration)):
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"chaos row {label}={value!r} must be an integer >= 1"
                )
        frozen_params = []
        for param in params:
            param = tuple(param)
            if len(param) != 2 or not isinstance(param[0], str):
                raise ValueError(
                    f"chaos row params must be (name, value) pairs, got {param!r}"
                )
            name, value = param
            if isinstance(value, (list, tuple)):
                value = tuple(value)
            frozen_params.append((name, value))
        normalized.append((kind, start, duration, tuple(frozen_params)))
    return tuple(normalized)


@dataclass(frozen=True)
class FederationConfig:
    """Shape of the federated edge testbed (§IV-C of the paper)."""

    n_hosts: int = 16
    n_leis: int = 4
    #: Number of 8GB Pi-4B nodes; the rest are the 4GB variant.
    n_large_hosts: int = 8
    #: Scheduling-interval length in seconds (five minutes).
    interval_seconds: float = 300.0
    #: LAN / WAN link speed in Mbit/s (all links are 1 Gbps).
    link_mbps: float = 1000.0
    #: Optional heterogeneous fleet composition as ``(host_class, count)``
    #: pairs (see :data:`repro.simulator.host.HOST_CLASSES`).  Empty means
    #: the classic homogeneous Pi cluster derived from ``n_hosts`` /
    #: ``n_large_hosts``.  When set, counts must sum to ``n_hosts``.
    fleet: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.n_hosts < 2:
            raise ValueError("need at least two hosts (one broker, one worker)")
        if not 1 <= self.n_leis <= self.n_hosts // 2:
            raise ValueError(
                f"n_leis={self.n_leis} infeasible for {self.n_hosts} hosts"
            )
        if not 0 <= self.n_large_hosts <= self.n_hosts:
            raise ValueError("n_large_hosts out of range")
        if self.fleet:
            for entry in self.fleet:
                if len(entry) != 2 or int(entry[1]) < 1:
                    raise ValueError(
                        f"fleet entries must be (host_class, count >= 1), got {entry!r}"
                    )
            total = sum(int(count) for _, count in self.fleet)
            if total != self.n_hosts:
                raise ValueError(
                    f"fleet composition holds {total} hosts but n_hosts={self.n_hosts}"
                )


@dataclass(frozen=True)
class WorkloadConfig:
    """Bag-of-tasks arrival process (§V-A)."""

    #: Which suite generates tasks: ``"defog"`` (training) or ``"aiot"`` (test).
    suite: str = "aiot"
    #: Poisson rate of new tasks per LEI per interval.
    arrival_rate: float = 1.2
    #: Global demand drift: scale of the random-walk non-stationarity.
    drift_scale: float = 0.02
    #: Probability per interval of a regime jump in workload statistics.
    jump_probability: float = 0.01
    #: Amplitude of a sinusoidal day/night arrival-rate modulation in
    #: [0, 1); 0 disables it (the paper's steady Poisson arrivals).
    diurnal_amplitude: float = 0.0
    #: Period of the diurnal cycle in scheduling intervals.
    diurnal_period: float = 24.0

    def __post_init__(self) -> None:
        if self.suite not in ("defog", "aiot"):
            raise ValueError(f"unknown workload suite {self.suite!r}")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude={self.diurnal_amplitude} must be in [0, 1) "
                "(>= 1 would drive the arrival rate negative)"
            )
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive (intervals per cycle)")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection campaign (§IV-F plus scenario extensions).

    The paper's baseline process is uniform Poisson resource attacks
    (``rate`` / ``attack_types``).  The remaining fields parameterise the
    pluggable fault models of :mod:`repro.simulator.faults`: correlated
    rack-level group attacks, overload cascades triggered by neighbour
    failures, network partitions and gateway-side arrival surges.  All
    extensions default to *off*, so a stock ``FaultConfig`` reproduces
    the paper's injector exactly.
    """

    #: Poisson rate of independent attacks per interval.
    rate: float = 0.5
    #: Attack types sampled uniformly at random.
    attack_types: Tuple[str, ...] = (
        "cpu_overload",
        "ram_contention",
        "disk_attack",
        "ddos_attack",
    )
    #: Recovery (reboot) time bounds in seconds (1-5 minutes, §IV-I).
    recovery_seconds: Tuple[float, float] = (60.0, 300.0)
    #: Fraction of resource over-utilisation above which a node becomes
    #: unresponsive within the interval.
    failure_threshold: float = 1.0
    #: Poisson rate of correlated group attacks (whole racks hit at once).
    correlated_rate: float = 0.0
    #: Hosts per rack for correlated attacks; must be >= 1 when enabled
    #: and no larger than the fleet (checked where the fleet is known).
    correlated_group_size: int = 0
    #: Probability that each neighbour of a failed host is hit by an
    #: overload cascade in the following interval.
    cascade_probability: float = 0.0
    #: Extra utilisation injected on cascade targets.
    cascade_intensity: float = 0.8
    #: Poisson rate of network-partition events per interval.
    partition_rate: float = 0.0
    #: Fraction of the live fleet cut off by a partition, in (0, 1).
    partition_fraction: float = 0.0
    #: Intervals a partition persists before the links heal.
    partition_duration: int = 2
    #: Poisson rate of gateway-side arrival-surge (flash-crowd) events.
    surge_rate: float = 0.0
    #: Multiplier applied to the task arrival rate while a surge is live.
    surge_multiplier: float = 1.0
    #: Intervals a surge persists.
    surge_duration: int = 1
    #: Declarative fault-model selection by registry name (see
    #: ``repro.simulator.faults.FAULT_MODELS``).  Empty means *auto*:
    #: every registered model the rate fields enable, in registry order
    #: -- the historical behaviour.  Unknown names fail at
    #: spec-compile time, not mid-run.
    models: Tuple[str, ...] = ()
    #: Compiled chaos-schedule rows
    #: (``ChaosSchedule.to_rows()`` output); empty means no schedule.
    #: Plain data, so the config stays hashable and picklable without
    #: importing :mod:`repro.chaos`.
    chaos: Tuple[Tuple, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "models", tuple(str(name) for name in self.models)
        )
        object.__setattr__(self, "chaos", _normalize_chaos_rows(self.chaos))
        for attr in ("rate", "correlated_rate", "partition_rate", "surge_rate"):
            if getattr(self, attr) < 0:
                raise ValueError(
                    f"{attr}={getattr(self, attr)} must be non-negative"
                )
        low, high = self.recovery_seconds
        if not 0 < low <= high:
            raise ValueError("recovery_seconds must satisfy 0 < low <= high")
        if self.correlated_group_size < 0:
            raise ValueError("correlated_group_size must be non-negative")
        if self.correlated_rate > 0 and self.correlated_group_size < 1:
            raise ValueError(
                "correlated attacks enabled (correlated_rate > 0) but "
                f"correlated_group_size={self.correlated_group_size}; need >= 1"
            )
        if not 0.0 <= self.cascade_probability <= 1.0:
            raise ValueError(
                f"cascade_probability={self.cascade_probability} must be in [0, 1]"
            )
        if self.cascade_intensity < 0:
            raise ValueError("cascade_intensity must be non-negative")
        if self.partition_rate > 0 and not 0.0 < self.partition_fraction < 1.0:
            raise ValueError(
                f"partition_fraction={self.partition_fraction} must be in (0, 1) "
                "when partitions are enabled (a partition cuts off *part* of "
                "the fleet, never none or all of it)"
            )
        if self.partition_duration < 1:
            raise ValueError("partition_duration must be >= 1 interval")
        if self.surge_rate > 0 and self.surge_multiplier < 1.0:
            raise ValueError(
                f"surge_multiplier={self.surge_multiplier} must be >= 1 when "
                "surges are enabled (a surge amplifies arrivals)"
            )
        if self.surge_duration < 1:
            raise ValueError("surge_duration must be >= 1 interval")


@dataclass(frozen=True)
class ExperimentConfig:
    """Top-level experiment description."""

    federation: FederationConfig = field(default_factory=FederationConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Number of scheduling intervals to simulate.
    n_intervals: int = 100
    #: QoS mixing weights, O(M) = alpha * energy + beta * slo (eq. 7).
    alpha: float = 0.5
    beta: float = 0.5
    #: Seed for every RNG in the run.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_intervals < 1:
            raise ValueError("n_intervals must be >= 1")
        if abs(self.alpha + self.beta - 1.0) > 1e-9:
            raise ValueError("alpha + beta must equal 1 (paper, eq. 7)")


def paper_scale() -> ExperimentConfig:
    """The configuration used for headline results in the paper."""
    return ExperimentConfig(
        federation=FederationConfig(n_hosts=16, n_leis=4, n_large_hosts=8),
        workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=100,
    )


def ci_scale(seed: int = 0) -> ExperimentConfig:
    """A reduced-but-faithful configuration for fast test runs."""
    return ExperimentConfig(
        federation=FederationConfig(n_hosts=8, n_leis=2, n_large_hosts=4),
        workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=20,
        seed=seed,
    )
