"""Experiment configuration dataclasses.

Every experiment in the reproduction is parameterised through these
configs rather than module-level constants, so the paper-scale setup
(16 Raspberry-Pi hosts, 4 LEIs, 100 five-minute evaluation intervals,
1000 trace intervals) and the fast CI-scale setup coexist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["FederationConfig", "WorkloadConfig", "FaultConfig", "ExperimentConfig"]


@dataclass(frozen=True)
class FederationConfig:
    """Shape of the federated edge testbed (§IV-C of the paper)."""

    n_hosts: int = 16
    n_leis: int = 4
    #: Number of 8GB Pi-4B nodes; the rest are the 4GB variant.
    n_large_hosts: int = 8
    #: Scheduling-interval length in seconds (five minutes).
    interval_seconds: float = 300.0
    #: LAN / WAN link speed in Mbit/s (all links are 1 Gbps).
    link_mbps: float = 1000.0

    def __post_init__(self) -> None:
        if self.n_hosts < 2:
            raise ValueError("need at least two hosts (one broker, one worker)")
        if not 1 <= self.n_leis <= self.n_hosts // 2:
            raise ValueError(
                f"n_leis={self.n_leis} infeasible for {self.n_hosts} hosts"
            )
        if not 0 <= self.n_large_hosts <= self.n_hosts:
            raise ValueError("n_large_hosts out of range")


@dataclass(frozen=True)
class WorkloadConfig:
    """Bag-of-tasks arrival process (§V-A)."""

    #: Which suite generates tasks: ``"defog"`` (training) or ``"aiot"`` (test).
    suite: str = "aiot"
    #: Poisson rate of new tasks per LEI per interval.
    arrival_rate: float = 1.2
    #: Global demand drift: scale of the random-walk non-stationarity.
    drift_scale: float = 0.02
    #: Probability per interval of a regime jump in workload statistics.
    jump_probability: float = 0.01

    def __post_init__(self) -> None:
        if self.suite not in ("defog", "aiot"):
            raise ValueError(f"unknown workload suite {self.suite!r}")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection process (§IV-F)."""

    #: Poisson rate of attacks per interval.
    rate: float = 0.5
    #: Attack types sampled uniformly at random.
    attack_types: Tuple[str, ...] = (
        "cpu_overload",
        "ram_contention",
        "disk_attack",
        "ddos_attack",
    )
    #: Recovery (reboot) time bounds in seconds (1-5 minutes, §IV-I).
    recovery_seconds: Tuple[float, float] = (60.0, 300.0)
    #: Fraction of resource over-utilisation above which a node becomes
    #: unresponsive within the interval.
    failure_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("fault rate must be non-negative")
        low, high = self.recovery_seconds
        if not 0 < low <= high:
            raise ValueError("recovery_seconds must satisfy 0 < low <= high")


@dataclass(frozen=True)
class ExperimentConfig:
    """Top-level experiment description."""

    federation: FederationConfig = field(default_factory=FederationConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Number of scheduling intervals to simulate.
    n_intervals: int = 100
    #: QoS mixing weights, O(M) = alpha * energy + beta * slo (eq. 7).
    alpha: float = 0.5
    beta: float = 0.5
    #: Seed for every RNG in the run.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_intervals < 1:
            raise ValueError("n_intervals must be >= 1")
        if abs(self.alpha + self.beta - 1.0) > 1e-9:
            raise ValueError("alpha + beta must equal 1 (paper, eq. 7)")


def paper_scale() -> ExperimentConfig:
    """The configuration used for headline results in the paper."""
    return ExperimentConfig(
        federation=FederationConfig(n_hosts=16, n_leis=4, n_large_hosts=8),
        workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=100,
    )


def ci_scale(seed: int = 0) -> ExperimentConfig:
    """A reduced-but-faithful configuration for fast test runs."""
    return ExperimentConfig(
        federation=FederationConfig(n_hosts=8, n_leis=2, n_large_hosts=4),
        workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=20,
        seed=seed,
    )
