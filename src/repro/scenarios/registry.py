"""Named scenario registry and the built-in catalog.

``register`` adds a :class:`~repro.scenarios.spec.ScenarioSpec` under
its name; ``get_scenario`` / ``scenario_names`` / ``all_scenarios``
look the catalog up.  The built-ins cover the regimes the CAROL
evaluation and the resilient-edge-federation literature call for:
the paper's own setup, a fault-free control, heterogeneous fleets,
correlated rack outages, cascading overloads, network partitions,
flash crowds and diurnal load.  See the package docstring of
:mod:`repro.scenarios` for the one-line catalog.

Built-in scenarios default to CI-scale fleets (8-10 hosts, 20
intervals) so campaigns over many (scenario, model, seed) cells stay
tractable; ``spec.with_overrides`` scales any of them up.
"""

from __future__ import annotations

from typing import Dict, List

from ..chaos.schedule import (
    ArrivalSurge,
    ChaosSchedule,
    FederationPartition,
    LinkDegrade,
    NodeRecover,
    ZoneBlackout,
)
from ..config import FaultConfig, WorkloadConfig
from .spec import ScenarioSpec

__all__ = [
    "register",
    "unregister",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "SCENARIOS",
]

#: The registry: scenario name -> spec.
SCENARIOS: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry; returns it for chaining."""
    if not overwrite and spec.name in SCENARIOS:
        raise ValueError(
            f"scenario {spec.name!r} already registered "
            "(pass overwrite=True to replace it)"
        )
    SCENARIOS[spec.name] = spec
    return spec


def unregister(name: str) -> bool:
    """Drop ``name`` from the registry if present; True when removed.

    Ephemeral registrants (the chaos fuzzer's content-addressed
    ``fuzz/...`` scenarios) use this to leave the catalog as they
    found it; absent names are a no-op, not an error.
    """
    return SCENARIOS.pop(name, None) is not None


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def all_scenarios() -> List[ScenarioSpec]:
    """Registered specs in name order."""
    return [SCENARIOS[name] for name in scenario_names()]


# ----------------------------------------------------------------------
# Built-in catalog
# ----------------------------------------------------------------------

#: The paper's CI-scale fleet: half 8 GB Pis (broker-capable), half 4 GB.
_PI_FLEET = (("pi4b-8gb", 4), ("pi4b-4gb", 4))

register(ScenarioSpec(
    name="paper-default",
    description=(
        "The paper's evaluation setup at CI scale: homogeneous Pi fleet, "
        "AIoT workloads at Poisson(1.2), uniform resource attacks at "
        "rate 0.5 (§IV-C/F)."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
    faults=FaultConfig(rate=0.5),
    tags=("paper", "baseline"),
))

register(ScenarioSpec(
    name="fault-free",
    description=(
        "Control run with fault injection disabled; isolates scheduling "
        "and workload effects from resilience behaviour."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
    faults=FaultConfig(rate=0.0),
    tags=("control",),
))

register(ScenarioSpec(
    name="hetero-fleet",
    description=(
        "Heterogeneous federation mixing a Xeon edge server, NUC mini "
        "PCs and Pi workers; capacity and power draw differ by an order "
        "of magnitude across classes."
    ),
    fleet=(("xeon", 1), ("nuc", 3), ("pi4b-8gb", 2), ("pi4b-4gb", 4)),
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.6),
    faults=FaultConfig(rate=0.5),
    tags=("heterogeneous",),
))

register(ScenarioSpec(
    name="correlated-rack",
    description=(
        "Rack-level correlated outages: group attacks hit whole "
        "four-host racks at once on top of a thinned background Poisson "
        "process (shared power/switch failure domains)."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
    faults=FaultConfig(
        rate=0.2, correlated_rate=0.3, correlated_group_size=4
    ),
    tags=("correlated", "faults"),
))

register(ScenarioSpec(
    name="cascading-overload",
    description=(
        "Failure cascades: each neighbour of a failed host inherits an "
        "overload spike with probability 0.5, so single outages can "
        "snowball across an LEI."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
    faults=FaultConfig(
        rate=0.4, cascade_probability=0.5, cascade_intensity=0.9
    ),
    tags=("cascade", "faults"),
))

register(ScenarioSpec(
    name="network-partition",
    description=(
        "Partition events sever ~35% of the live fleet for two "
        "intervals via saturating network contention; the survivors "
        "must rebuild the broker graph."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
    faults=FaultConfig(
        rate=0.2, partition_rate=0.15, partition_fraction=0.35,
        partition_duration=2,
    ),
    tags=("partition", "faults"),
))

register(ScenarioSpec(
    name="flash-crowd",
    description=(
        "Gateway-side arrival surges: flash-crowd events multiply the "
        "task arrival rate 4x for two intervals, overloading the "
        "federation from the workload side."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.0),
    faults=FaultConfig(
        rate=0.3, surge_rate=0.15, surge_multiplier=4.0, surge_duration=2
    ),
    tags=("surge", "workload"),
))

register(ScenarioSpec(
    name="diurnal-load",
    description=(
        "Day/night arrival curve: sinusoidal modulation (amplitude 0.8, "
        "12-interval period) over the AIoT mix with moderate faults; "
        "stresses adaptation to slow, predictable non-stationarity."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(
        suite="aiot", arrival_rate=1.2,
        diurnal_amplitude=0.8, diurnal_period=12.0,
    ),
    faults=FaultConfig(rate=0.3),
    tags=("diurnal", "workload"),
))

register(ScenarioSpec(
    name="chaos-drill",
    description=(
        "Scripted game-day drill: a declarative chaos schedule blacks "
        "out the second rack, degrades the first rack's links, severs a "
        "partition, surges arrivals 3x and then repairs the blacked-out "
        "zone -- every perturbation timed, deterministic and replayable."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
    faults=FaultConfig(rate=0.2),
    chaos=ChaosSchedule((
        ZoneBlackout(start=4, duration=2, zone=1, zone_size=4),
        LinkDegrade(start=6, duration=3, hosts=(0, 1), intensity=0.6),
        FederationPartition(start=10, duration=2, fraction=0.3),
        ArrivalSurge(start=13, duration=2, multiplier=3.0),
        NodeRecover(start=16, duration=1, hosts=(4, 5, 6, 7)),
    )),
    tags=("chaos", "faults"),
))

register(ScenarioSpec(
    name="skewed-hub",
    description=(
        "Skewed starting topology: half of all workers sit under one "
        "hub broker, so the initial graph is already imbalanced and "
        "hub failures orphan most of the fleet."
    ),
    fleet=_PI_FLEET,
    n_leis=2,
    topology="skewed",
    workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
    faults=FaultConfig(rate=0.5),
    tags=("topology",),
))
