"""``repro.scenarios`` -- declarative scenario catalog for the CAROL repro.

CAROL's claim is resilience under *non-stationary, diverse* failure and
workload regimes; this package makes those regimes first-class.  A
:class:`ScenarioSpec` declares one world (fleet composition, topology
preset, fault campaign, workload mix, QoS weights), round-trips through
``to_dict`` / ``from_dict`` and compiles to the
:class:`~repro.config.ExperimentConfig` the simulator already runs --
so every scenario uses the same engine code path as the paper's
experiments.  The :mod:`~repro.experiments.campaign` runner fans
scenario x model x seed grids across worker processes.

Built-in catalog (``python -m repro scenarios list``):

==================  ====================================================
``paper-default``   The paper's §IV-C/F evaluation setup at CI scale:
                    homogeneous Pi fleet, AIoT Poisson(1.2) arrivals,
                    uniform resource attacks at rate 0.5.
``fault-free``      Control run with fault injection disabled.
``hetero-fleet``    Xeon + NUC + Pi federation; capacity and power draw
                    differ by an order of magnitude across host classes.
``correlated-rack`` Rack-level correlated group attacks (whole four-host
                    racks hit at once) over a thinned Poisson background.
``cascading-overload``  Neighbours of failed hosts inherit overload
                    spikes with probability 0.5; outages can snowball.
``network-partition``  Partition events sever ~35% of the live fleet
                    for two intervals; survivors rebuild the topology.
``flash-crowd``     Gateway-side surges multiply the arrival rate 4x
                    for two intervals (workload-side overload).
``diurnal-load``    Sinusoidal day/night arrival curve (amplitude 0.8,
                    12-interval period) with moderate faults.
``skewed-hub``      Skewed starting topology: half the workers under
                    one hub broker, so hub failures orphan the fleet.
``chaos-drill``     Scripted :mod:`repro.chaos` schedule over a light
                    Poisson background: zone blackout, link degrade,
                    federation partition, arrival surge, then recovery
                    -- all five event kinds in one deterministic run.
==================  ====================================================

Quickstart::

    from repro.scenarios import get_scenario, build_topology
    from repro.simulator import EdgeFederation

    spec = get_scenario("correlated-rack")
    config = spec.compile(seed=1)
    federation = EdgeFederation(config, topology=build_topology(spec))

New scenarios are plain data::

    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(name="my-world", description="...",
                          fleet=(("nuc", 2), ("pi4b-4gb", 4)), n_leis=2))
"""

from .registry import (
    SCENARIOS,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from .spec import ScenarioSpec, TOPOLOGY_PRESETS, build_topology

__all__ = [
    "ScenarioSpec",
    "TOPOLOGY_PRESETS",
    "build_topology",
    "register",
    "unregister",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "SCENARIOS",
]
