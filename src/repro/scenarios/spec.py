"""Declarative scenario specifications and their compiler.

A :class:`ScenarioSpec` is the single declarative object describing one
world the reproduction can simulate: fleet composition (which host
classes, how many), topology preset, fault campaign, workload mix and
QoS weights.  Specs are frozen, serialise losslessly through
``to_dict`` / ``from_dict`` (so catalogs can live in JSON) and compile
to the :class:`~repro.config.ExperimentConfig` the simulator and
experiment runner already consume -- scenarios add no second code path
through the engine, only a declarative front end.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from ..chaos.schedule import ChaosSchedule
from ..config import (
    ExperimentConfig,
    FaultConfig,
    FederationConfig,
    WorkloadConfig,
)
from ..simulator.faults import validate_fault_model_names
from ..simulator.host import HOST_CLASSES
from ..simulator.topology import Topology, initial_topology

__all__ = ["ScenarioSpec", "TOPOLOGY_PRESETS", "build_topology"]

#: Known topology presets (see :func:`build_topology`).
TOPOLOGY_PRESETS = ("balanced", "skewed")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, declarative simulation world.

    Parameters mirror the layers they configure: ``fleet`` / ``n_leis``
    / ``topology`` shape the federation, ``workload`` the arrival
    process, ``faults`` the failure campaign, ``alpha`` / ``beta`` the
    QoS objective (eq. 7).  ``n_intervals`` is the scenario's default
    evaluation length; campaign runs may override it at compile time.
    """

    name: str
    description: str
    #: Host-class composition as ``(class, count)`` pairs, in rack order.
    fleet: Tuple[Tuple[str, int], ...] = (("pi4b-8gb", 4), ("pi4b-4gb", 4))
    n_leis: int = 2
    topology: str = "balanced"
    interval_seconds: float = 300.0
    link_mbps: float = 1000.0
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    alpha: float = 0.5
    beta: float = 0.5
    n_intervals: int = 20
    tags: Tuple[str, ...] = ()
    #: Optional declarative chaos schedule layered on top of ``faults``
    #: (compiled to a deterministic fault model at ``compile`` time).
    chaos: Optional[ChaosSchedule] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a non-empty name")
        if not self.fleet:
            raise ValueError(f"scenario {self.name!r} declares an empty fleet")
        for entry in self.fleet:
            if len(entry) != 2:
                raise ValueError(
                    f"scenario {self.name!r}: fleet entries must be "
                    f"(host_class, count), got {entry!r}"
                )
            class_name, count = entry
            if class_name not in HOST_CLASSES:
                raise ValueError(
                    f"scenario {self.name!r}: unknown host class "
                    f"{class_name!r}; known: {sorted(HOST_CLASSES)}"
                )
            if int(count) < 1:
                raise ValueError(
                    f"scenario {self.name!r}: host class {class_name!r} "
                    f"count must be >= 1, got {count}"
                )
        n_hosts = self.n_hosts
        if n_hosts < 2:
            raise ValueError(
                f"scenario {self.name!r}: fleet holds {n_hosts} hosts; need >= 2"
            )
        if not 1 <= self.n_leis <= n_hosts // 2:
            raise ValueError(
                f"scenario {self.name!r}: n_leis={self.n_leis} infeasible "
                f"for a {n_hosts}-host fleet"
            )
        if self.topology not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"scenario {self.name!r}: unknown topology preset "
                f"{self.topology!r}; known: {TOPOLOGY_PRESETS}"
            )
        if self.faults.correlated_group_size > n_hosts:
            raise ValueError(
                f"scenario {self.name!r}: correlated_group_size="
                f"{self.faults.correlated_group_size} exceeds the "
                f"{n_hosts}-host fleet"
            )
        if abs(self.alpha + self.beta - 1.0) > 1e-9:
            raise ValueError(
                f"scenario {self.name!r}: alpha + beta must equal 1 (eq. 7)"
            )
        if self.n_intervals < 1:
            raise ValueError(
                f"scenario {self.name!r}: n_intervals must be >= 1"
            )
        if self.faults.models:
            # Fail at spec-construction time, not mid-campaign.
            try:
                validate_fault_model_names(self.faults.models)
            except ValueError as exc:
                raise ValueError(f"scenario {self.name!r}: {exc}") from None
        if self.faults.chaos:
            raise ValueError(
                f"scenario {self.name!r}: set the chaos schedule on the "
                "spec's `chaos` field, not on FaultConfig.chaos (the spec "
                "compiles it down; two sources of truth would drift)"
            )
        if self.chaos is not None:
            if not isinstance(self.chaos, ChaosSchedule):
                raise ValueError(
                    f"scenario {self.name!r}: chaos must be a ChaosSchedule, "
                    f"got {type(self.chaos).__name__}"
                )
            try:
                self.chaos.validate_for(n_hosts)
            except ValueError as exc:
                raise ValueError(f"scenario {self.name!r}: {exc}") from None

    # ------------------------------------------------------------------
    # Derived shape
    # ------------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        return sum(int(count) for _, count in self.fleet)

    @property
    def is_heterogeneous(self) -> bool:
        """True when the fleet mixes more than one host class."""
        return len({class_name for class_name, _ in self.fleet}) > 1

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data (JSON-compatible) representation."""
        data = asdict(self)
        data["fleet"] = [list(entry) for entry in self.fleet]
        data["tags"] = list(self.tags)
        data["workload"] = asdict(self.workload)
        data["faults"] = asdict(self.faults)
        data["faults"]["attack_types"] = list(self.faults.attack_types)
        data["faults"]["recovery_seconds"] = list(self.faults.recovery_seconds)
        data["faults"]["models"] = list(self.faults.models)
        # Specs never carry FaultConfig.chaos rows (enforced above).
        data["faults"]["chaos"] = []
        # asdict recursion drops the events' `kind` discriminator; use
        # the schedule's own lossless form.
        data["chaos"] = self.chaos.to_dict() if self.chaos is not None else None
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        kwargs = dict(data)
        # Omitted keys keep their dataclass defaults -- a minimal JSON
        # entry {"name": ..., "description": ...} is a valid scenario.
        if "fleet" in data:
            kwargs["fleet"] = tuple(
                (str(name), int(count)) for name, count in data["fleet"]
            )
        if "tags" in data:
            kwargs["tags"] = tuple(data["tags"])
        if isinstance(data.get("workload"), dict):
            kwargs["workload"] = WorkloadConfig(**data["workload"])
        if isinstance(data.get("faults"), dict):
            faults = dict(data["faults"])
            if "attack_types" in faults:
                faults["attack_types"] = tuple(faults["attack_types"])
            if "recovery_seconds" in faults:
                faults["recovery_seconds"] = tuple(faults["recovery_seconds"])
            if "models" in faults:
                faults["models"] = tuple(faults["models"])
            if "chaos" in faults:
                faults["chaos"] = tuple(tuple(row) for row in faults["chaos"])
            kwargs["faults"] = FaultConfig(**faults)
        if data.get("chaos"):
            kwargs["chaos"] = ChaosSchedule.from_dict(data["chaos"])
        elif "chaos" in kwargs:
            kwargs["chaos"] = None
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        seed: int = 0,
        n_intervals: Optional[int] = None,
    ) -> ExperimentConfig:
        """Compile to the :class:`ExperimentConfig` the runner consumes.

        ``seed`` and (optionally) ``n_intervals`` are the per-run knobs
        a campaign grid varies; everything else is the scenario's
        declarative identity.
        """
        n_large = sum(
            count for class_name, count in self.fleet
            if class_name != "pi4b-4gb"
        )
        federation = FederationConfig(
            n_hosts=self.n_hosts,
            n_leis=self.n_leis,
            n_large_hosts=n_large,
            interval_seconds=self.interval_seconds,
            link_mbps=self.link_mbps,
            fleet=self.fleet,
        )
        faults = self.faults
        if self.chaos is not None and len(self.chaos):
            # The schedule travels as plain rows so the compiled config
            # stays picklable and hashable across process/fleet workers.
            faults = replace(faults, chaos=self.chaos.to_rows())
        return ExperimentConfig(
            federation=federation,
            workload=self.workload,
            faults=faults,
            n_intervals=self.n_intervals if n_intervals is None else n_intervals,
            alpha=self.alpha,
            beta=self.beta,
            seed=seed,
        )

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A copy with ``changes`` applied (dataclasses.replace sugar)."""
        return replace(self, **changes)


def build_topology(spec: ScenarioSpec) -> Topology:
    """Instantiate a scenario's topology preset.

    ``balanced`` is the paper's starting topology: the first ``n_leis``
    hosts are brokers with workers dealt round-robin.  ``skewed`` keeps
    the same brokers but concentrates roughly half of all workers under
    the first broker, modelling a federation that has grown around one
    dominant site -- a harsher starting point for load-balancing
    resilience models.
    """
    if spec.topology == "balanced":
        return initial_topology(spec.n_hosts, spec.n_leis)
    if spec.topology == "skewed":
        n_hosts, n_leis = spec.n_hosts, spec.n_leis
        brokers = list(range(n_leis))
        workers = list(range(n_leis, n_hosts))
        heavy = workers[: len(workers) // 2 + 1]
        rest = workers[len(heavy):]
        assignment = {worker: brokers[0] for worker in heavy}
        if n_leis > 1:
            for offset, worker in enumerate(rest):
                assignment[worker] = brokers[1 + offset % (n_leis - 1)]
        else:
            for worker in rest:
                assignment[worker] = brokers[0]
        return Topology(n_hosts, brokers, assignment)
    raise ValueError(f"unknown topology preset {spec.topology!r}")
