"""Command-line entry point: ``python -m repro <command>``.

Regenerates any paper artifact from the terminal without touching the
pytest harness:

    python -m repro table1
    python -m repro fig2 [--intervals N]
    python -m repro fig4
    python -m repro fig5 [--models CAROL,DYVERSE,...] [--intervals N]
    python -m repro fig6a | fig6b | fig6c

Artifact commands accept ``--seed`` and run at CI scale by default;
``--paper-scale`` switches to the 16-host / 4-LEI testbed shape
(substantially slower).

The scenario subsystem adds two commands:

    python -m repro scenarios list
    python -m repro scenarios show <name>
    python -m repro campaign --scenarios paper-default,correlated-rack \\
        --models carol --seeds 2 --workers 4
    python -m repro campaign --ci

``--shared-assets`` trains CAROL-family offline assets once per
scenario instead of once per run; ``--fleet`` additionally runs the
campaign through the shared scoring service of :mod:`repro.serving`
(``--ci --fleet`` runs the tiny fleet smoke grid).  The §VI proactive
scheme is a first-class campaign model (``--models carol-proactive``,
alias ``proactive``) in every mode -- in fleet mode its fine-tuned
replicas stay on the scoring service via per-client weight overlays.
``--record-json PATH`` dumps the full per-run records (metrics +
scorer diagnostics) as JSON; CI uploads the fleet smokes' dumps as
build artifacts.

Multi-node fleets split the two halves across commands::

    # machine A: host the scoring service (trains/publishes assets)
    python -m repro serve --ci --expect-workers 2 --port 7911

    # machine B (or the same box): run the simulation workers
    python -m repro campaign --ci --fleet --transport tcp \\
        --connect hostA:7911 --workers 2

``--transport tcp`` without ``--connect`` self-hosts the service on an
ephemeral localhost port (single-box TCP mode); both sides must be
launched with the same grid flags so the asset catalogs agree.

The service is *elastic* (see :mod:`repro.serving`): cells are leased
one at a time from a coordinator-held queue, late workers may join a
running campaign, dead workers' cells are re-queued with a bounded
retry budget (``--retry-budget``), liveness rides on heartbeats
(``--heartbeat-timeout``), and ``--auth-token`` (or the
``REPRO_FLEET_TOKEN`` environment variable) gates handshakes with a
pre-shared token.  ``serve --status-port N`` additionally exposes the
``POST /inject`` chaos control plane (kill_worker / delay_client /
drop_next_reply / requeue_cell) next to ``GET /status``.

``python -m repro export-gon model.npz`` trains a scenario's GON
offline and dumps a standalone, verified inference pack for external
graph-free tooling.

Chaos fuzzing (:mod:`repro.chaos`)::

    python -m repro fuzz --scenario paper-default --model DYVERSE \\
        --budget 32 --seed 7 --report-json fuzz.json
    python -m repro fuzz --ci --fleet --workers 2
    python -m repro fuzz --replay benchmarks/chaos_corpus/<file>.json \\
        --record-json replay.json

``fuzz`` samples seeded random :class:`~repro.chaos.ChaosSchedule`\\ s
over a base scenario, evaluates each as a paired-seed single-scenario
campaign (any execution mode), scores the QoS delta against the
unperturbed baseline and shrinks cliffs to minimal failing schedules;
``--replay`` re-runs one schedule from a replay/corpus file so its
records can be gated bit-identical across modes with
``benchmarks/compare_records.py``.

Observability (:mod:`repro.telemetry`): every ``--record-json`` dump
carries the campaign's merged telemetry snapshot under ``"telemetry"``;
``python -m repro telemetry dump.json`` pretty-prints it (``--json``
re-extracts it for CI artifacts).  ``serve --status-port N`` binds a
read-only HTTP endpoint next to the scoring socket -- ``GET /status``
answers live JSON (workers connected, cells in flight, merged
telemetry) and ``GET /metrics`` flat ``name value`` text.

Durable campaigns (:mod:`repro.storage`): ``campaign --store sqlite
--store-path runs.db`` persists every finished cell as it lands, so a
killed campaign re-run with the same flags restores completed cells
from the store instead of re-executing them (``fleet.cells_resumed``
in the telemetry counts the skips).  ``serve --store sqlite
--store-path runs.db`` does the same on the service side -- stored
cells are never leased to workers.  The ``store`` family inspects a
database::

    python -m repro store list runs.db
    python -m repro store show runs.db [--campaign HASH]
    python -m repro store export runs.db dump.json

``export`` writes a ``--record-json``-shaped dump; ``repro telemetry``
and ``benchmarks/compare_records.py`` also accept a store file
directly anywhere they accept a records JSON.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace


def _resolve_auth_token(args) -> str:
    """--auth-token wins; else the REPRO_FLEET_TOKEN environment."""
    if args.auth_token is not None:
        return args.auth_token
    return os.environ.get("REPRO_FLEET_TOKEN", "")


def _base_config(args):
    from .config import ci_scale, paper_scale

    config = paper_scale() if args.paper_scale else ci_scale(seed=args.seed)
    if args.paper_scale and args.seed:
        config = replace(config, seed=args.seed)
    if args.intervals:
        config = replace(config, n_intervals=args.intervals)
    return config


def _cmd_table1(args) -> int:
    from .experiments import format_table1, verify_against_implementation

    print(format_table1())
    consistency = verify_against_implementation()
    bad = [work for work, ok in consistency.items() if not ok]
    if bad:
        print(f"WARNING: implementation inconsistent for {bad}")
        return 1
    print("\nconsistency check vs implemented classes: OK")
    return 0


def _cmd_fig2(args) -> int:
    from .experiments import Fig2Config, format_fig2, run_fig2

    config = Fig2Config(base=_base_config(args),
                        n_intervals=args.intervals or 60)
    print(format_fig2(run_fig2(config)))
    return 0


def _cmd_fig4(args) -> int:
    from .experiments import Fig4Config, format_fig4, run_fig4

    print(format_fig4(run_fig4(Fig4Config(base=_base_config(args)))))
    return 0


def _cmd_fig5(args) -> int:
    from .experiments import Fig5Config, format_results, headline_deltas, run_fig5

    models = args.models.split(",") if args.models else None
    config = Fig5Config(base=_base_config(args), models=models)
    if args.trace_intervals:
        config.trace_intervals = args.trace_intervals
    results = run_fig5(config)
    print(format_results(results))
    if "CAROL" in results and models is None:
        print("\nheadline deltas vs baselines:")
        for key, value in headline_deltas(results).items():
            print(f"  {key}: {value:+.1f}%")
    return 0


def _cmd_fig6(args, panel: str) -> int:
    from .experiments import (
        Fig6Config,
        format_sweep,
        run_learning_rate_sweep,
        run_memory_sweep,
        run_tabu_sweep,
    )

    config = Fig6Config(base=_base_config(args))
    if panel == "a":
        points = run_learning_rate_sweep(config)
        print(format_sweep("-- Fig. 6(a): learning rate --", "gamma", points))
    elif panel == "b":
        points = run_memory_sweep(config)
        print(format_sweep("-- Fig. 6(b): memory footprint --", "layers", points))
    else:
        points = run_tabu_sweep(config)
        print(format_sweep("-- Fig. 6(c): tabu list size --", "tabu size", points))
    return 0


def _cmd_scenarios(args) -> int:
    from .scenarios import all_scenarios, get_scenario

    if args.action == "list":
        specs = all_scenarios()
        width = max(len(spec.name) for spec in specs)
        print(f"{len(specs)} registered scenarios:\n")
        for spec in specs:
            fleet = ", ".join(f"{n}x {c}" for c, n in spec.fleet)
            print(f"  {spec.name.ljust(width)}  [{fleet}; {spec.n_leis} LEIs]")
            print(f"  {' ' * width}  {spec.description}")
        return 0
    # show
    if not args.name:
        print("scenarios show requires a scenario name", file=sys.stderr)
        return 2
    import json

    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(json.dumps(spec.to_dict(), indent=2))
    return 0


def _cmd_campaign(args) -> int:
    from .experiments import (
        CampaignConfig,
        ci_campaign_config,
        fleet_ci_campaign_config,
        run_campaign,
    )

    transport = args.transport or ("tcp" if args.connect else "queue")
    if args.ci:
        if args.fleet:
            config = fleet_ci_campaign_config(workers=args.workers)
        else:
            config = ci_campaign_config(workers=args.workers)
        overrides = {}
        if args.shared_assets and not config.shared_assets:
            # Honour the flag on the smoke grid too (a no-op for its
            # heuristic models, but never silently ignored).
            overrides["shared_assets"] = True
        if transport != "queue" or args.connect:
            # Applied regardless of --fleet so a forgotten flag fails
            # config validation loudly instead of silently running a
            # local process campaign while a remote service waits.
            overrides["transport"] = transport
            overrides["service_addr"] = args.connect
        if args.scorer_backend != "exact":
            overrides["scorer_backend"] = args.scorer_backend
        if args.store != "memory" or args.store_path:
            overrides["store"] = args.store
            overrides["store_path"] = args.store_path
        auth_token = _resolve_auth_token(args)
        if auth_token:
            overrides["auth_token"] = auth_token
        if overrides:
            try:
                config = replace(config, **overrides)
            except ValueError as error:
                print(error, file=sys.stderr)
                return 2
    else:
        if not args.scenarios:
            print("campaign requires --scenarios (or --ci)", file=sys.stderr)
            return 2
        try:
            config = CampaignConfig(
                scenarios=tuple(
                    s.strip() for s in args.scenarios.split(",") if s.strip()
                ),
                models=tuple(
                    m for m in (args.models or "carol").split(",") if m.strip()
                ),
                n_seeds=args.seeds,
                workers=args.workers,
                seed=args.seed,
                n_intervals=args.intervals or None,
                mode="fleet" if args.fleet else "process",
                # Passed through unconditionally: --transport tcp
                # without --fleet must fail validation loudly, never
                # silently run a local queue campaign.
                transport=transport,
                service_addr=args.connect,
                shared_assets=args.shared_assets or args.fleet,
                scorer_backend=args.scorer_backend,
                auth_token=_resolve_auth_token(args),
                store=args.store,
                store_path=args.store_path,
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    from .serving import TransportError
    from .storage import StoreError

    try:
        result = run_campaign(config)
    except (KeyError, ValueError) as error:
        # Typo'd scenario or model names: the registries raise with the
        # full catalog in the message; surface it without a traceback.
        message = error.args[0] if error.args else str(error)
        print(message, file=sys.stderr)
        return 2
    except StoreError as error:
        print(f"campaign store refused: {error}", file=sys.stderr)
        return 2
    except TransportError as error:
        print(f"fleet transport failed: {error}", file=sys.stderr)
        return 1
    if args.record_json:
        import json

        with open(args.record_json, "w") as sink:
            json.dump(result.to_payload(), sink, indent=2)
        print(f"wrote {len(result.records)} records to {args.record_json}")
    print(result.format_summary())
    return 0


def _cmd_fuzz(args) -> int:
    import json

    from .chaos.fuzz import (
        FuzzConfig,
        evaluation_campaign_config,
        register_fuzz_scenario,
        run_fuzz,
    )
    from .chaos.report import format_fuzz_report, load_replay_file
    from .experiments import run_campaign
    from .scenarios import get_scenario
    from .serving import TransportError
    from .storage import StoreError

    transport = args.transport or ("tcp" if args.connect else "queue")
    mode = "fleet" if args.fleet else "process"
    plumbing = dict(
        mode=mode,
        workers=args.workers,
        transport=transport,
        service_addr=args.connect,
        scorer_backend=args.scorer_backend,
        auth_token=_resolve_auth_token(args),
        store=args.store,
        store_path=args.store_path,
    )

    try:
        if args.replay:
            data = load_replay_file(args.replay)
            config = FuzzConfig(
                scenario=str(data["scenario"]),
                model=str(data.get("model", "DYVERSE")),
                n_seeds=int(data.get("n_seeds", 1)),
                seed=int(data.get("seed", 0)),
                n_intervals=(
                    int(data["n_intervals"])
                    if data.get("n_intervals") is not None else None
                ),
                **plumbing,
            )
            schedule = data["schedule"]
            name = register_fuzz_scenario(
                get_scenario(config.scenario), schedule
            )
            result = run_campaign(evaluation_campaign_config(config, name))
            if args.record_json:
                with open(args.record_json, "w") as sink:
                    json.dump(result.to_payload(), sink, indent=2)
                print(
                    f"wrote {len(result.records)} records to "
                    f"{args.record_json}"
                )
            print(
                f"replayed schedule {schedule.short_id()} "
                f"({len(schedule)} events) over {config.scenario!r}"
            )
            print(result.format_summary())
            return 0

        if args.ci:
            # The seeded smoke preset: tiny budget, short horizon,
            # asset-free model -- a full sample/evaluate/shrink pass
            # in CI time.
            config = FuzzConfig(
                scenario=args.scenario,
                model="DYVERSE",
                budget=8,
                n_seeds=1,
                seed=args.seed,
                n_intervals=12,
                max_events=3,
                threshold=args.threshold,
                shrink=not args.no_shrink,
                **plumbing,
            )
        else:
            config = FuzzConfig(
                scenario=args.scenario,
                model=args.model,
                budget=args.budget,
                n_seeds=args.seeds,
                seed=args.seed,
                n_intervals=args.intervals or None,
                max_events=args.max_events,
                threshold=args.threshold,
                shrink=not args.no_shrink,
                **plumbing,
            )
        result = run_fuzz(config, progress=print)
    except (OSError, KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(message, file=sys.stderr)
        return 2
    except StoreError as error:
        print(f"campaign store refused: {error}", file=sys.stderr)
        return 2
    except TransportError as error:
        print(f"fleet transport failed: {error}", file=sys.stderr)
        return 1
    print(format_fuzz_report(result, worst=args.worst))
    if args.report_json:
        with open(args.report_json, "w") as sink:
            json.dump(result.to_payload(), sink, indent=2, sort_keys=True)
        print(
            f"wrote fuzz report ({len(result.outcomes)} schedules, "
            f"{len(result.cliffs)} cliffs) to {args.report_json}"
        )
    return 0


def _cmd_serve(args) -> int:
    from .experiments import (
        CampaignConfig,
        fleet_ci_campaign_config,
        plan_tasks,
        prepare_campaign_assets,
    )
    from .experiments.fleet import serve_fleet_service
    from .serving import TransportError

    # --min-workers / --max-idle are the elastic-era spellings;
    # --expect-workers / --idle-timeout remain as aliases.
    expect_workers = (
        args.min_workers if args.min_workers is not None
        else args.expect_workers
    )
    idle_timeout = (
        args.max_idle if args.max_idle is not None else args.idle_timeout
    )
    auth_token = _resolve_auth_token(args)
    if args.ci:
        config = fleet_ci_campaign_config(workers=expect_workers)
    else:
        if not args.scenarios:
            print("serve requires --scenarios (or --ci)", file=sys.stderr)
            return 2
        try:
            config = CampaignConfig(
                scenarios=tuple(
                    s.strip() for s in args.scenarios.split(",") if s.strip()
                ),
                models=tuple(
                    m for m in (args.models or "carol").split(",") if m.strip()
                ),
                n_seeds=args.seeds,
                workers=expect_workers,
                seed=args.seed,
                n_intervals=args.intervals or None,
                mode="fleet",
                scorer_backend=args.scorer_backend,
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    try:
        config = replace(
            config,
            transport="tcp",
            workers=expect_workers,
            heartbeat_timeout=args.heartbeat_timeout,
            cell_retry_budget=args.retry_budget,
            auth_token=auth_token,
            store=args.store,
            store_path=args.store_path,
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if args.scorer_backend != "exact":
        config = replace(config, scorer_backend=args.scorer_backend)

    try:
        tasks = plan_tasks(config)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(message, file=sys.stderr)
        return 2
    print(
        f"preparing shared assets for {len(config.scenarios)} scenario(s)...",
        flush=True,
    )
    assets = prepare_campaign_assets(config, tasks)

    def ready(host: str, port: int) -> None:
        print(
            f"fleet scoring service listening on {host}:{port} "
            f"(expecting {expect_workers} workers, late joiners welcome; "
            f"connect with `python -m repro campaign ... --fleet "
            f"--transport tcp --connect {host}:{port}`)",
            flush=True,
        )

    telemetry_sink: list = []
    try:
        stats = serve_fleet_service(
            config,
            assets,
            host=args.host,
            port=args.port,
            n_clients=expect_workers,
            idle_timeout=idle_timeout,
            on_ready=ready,
            status_port=args.status_port if args.status_port >= 0 else None,
            telemetry_sink=telemetry_sink,
            auth_token=auth_token,
        )
    except (TransportError, RuntimeError) as error:
        print(f"scoring service failed: {error}", file=sys.stderr)
        return 1
    print(
        f"service done: {stats.n_requests} requests / {stats.n_elements} "
        f"stacked candidates in {stats.n_batches} batches; "
        f"{stats.overlay_installs} overlay installs, "
        f"{stats.overlay_evictions} evictions"
    )
    if args.telemetry_json and telemetry_sink:
        import json

        with open(args.telemetry_json, "w") as sink:
            json.dump(telemetry_sink[0], sink, indent=2, sort_keys=True)
        print(f"wrote merged fleet telemetry to {args.telemetry_json}")
    return 0


def _cmd_export_gon(args) -> int:
    """Train a scenario's GON offline and dump a standalone inference pack.

    The ``.npz`` holds the verified :class:`~repro.nn.serialization.
    InferencePack` arrays plus a ``__meta__`` JSON blob (architecture
    + provenance), so external tooling can run graph-free inference
    without importing the training stack.
    """
    import json

    import numpy as np

    from .experiments import CampaignConfig, prepare_campaign_assets
    from .experiments.fleet import _mount_gon
    from .nn.serialization import export_inference, verify_inference_pack

    try:
        config = CampaignConfig(
            scenarios=(args.scenario,),
            models=("CAROL",),
            seed=args.seed,
            trace_intervals=args.trace_intervals,
            gon_hidden=args.gon_hidden,
            gon_layers=args.gon_layers,
            gon_epochs=args.gon_epochs,
            shared_assets=True,
        )
        assets = prepare_campaign_assets(config)[args.scenario]
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(message, file=sys.stderr)
        return 2
    model = _mount_gon(
        assets.gon_state, assets.gon_hidden, assets.gon_layers, assets.seed
    )
    meta = {
        "scenario": args.scenario,
        "seed": args.seed,
        "asset_seed": assets.seed,
        "gan_seed": assets.gan_seed,
        "gon_hidden": assets.gon_hidden,
        "gon_layers": assets.gon_layers,
        "trace_intervals": args.trace_intervals,
        "gon_epochs": args.gon_epochs,
        "dtype": args.dtype,
    }
    pack = export_inference(model, meta=meta, dtype=args.dtype)
    if args.dtype == "float64":
        # The float32 cast is deliberately lossy; only float64 packs
        # can promise the bit-exact round-trip verify checks.
        verify_inference_pack(pack, model)
    header = dict(meta, arrays=sorted(pack.arrays))
    np.savez(
        args.output,
        __meta__=np.frombuffer(
            json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        **pack.arrays,
    )
    with np.load(args.output) as reloaded:
        for name, array in pack.arrays.items():
            if not np.array_equal(reloaded[name], array):
                print(
                    f"export verification failed: {name} did not "
                    "round-trip bit-exactly through the npz",
                    file=sys.stderr,
                )
                return 1
    n_params = sum(int(a.size) for a in pack.arrays.values())
    print(
        f"wrote {args.output}: {len(pack.arrays)} arrays / {n_params} "
        f"parameters ({args.dtype}), scenario {args.scenario!r} "
        f"seed {args.seed}"
    )
    return 0


def _cmd_telemetry(args) -> int:
    """Pretty-print (or re-extract) a record dump's telemetry section.

    ``records`` may be a ``campaign --record-json`` dump *or* a
    ``--store sqlite`` database (sniffed by magic bytes); for a store
    the accumulated telemetry of the selected campaign is shown.
    """
    import json

    from .storage import StoreError, is_sqlite_store, open_store
    from .telemetry import render_summary

    if is_sqlite_store(args.records):
        try:
            with open_store("sqlite", args.records) as store:
                payload = store.export_payload(
                    store.resolve_campaign(getattr(args, "campaign", ""))
                )
        except StoreError as error:
            print(f"cannot read {args.records}: {error}", file=sys.stderr)
            return 2
    else:
        try:
            with open(args.records) as source:
                payload = json.load(source)
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read {args.records}: {error}", file=sys.stderr)
            return 2
    snapshot = payload.get("telemetry") if isinstance(payload, dict) else None
    if not snapshot:
        print(
            f"{args.records} carries no telemetry section (older dump, "
            "or the campaign ran with REPRO_TELEMETRY=0)",
            file=sys.stderr,
        )
        return 1
    if args.json:
        with open(args.json, "w") as sink:
            json.dump(snapshot, sink, indent=2, sort_keys=True)
        print(f"wrote telemetry snapshot to {args.json}")
        return 0
    print(render_summary(snapshot, title=f"-- telemetry: {args.records} --"))
    return 0


def _cmd_store(args) -> int:
    """Inspect a campaign store: ``store list | show | export``."""
    import json

    from .storage import (
        StoreError,
        is_sqlite_store,
        open_store,
        short_hash,
    )

    if not is_sqlite_store(args.path):
        print(
            f"{args.path} is not a campaign store (sqlite database)",
            file=sys.stderr,
        )
        return 2
    try:
        with open_store("sqlite", args.path) as store:
            if args.action == "list":
                rows = store.campaigns()
                if args.json:
                    print(json.dumps(
                        [
                            {
                                "config_hash": row.config_hash,
                                "cells_completed": row.cells_completed,
                                "cells_total": row.cells_total,
                                "grid": row.grid,
                            }
                            for row in rows
                        ],
                        indent=2, sort_keys=True,
                    ))
                    return 0
                print(f"{len(rows)} campaign(s) in {args.path}:\n")
                for row in rows:
                    grid = row.grid
                    print(
                        f"  {short_hash(row.config_hash)}  "
                        f"{row.cells_completed}/{row.cells_total} cells  "
                        f"scenarios={','.join(grid.get('scenarios', ()))}  "
                        f"models={','.join(grid.get('models', ()))}  "
                        f"seeds={grid.get('n_seeds')}"
                    )
                return 0
            config_hash = store.resolve_campaign(args.campaign)
            payload = store.export_payload(config_hash)
            if args.action == "export":
                with open(args.output, "w") as sink:
                    json.dump(payload, sink, indent=2)
                print(
                    f"exported campaign {short_hash(config_hash)} "
                    f"({len(payload['records'])} records) to {args.output}"
                )
                return 0
            # show
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
            grid = payload["config"]
            total = (
                len(grid.get("scenarios", ()))
                * len(grid.get("models", ()))
                * int(grid.get("n_seeds", 0))
            )
            print(f"campaign {config_hash}")
            print(f"  scenarios: {', '.join(grid.get('scenarios', ()))}")
            print(f"  models:    {', '.join(grid.get('models', ()))}")
            print(
                f"  seeds:     {grid.get('n_seeds')}  "
                f"(seed {grid.get('seed')}, "
                f"{grid.get('n_intervals')} intervals)"
            )
            print(f"  records:   {len(payload['records'])}/{total} cells")
            for record in payload["records"]:
                print(
                    f"    [{record['run_index']:>3}] "
                    f"{record['scenario']} / {record['model']} "
                    f"/ seed {record['seed_index']}"
                )
            return 0
    except (StoreError, OSError) as error:
        print(f"store command failed: {error}", file=sys.stderr)
        return 2


def _add_artifact_options(parser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--intervals", type=int, default=0,
                        help="override the number of evaluation intervals")
    parser.add_argument("--models", type=str, default="",
                        help="fig5: comma-separated model subset")
    parser.add_argument("--trace-intervals", type=int, default=0,
                        help="fig5: override the training-trace length")
    parser.add_argument("--paper-scale", action="store_true",
                        help="16 hosts / 4 LEIs / 100 intervals (slow)")


def _shared_parents():
    """The flag sets shared by campaign / serve / fuzz.

    One definition per flag, inherited via ``parents=[...]``, so the
    three grid-running subcommands cannot drift apart in spelling,
    defaults or help text.
    """
    grid = argparse.ArgumentParser(add_help=False)
    grid.add_argument("--scenarios", type=str, default="",
                      help="comma-separated scenario names")
    grid.add_argument("--models", type=str, default="carol",
                      help="comma-separated model names, e.g. "
                           "carol,carol-proactive,dyverse (default: carol)")

    seeds = argparse.ArgumentParser(add_help=False)
    seeds.add_argument("--seeds", type=int, default=1,
                       help="independent repetitions per cell")
    seeds.add_argument("--seed", type=int, default=0,
                       help="campaign root seed")
    seeds.add_argument("--intervals", type=int, default=0,
                       help="override each scenario's interval count")
    seeds.add_argument("--ci", action="store_true",
                       help="use this command's small CI-scale preset")

    backend = argparse.ArgumentParser(add_help=False)
    backend.add_argument("--scorer-backend", type=str, default="exact",
                         choices=["exact", "fast", "fast32"],
                         help="GON ascent engine for CAROL-family models: "
                              "'exact' (autodiff oracle, default), 'fast' "
                              "(graph-free fused float64 kernels), or "
                              "'fast32' (same kernels in float32)")
    backend.add_argument("--auth-token", type=str, default=None,
                         help="pre-shared fleet auth token for TCP "
                              "transports (default: the REPRO_FLEET_TOKEN "
                              "environment variable)")
    backend.add_argument("--store", type=str, default="memory",
                         choices=["memory", "sqlite"],
                         help="campaign record store: 'memory' (default; "
                              "nothing persists) or 'sqlite' (persist each "
                              "finished cell; re-running the same grid "
                              "resumes, skipping stored cells)")
    backend.add_argument("--store-path", type=str, default="",
                         help="sqlite store database file (required with "
                              "--store sqlite)")

    transport = argparse.ArgumentParser(add_help=False)
    transport.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = serial)")
    transport.add_argument("--fleet", action="store_true",
                           help="fleet mode: shared assets + one batched "
                                "GON scoring service")
    transport.add_argument("--transport", type=str, default="",
                           choices=["", "queue", "tcp"],
                           help="fleet plumbing: 'queue' (single machine, "
                                "default) or 'tcp' (sockets; multi-node "
                                "capable)")
    transport.add_argument("--connect", type=str, default="",
                           help="host:port of an external scoring service "
                                "(python -m repro serve); implies "
                                "--transport tcp")
    return grid, seeds, backend, transport


ARTIFACTS = ("table1", "fig2", "fig4", "fig5", "fig6a", "fig6b", "fig6c")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate CAROL (DSN 2022) paper artifacts and run "
            "scenario campaigns."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True,
                                       metavar="command")
    for artifact in ARTIFACTS:
        sub = subparsers.add_parser(
            artifact, help=f"regenerate paper artifact {artifact}"
        )
        _add_artifact_options(sub)

    scenarios = subparsers.add_parser(
        "scenarios", help="inspect the declarative scenario catalog"
    )
    scenarios.add_argument("action", choices=["list", "show"])
    scenarios.add_argument("name", nargs="?", default="",
                           help="scenario name (for show)")

    grid_parent, seeds_parent, backend_parent, transport_parent = (
        _shared_parents()
    )

    campaign = subparsers.add_parser(
        "campaign", help="run a scenario x model x seed grid",
        parents=[grid_parent, seeds_parent, backend_parent, transport_parent],
    )
    campaign.add_argument("--shared-assets", action="store_true",
                          help="train CAROL-family assets once per "
                               "scenario (campaign-root seeded)")
    campaign.add_argument("--record-json", type=str, default="",
                          help="write per-run records (metrics + scorer "
                               "diagnostics) to this JSON file")

    serve = subparsers.add_parser(
        "serve",
        help="host a TCP GON scoring service for remote fleet workers",
        parents=[grid_parent, seeds_parent, backend_parent],
    )
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address (0.0.0.0 to accept remote "
                            "machines)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (0 picks an ephemeral port, "
                            "printed on startup)")
    serve.add_argument("--expect-workers", type=int, default=2,
                       help="expected fleet size (status display + "
                            "asset sizing); the elastic service "
                            "accepts late joiners beyond it and exits "
                            "when the cell queue is drained")
    serve.add_argument("--min-workers", type=int, default=None,
                       help="elastic-era alias for --expect-workers")
    serve.add_argument("--idle-timeout", type=float, default=600.0,
                       help="abort (exit nonzero) after this many "
                            "seconds without non-heartbeat traffic; "
                            "0 waits forever")
    serve.add_argument("--max-idle", type=float, default=None,
                       help="elastic-era alias for --idle-timeout")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       help="declare a worker lost (and re-queue its "
                            "leased cell) when its last frame is older "
                            "than this many seconds; 0 disables")
    serve.add_argument("--retry-budget", type=int, default=3,
                       help="failed attempts a cell gets before it is "
                            "quarantined as poisoned")
    serve.add_argument("--status-port", type=int, default=-1,
                       help="bind a read-only HTTP status endpoint on "
                            "this port (/status JSON + /metrics text; "
                            "0 picks an ephemeral port, printed on "
                            "startup; default: no endpoint)")
    serve.add_argument("--telemetry-json", type=str, default="",
                       help="write the final merged fleet telemetry "
                            "snapshot to this JSON file")

    fuzz = subparsers.add_parser(
        "fuzz",
        help="fuzz a scenario with random seeded chaos schedules and "
             "shrink any QoS cliffs found",
        parents=[seeds_parent, backend_parent, transport_parent],
    )
    fuzz.add_argument("--scenario", type=str, default="paper-default",
                      help="base catalog scenario to perturb")
    fuzz.add_argument("--model", type=str, default="DYVERSE",
                      help="resilience model under test (default: "
                           "DYVERSE, a fast trained-asset-free baseline)")
    fuzz.add_argument("--budget", type=int, default=16,
                      help="number of random schedules to evaluate")
    fuzz.add_argument("--max-events", type=int, default=4,
                      help="maximum events per sampled schedule")
    fuzz.add_argument("--threshold", type=float, default=0.05,
                      help="QoS-delta score at which a schedule counts "
                           "as a cliff (and gets shrunk)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report cliffs without shrinking them")
    fuzz.add_argument("--worst", type=int, default=5,
                      help="cliffs shown in the report table")
    fuzz.add_argument("--report-json", type=str, default="",
                      help="write the full fuzz session (schedules, "
                           "scores, shrunk forms) to this JSON file")
    fuzz.add_argument("--replay", type=str, default="",
                      help="replay one schedule from a corpus/replay "
                           "JSON file instead of fuzzing")
    fuzz.add_argument("--record-json", type=str, default="",
                      help="with --replay: write the replay campaign's "
                           "per-run records to this JSON file "
                           "(compare_records.py-compatible)")

    export_gon = subparsers.add_parser(
        "export-gon",
        help="train a scenario's GON offline and dump a standalone "
             "inference pack as .npz",
    )
    export_gon.add_argument("output",
                            help="output path, e.g. model.npz")
    export_gon.add_argument("--scenario", type=str, default="paper-default",
                            help="scenario whose trace trains the GON")
    export_gon.add_argument("--seed", type=int, default=0,
                            help="campaign root seed (drives training)")
    export_gon.add_argument("--dtype", type=str, default="float64",
                            choices=["float64", "float32"],
                            help="exported parameter dtype (float64 is "
                                 "verified bit-exact against the live "
                                 "model)")
    export_gon.add_argument("--trace-intervals", type=int, default=40,
                            help="offline DeFog trace length")
    export_gon.add_argument("--gon-hidden", type=int, default=24,
                            help="GON hidden width")
    export_gon.add_argument("--gon-layers", type=int, default=2,
                            help="GON layer count")
    export_gon.add_argument("--gon-epochs", type=int, default=6,
                            help="GON training epochs")

    telemetry = subparsers.add_parser(
        "telemetry",
        help="pretty-print the telemetry section of a --record-json "
             "dump or a campaign store database",
    )
    telemetry.add_argument("records",
                           help="path of a `campaign --record-json` dump "
                                "or a `--store sqlite` database")
    telemetry.add_argument("--campaign", type=str, default="",
                           help="campaign config-hash prefix (store "
                                "files holding several campaigns)")
    telemetry.add_argument("--json", type=str, default="",
                           help="instead of pretty-printing, write the "
                                "raw telemetry snapshot to this file")

    store = subparsers.add_parser(
        "store",
        help="inspect a durable campaign store (list / show / export)",
    )
    store.add_argument("action", choices=["list", "show", "export"],
                       help="list campaigns, show one campaign's cells, "
                            "or export one campaign as a records JSON")
    store.add_argument("path", help="campaign store database file")
    store.add_argument("output", nargs="?", default="",
                       help="output JSON path (export)")
    store.add_argument("--campaign", type=str, default="",
                       help="campaign config-hash prefix (defaults to "
                            "the store's only campaign)")
    store.add_argument("--json", action="store_true",
                       help="machine-readable output (list / show)")

    args = parser.parse_args(argv)

    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "fig2":
        return _cmd_fig2(args)
    if args.command == "fig4":
        return _cmd_fig4(args)
    if args.command == "fig5":
        return _cmd_fig5(args)
    if args.command in ("fig6a", "fig6b", "fig6c"):
        return _cmd_fig6(args, args.command[-1])
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "store":
        if args.action == "export" and not args.output:
            print("store export requires an output path", file=sys.stderr)
            return 2
        return _cmd_store(args)
    if args.command == "export-gon":
        return _cmd_export_gon(args)
    return _cmd_campaign(args)


if __name__ == "__main__":
    sys.exit(main())
