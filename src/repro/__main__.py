"""Command-line entry point: ``python -m repro <artifact>``.

Regenerates any paper artifact from the terminal without touching the
pytest harness:

    python -m repro table1
    python -m repro fig2 [--intervals N]
    python -m repro fig4
    python -m repro fig5 [--models CAROL,DYVERSE,...] [--intervals N]
    python -m repro fig6a | fig6b | fig6c

All commands accept ``--seed`` and run at CI scale by default;
``--paper-scale`` switches to the 16-host / 4-LEI testbed shape
(substantially slower).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace


def _base_config(args):
    from .config import ci_scale, paper_scale

    config = paper_scale() if args.paper_scale else ci_scale(seed=args.seed)
    if args.paper_scale and args.seed:
        config = replace(config, seed=args.seed)
    if args.intervals:
        config = replace(config, n_intervals=args.intervals)
    return config


def _cmd_table1(args) -> int:
    from .experiments import format_table1, verify_against_implementation

    print(format_table1())
    consistency = verify_against_implementation()
    bad = [work for work, ok in consistency.items() if not ok]
    if bad:
        print(f"WARNING: implementation inconsistent for {bad}")
        return 1
    print("\nconsistency check vs implemented classes: OK")
    return 0


def _cmd_fig2(args) -> int:
    from .experiments import Fig2Config, format_fig2, run_fig2

    config = Fig2Config(base=_base_config(args),
                        n_intervals=args.intervals or 60)
    print(format_fig2(run_fig2(config)))
    return 0


def _cmd_fig4(args) -> int:
    from .experiments import Fig4Config, format_fig4, run_fig4

    print(format_fig4(run_fig4(Fig4Config(base=_base_config(args)))))
    return 0


def _cmd_fig5(args) -> int:
    from .experiments import Fig5Config, format_results, headline_deltas, run_fig5

    models = args.models.split(",") if args.models else None
    config = Fig5Config(base=_base_config(args), models=models)
    if args.trace_intervals:
        config.trace_intervals = args.trace_intervals
    results = run_fig5(config)
    print(format_results(results))
    if "CAROL" in results and models is None:
        print("\nheadline deltas vs baselines:")
        for key, value in headline_deltas(results).items():
            print(f"  {key}: {value:+.1f}%")
    return 0


def _cmd_fig6(args, panel: str) -> int:
    from .experiments import (
        Fig6Config,
        format_sweep,
        run_learning_rate_sweep,
        run_memory_sweep,
        run_tabu_sweep,
    )

    config = Fig6Config(base=_base_config(args))
    if panel == "a":
        points = run_learning_rate_sweep(config)
        print(format_sweep("-- Fig. 6(a): learning rate --", "gamma", points))
    elif panel == "b":
        points = run_memory_sweep(config)
        print(format_sweep("-- Fig. 6(b): memory footprint --", "layers", points))
    else:
        points = run_tabu_sweep(config)
        print(format_sweep("-- Fig. 6(c): tabu list size --", "tabu size", points))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate CAROL (DSN 2022) paper artifacts.",
    )
    parser.add_argument(
        "artifact",
        choices=["table1", "fig2", "fig4", "fig5", "fig6a", "fig6b", "fig6c"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--intervals", type=int, default=0,
                        help="override the number of evaluation intervals")
    parser.add_argument("--models", type=str, default="",
                        help="fig5: comma-separated model subset")
    parser.add_argument("--trace-intervals", type=int, default=0,
                        help="fig5: override the training-trace length")
    parser.add_argument("--paper-scale", action="store_true",
                        help="16 hosts / 4 LEIs / 100 intervals (slow)")
    args = parser.parse_args(argv)

    if args.artifact == "table1":
        return _cmd_table1(args)
    if args.artifact == "fig2":
        return _cmd_fig2(args)
    if args.artifact == "fig4":
        return _cmd_fig4(args)
    if args.artifact == "fig5":
        return _cmd_fig5(args)
    return _cmd_fig6(args, args.artifact[-1])


if __name__ == "__main__":
    sys.exit(main())
