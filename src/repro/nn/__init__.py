"""``repro.nn`` -- a from-scratch neural network library over numpy.

Replaces PyTorch (used by the paper) with a reverse-mode autodiff
engine plus the layer zoo the reproduction needs:

* :class:`~repro.nn.tensor.Tensor` -- autodiff arrays with gradients
  w.r.t. parameters *and* inputs (the GON generates samples by input-
  space gradient ascent, eq. 1);
* feed-forward, LSTM, graph-attention and 1-D convolution layers;
* Adam / SGD optimisers, losses, weight init and state-dict
  serialization.

Layers follow a batched convention: ops broadcast over leading axes,
so ``[B, n_hosts, F]`` stacks (with ``[B, n, n]`` adjacencies for the
graph layers) evaluate ``B`` samples in one vectorized pass -- see
:mod:`repro.nn.tensor` and :mod:`repro.core.surrogate`.
"""

from .activations import LeakyReLU, ReLU, Sigmoid, Tanh
from .conv import Conv1d, max_pool1d
from .dropout import Dropout
from .functional import (
    bce_with_logits,
    binary_cross_entropy,
    kl_gaussian,
    l1_loss,
    log_softmax,
    mse_loss,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from .gat import GraphAttention, GraphEncoder, adjacency_with_self_loops
from .linear import FeedForward, Linear
from .lstm import LSTM, LSTMAutoencoder, LSTMCell
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialization import load_module, load_state, save_module, save_state
from .tensor import Tensor, as_tensor, concatenate, stack, where
from .utils import EarlyStopping, minibatches, train_test_split

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "FeedForward",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "Dropout",
    "LSTM",
    "LSTMCell",
    "LSTMAutoencoder",
    "GraphAttention",
    "GraphEncoder",
    "adjacency_with_self_loops",
    "Conv1d",
    "max_pool1d",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "mse_loss",
    "l1_loss",
    "binary_cross_entropy",
    "bce_with_logits",
    "kl_gaussian",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "minibatches",
    "train_test_split",
    "EarlyStopping",
]
