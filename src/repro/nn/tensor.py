"""Reverse-mode automatic differentiation over numpy arrays.

The :class:`Tensor` class records a dynamic computation graph as
operations are applied, and :meth:`Tensor.backward` propagates gradients
through that graph in reverse topological order.

This substrate replaces PyTorch (which the paper uses) for every neural
model in the reproduction.  Two properties matter for CAROL in
particular:

* gradients are available with respect to *inputs* as well as
  parameters -- the GON generates samples by gradient ascent in the
  input space (eq. 1 of the paper);
* broadcasting follows numpy semantics, with gradients correctly
  reduced back to the operand shapes.

Batched convention
------------------
Every op broadcasts over leading axes, so a stack of ``B`` independent
samples is processed as one ``[B, ...]`` tensor: ``[B, n, F] @ [F, H]``
is a per-slice matmul whose weight gradient is summed over the batch by
:func:`_unbroadcast`, and reductions take explicit (possibly negative)
axes.  The whole nn/surrogate/search stack relies on this to score a
tabu neighbourhood in a single forward/backward pass -- see
:mod:`repro.core.surrogate` for the calling conventions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` into a float numpy array without copying tensors."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting may have (a) prepended axes and (b) stretched size-1
    axes.  The adjoint of broadcasting is summation over exactly those
    axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in a dynamic autodiff graph.

    Parameters
    ----------
    data:
        Array content (coerced to ``float64``).
    requires_grad:
        If true, gradients accumulate into :attr:`grad` on
        :meth:`backward`.
    name:
        Optional debugging label.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=_DEFAULT_DTYPE), self.data.shape)
        if self.grad is None:
            # The buffer may alias an upstream gradient, which is safe:
            # nothing in the engine or the optimisers mutates gradient
            # arrays in place (accumulation and clipping both rebind).
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (standard for scalar losses).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order over the reachable subgraph.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            node._backward_into(node_grad, grads)

    def _backward_into(self, grad: np.ndarray, grads: dict) -> None:
        """Invoke the local backward fn, routing parent grads via ``grads``.

        Leaf parents (no recorded backward fn: inputs, parameters)
        materialise ``.grad``; interior nodes only route through the
        ``grads`` dict, avoiding a second accumulation pass per node.
        """
        contributions: list[tuple[Tensor, np.ndarray]] = []

        def send(parent: "Tensor", g: np.ndarray) -> None:
            contributions.append((parent, g))

        self._backward(grad, send)  # type: ignore[call-arg]
        for parent, g in contributions:
            if not parent.requires_grad:
                continue
            g = _unbroadcast(np.asarray(g, dtype=_DEFAULT_DTYPE), parent.data.shape)
            if parent._backward is None:
                parent._accumulate(g)
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + g
            else:
                grads[key] = g

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)

        def backward(grad, send):
            send(self, grad)
            send(other_t, grad)

        return Tensor._make(self.data + other_t.data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad, send):
            send(self, -grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)

        def backward(grad, send):
            send(self, grad * other_t.data)
            send(other_t, grad * self.data)

        return Tensor._make(self.data * other_t.data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)

        def backward(grad, send):
            send(self, grad / other_t.data)
            send(other_t, -grad * self.data / (other_t.data ** 2))

        return Tensor._make(self.data / other_t.data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")

        def backward(grad, send):
            send(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)

        def backward(grad, send):
            # Guard each product on requires_grad: a frozen operand's
            # gradient gemm would be discarded by send() anyway, and
            # skipping it halves the backward cost of inference-time
            # ascents (the surrogate freezes model weights).
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                if self.requires_grad:
                    send(self, grad * b)
                if other_t.requires_grad:
                    send(other_t, grad * a)
            elif a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                if self.requires_grad:
                    send(self, grad @ b.T)
                if other_t.requires_grad:
                    send(other_t, np.outer(a, grad))
            elif b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                if self.requires_grad:
                    send(self, np.outer(grad, b))
                if other_t.requires_grad:
                    send(other_t, a.T @ grad)
            else:
                if self.requires_grad:
                    send(self, grad @ np.swapaxes(b, -1, -2))
                if other_t.requires_grad:
                    send(other_t, np.swapaxes(a, -1, -2) @ grad)

        return Tensor._make(self.data @ other_t.data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad, send):
            send(self, grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))

        def backward(grad, send):
            send(self, grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Differentiable ``np.swapaxes`` (used for batched transposes,
        e.g. ``[B, n, H] -> [B, H, n]`` in the batched attention path)."""
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        def backward(grad, send):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            send(self, full)

        return Tensor._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad, send):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            send(self, np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad, send):
            g = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(_DEFAULT_DTYPE)
            # Split gradient between ties, matching subgradient convention.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            send(self, mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad, send):
            send(self, grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad, send):
            send(self, grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad, send):
            send(self, grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad, send):
            send(self, grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad, send):
            send(self, grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad, send):
            send(self, grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(_DEFAULT_DTYPE)

        def backward(grad, send):
            send(self, grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Return ``value`` as a :class:`Tensor` (constants get no grad)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, send):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            send(tensor, grad[tuple(index)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(grad, send):
        for i, tensor in enumerate(tensors):
            index = [slice(None)] * grad.ndim
            index[axis] = i
            send(tensor, grad[tuple(index)])

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable ``np.where`` with a constant condition."""
    condition = np.asarray(condition, dtype=bool)
    a_t, b_t = as_tensor(a), as_tensor(b)

    def backward(grad, send):
        send(a_t, grad * condition)
        send(b_t, grad * (~condition))

    return Tensor._make(np.where(condition, a_t.data, b_t.data), (a_t, b_t), backward)
