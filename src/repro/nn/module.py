"""Module system: parameter containers with state-dict round-tripping.

A minimal analogue of ``torch.nn.Module``.  Submodules registered as
attributes are discovered automatically, parameters are named by their
attribute path, and :meth:`Module.state_dict` /
:meth:`Module.load_state_dict` serialise to plain dicts of arrays
(persisted via :mod:`repro.nn.serialization`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor flagged as trainable."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(path, parameter)`` pairs in deterministic order."""
        for key in sorted(vars(self)):
            value = getattr(self, key)
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{path}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for key in sorted(vars(self)):
            value = getattr(self, key)
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Training-state management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy all parameters into a flat ``{path: array}`` dict."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(
        self, state: Dict[str, np.ndarray], copy: bool = True
    ) -> None:
        """Load parameters in place; shapes must match exactly.

        ``copy=False`` adopts the incoming arrays directly (zero-copy)
        when dtype and shape already match -- the path used to mount
        read-only shared-memory weight views published by
        :mod:`repro.serving.shared` without duplicating them per
        process.  Such parameters cannot be trained until replaced with
        writable copies (see ``FleetScorer`` copy-on-write).
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            incoming = np.asarray(state[name])
            if incoming.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{incoming.shape} vs {parameter.data.shape}"
                )
            if not copy and incoming.dtype == parameter.data.dtype:
                parameter.data = incoming
            else:
                parameter.data = incoming.astype(
                    parameter.data.dtype, copy=True
                )

    # ------------------------------------------------------------------
    # Introspection used by the memory-footprint experiments (Fig. 5e/6b)
    # ------------------------------------------------------------------
    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def memory_bytes(self) -> int:
        """Parameter memory (weights + Adam moments, float64)."""
        # Weights plus two optimiser moment buffers, as held at runtime.
        return 3 * sum(p.data.nbytes for p in self.parameters())


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
