"""Activation layers usable inside :class:`repro.nn.module.Sequential`."""

from __future__ import annotations

from .module import Module
from .tensor import Tensor, as_tensor


class ReLU(Module):
    """Rectified linear unit layer."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).relu()


class Sigmoid(Module):
    """Logistic sigmoid layer (output head of the GON, eq. 5)."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).sigmoid()


class Tanh(Module):
    """Hyperbolic tangent layer (used inside the GAT update, eq. 4)."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).tanh()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        return x.relu() - (-x).relu() * self.negative_slope
