"""Training utilities: minibatching, early stopping, train/test splits."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["minibatches", "train_test_split", "EarlyStopping"]


def minibatches(
    n_items: int,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n_items)`` in batches.

    The final batch may be smaller; order is shuffled per epoch when
    ``shuffle`` is set (the paper uses minibatch SGD with batch 32).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(n_items)
    if shuffle:
        rng.shuffle(order)
    for start in range(0, n_items, batch_size):
        yield order[start:start + batch_size]


def train_test_split(
    n_items: int,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random 80/20-style split over item indices.

    Mirrors the paper's §IV-E split (80% train / 20% test).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    order = rng.permutation(n_items)
    n_test = max(1, int(round(n_items * test_fraction)))
    return order[n_test:], order[:n_test]


class EarlyStopping:
    """Stop when a monitored loss fails to improve for ``patience`` epochs.

    The paper trains the GON with an early-stopping criterion (§IV-E);
    converged runs land around 30 epochs (Fig. 4).
    """

    def __init__(self, patience: int = 5, min_delta: float = 1e-4) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.best_epoch: int = -1
        self._epochs_since_best = 0

    def update(self, value: float, epoch: int) -> bool:
        """Record ``value``; return ``True`` if training should stop."""
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.best_epoch = epoch
            self._epochs_since_best = 0
            return False
        self._epochs_since_best += 1
        return self._epochs_since_best >= self.patience
