"""Graph attention layer (eq. 4 of the paper).

The GON encodes the federation topology with a graph attention
network so the model is agnostic to the number of hosts (§IV-A):

    e_i = sigma( sum_{j in n(i)} W_q . tanh(W u_j + b) )

where ``W_q`` produces dot-product self-attention coefficients over the
neighbourhood and ``n(i)`` are the neighbours of host ``i`` in the
topology graph ``G``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["GraphAttention", "adjacency_with_self_loops"]


def adjacency_with_self_loops(adjacency: np.ndarray) -> np.ndarray:
    """Return a copy of ``adjacency`` with ones on the diagonal.

    Self-loops let every node attend to its own features, which keeps
    isolated nodes (e.g. a just-rebooted host not yet reattached) from
    producing zero embeddings.
    """
    adjacency = np.asarray(adjacency, dtype=float)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    out = adjacency.copy()
    np.fill_diagonal(out, 1.0)
    return out


class GraphAttention(Module):
    """Single-head graph attention over node features.

    Parameters
    ----------
    in_features:
        Per-node input feature dimension (resource utilisations ``u_i``).
    out_features:
        Per-node embedding dimension ``e_i``.
    rng:
        Generator for weight initialisation.

    Forward signature: ``layer(features, adjacency)`` where ``features``
    is ``[n_nodes, in_features]`` and ``adjacency`` a constant 0/1
    matrix.  The attention coefficients are masked dot-product scores
    normalised over each node's neighbourhood (self-loops included).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,)))
        self.attention = Parameter(init.xavier_uniform((out_features, out_features), rng))

    def forward(self, features, adjacency: np.ndarray) -> Tensor:
        features = as_tensor(features)
        mask = adjacency_with_self_loops(np.asarray(adjacency))
        if mask.shape[0] != features.shape[0]:
            raise ValueError(
                f"adjacency has {mask.shape[0]} nodes but features has "
                f"{features.shape[0]} rows"
            )

        # Per-node message: tanh(W u_j + b), eq. (4) inner term.
        messages = (features @ self.weight + self.bias).tanh()

        # Dot-product self-attention scores between transformed nodes.
        queries = messages @ self.attention
        scores = queries @ messages.T  # [n, n]

        # Mask non-edges with a large negative before softmax.
        neg_inf = Tensor(np.where(mask > 0, 0.0, -1e9))
        masked = scores + neg_inf
        shifted = masked - Tensor(masked.data.max(axis=-1, keepdims=True))
        weights = shifted.exp()
        weights = weights * Tensor(mask)
        weights = weights / (weights.sum(axis=-1, keepdims=True) + 1e-12)

        # Aggregate messages over neighbourhoods, then squash (sigma).
        aggregated = weights @ messages
        return aggregated.sigmoid()


class GraphEncoder(Module):
    """Stack of :class:`GraphAttention` layers with mean pooling.

    Produces a fixed-size graph embedding ``E_G`` regardless of host
    count, as required for the GON head (eq. 5).
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        rng: np.random.Generator,
        layers: int = 1,
    ) -> None:
        super().__init__()
        if layers < 1:
            raise ValueError("GraphEncoder needs at least one layer")
        dims = [in_features] + [hidden] * layers
        self.layers = [
            GraphAttention(dims[i], dims[i + 1], rng) for i in range(layers)
        ]

    def forward(self, features, adjacency: np.ndarray) -> Tensor:
        x = as_tensor(features)
        for layer in self.layers:
            x = layer(x, adjacency)
        return x.mean(axis=0)
