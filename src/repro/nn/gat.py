"""Graph attention layer (eq. 4 of the paper).

The GON encodes the federation topology with a graph attention
network so the model is agnostic to the number of hosts (§IV-A):

    e_i = sigma( sum_{j in n(i)} W_q . tanh(W u_j + b) )

where ``W_q`` produces dot-product self-attention coefficients over the
neighbourhood and ``n(i)`` are the neighbours of host ``i`` in the
topology graph ``G``.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["GraphAttention", "adjacency_with_self_loops"]


def adjacency_with_self_loops(adjacency: np.ndarray) -> np.ndarray:
    """Return a copy of ``adjacency`` with ones on the diagonal.

    Self-loops let every node attend to its own features, which keeps
    isolated nodes (e.g. a just-rebooted host not yet reattached) from
    producing zero embeddings.  Accepts a single ``[n, n]`` matrix or a
    batched ``[B, n, n]`` stack (diagonal filled per batch element).
    """
    adjacency = np.asarray(adjacency, dtype=float)
    if adjacency.ndim not in (2, 3) or adjacency.shape[-1] != adjacency.shape[-2]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    out = adjacency.copy()
    n = out.shape[-1]
    out[..., np.arange(n), np.arange(n)] = 1.0
    return out


def _masked_softmax(scores: Tensor, mask: np.ndarray) -> Tensor:
    """Fused masked row-softmax over the last axis.

    One graph node in place of the six-op mask/shift/exp/normalise
    chain; the forward reproduces that chain's arithmetic exactly
    (non-edges pushed down by -1e9 before the detached row-max shift,
    zeroed by the mask, denominator stabilised with 1e-12) and the
    backward applies the analytic softmax Jacobian.
    """
    pushed = scores.data + np.where(mask > 0, 0.0, -1e9)
    shifted = pushed - pushed.max(axis=-1, keepdims=True)
    weights = np.exp(shifted) * mask
    out_data = weights / (weights.sum(axis=-1, keepdims=True) + 1e-12)

    def backward(grad, send):
        inner = (grad * out_data).sum(axis=-1, keepdims=True)
        send(scores, out_data * (grad - inner))

    return Tensor._make(out_data, (scores,), backward)


class GraphAttention(Module):
    """Single-head graph attention over node features.

    Parameters
    ----------
    in_features:
        Per-node input feature dimension (resource utilisations ``u_i``).
    out_features:
        Per-node embedding dimension ``e_i``.
    rng:
        Generator for weight initialisation.

    Forward signature: ``layer(features, adjacency)`` where ``features``
    is ``[n_nodes, in_features]`` and ``adjacency`` a constant 0/1
    matrix.  The attention coefficients are masked dot-product scores
    normalised over each node's neighbourhood (self-loops included).

    Batched mode: a ``[B, n_nodes, in_features]`` feature stack with a
    ``[B, n, n]`` adjacency stack evaluates ``B`` independent graphs in
    one vectorized pass (masked attention over ``[B, n, n]`` scores) --
    the substrate of the batched surrogate engine.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,)))
        self.attention = Parameter(init.xavier_uniform((out_features, out_features), rng))

    def forward(self, features, adjacency: np.ndarray) -> Tensor:
        features = as_tensor(features)
        mask = adjacency_with_self_loops(np.asarray(adjacency))
        if features.ndim not in (2, 3) or mask.ndim != features.ndim:
            raise ValueError(
                f"features/adjacency rank mismatch: {features.shape} vs "
                f"{mask.shape}"
            )
        if mask.shape[-1] != features.shape[-2]:
            raise ValueError(
                f"adjacency has {mask.shape[-1]} nodes but features has "
                f"{features.shape[-2]} rows"
            )
        if features.ndim == 3 and mask.shape[0] != features.shape[0]:
            raise ValueError(
                f"adjacency batch {mask.shape[0]} != features batch "
                f"{features.shape[0]}"
            )

        # Per-node message: tanh(W u_j + b), eq. (4) inner term.
        if features.ndim == 3:
            # Flatten the batch axis through the node-wise transforms so
            # each runs as one gemm instead of a per-slice BLAS loop
            # (values are identical; only the blocking changes).
            stack, n = features.shape[0], features.shape[1]
            flat = features.reshape(-1, self.in_features)
            messages_flat = (flat @ self.weight + self.bias).tanh()
            queries = (messages_flat @ self.attention).reshape(stack, n, -1)
            messages = messages_flat.reshape(stack, n, -1)
        else:
            messages = (features @ self.weight + self.bias).tanh()
            queries = messages @ self.attention

        # Dot-product self-attention scores between transformed nodes,
        # normalised over each neighbourhood by the fused masked softmax.
        scores = queries @ messages.swapaxes(-1, -2)  # [..., n, n]
        weights = _masked_softmax(scores, mask)

        # Aggregate messages over neighbourhoods, then squash (sigma).
        aggregated = weights @ messages
        return aggregated.sigmoid()


class GraphEncoder(Module):
    """Stack of :class:`GraphAttention` layers with mean pooling.

    Produces a fixed-size graph embedding ``E_G`` regardless of host
    count, as required for the GON head (eq. 5).  Batched inputs
    (``[B, n, F]`` features with ``[B, n, n]`` adjacencies) pool per
    batch element, returning ``[B, hidden]``.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        rng: np.random.Generator,
        layers: int = 1,
    ) -> None:
        super().__init__()
        if layers < 1:
            raise ValueError("GraphEncoder needs at least one layer")
        dims = [in_features] + [hidden] * layers
        self.layers = [
            GraphAttention(dims[i], dims[i + 1], rng) for i in range(layers)
        ]

    def forward(self, features, adjacency: np.ndarray) -> Tensor:
        x = as_tensor(features)
        for layer in self.layers:
            x = layer(x, adjacency)
        # Pool over the node axis: [n, H] -> [H] or [B, n, H] -> [B, H].
        return x.mean(axis=-2)
