"""Optimisers.

The paper trains and fine-tunes the GON with Adam (learning rate 1e-4,
weight decay 1e-5, §IV-E); the same implementation also serves every
baseline model.  Weight decay is applied in the decoupled (AdamW)
form so it acts as true L2 shrinkage regardless of gradient scale.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam with decoupled weight decay.

    Defaults follow the paper's training setup (§IV-E): lr = 1e-4,
    weight decay = 1e-5.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-5,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * parameter.data
            parameter.data = parameter.data - self.lr * update


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training health).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total
