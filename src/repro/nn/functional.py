"""Functional interface over :mod:`repro.nn.tensor`.

Stateless functions used throughout the neural models: activations,
losses and a numerically-stable softmax/log-likelihood family.  The GON
training loop (Algorithm 1 of the paper) uses :func:`binary_cross_entropy`
over discriminator scores, and the surrogate optimisation of eq. (1)
ascends :func:`log` of the discriminator output.
"""

from __future__ import annotations

from .tensor import ArrayLike, Tensor, as_tensor, concatenate, stack, where

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "mse_loss",
    "l1_loss",
    "binary_cross_entropy",
    "bce_with_logits",
    "kl_gaussian",
    "concatenate",
    "stack",
    "where",
]

_EPS = 1e-12


def relu(x: ArrayLike) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def sigmoid(x: ArrayLike) -> Tensor:
    """Logistic sigmoid, clipped for numerical stability."""
    return as_tensor(x).sigmoid()


def tanh(x: ArrayLike) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """``log(softmax(x))`` computed stably."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mse_loss(prediction: ArrayLike, target: ArrayLike) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def l1_loss(prediction: ArrayLike, target: ArrayLike) -> Tensor:
    """Mean absolute error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return (prediction - target.detach()).abs().mean()


def binary_cross_entropy(prediction: ArrayLike, target: ArrayLike) -> Tensor:
    """BCE over probabilities in (0, 1).

    Inputs are clipped away from {0, 1} so the log never sees an exact
    zero; this mirrors the log-likelihood trick the paper uses for
    training stability (§III-B).
    """
    prediction = as_tensor(prediction).clip(_EPS, 1.0 - _EPS)
    target = as_tensor(target).detach()
    term = target * prediction.log() + (1.0 - target) * (1.0 - prediction).log()
    return -term.mean()


def bce_with_logits(logits: ArrayLike, target: ArrayLike) -> Tensor:
    """BCE straight from logits (more stable than sigmoid + BCE)."""
    logits = as_tensor(logits)
    target = as_tensor(target).detach()
    # max(x, 0) - x*t + log(1 + exp(-|x|))
    positive = logits.relu()
    return (positive - logits * target + ((-logits.abs()).exp() + 1.0).log()).mean()


def kl_gaussian(mu: ArrayLike, log_var: ArrayLike) -> Tensor:
    """KL(N(mu, sigma^2) || N(0, 1)) summed over latent dims, meaned over batch.

    Used by the TopoMAD baseline's variational autoencoder.
    """
    mu = as_tensor(mu)
    log_var = as_tensor(log_var)
    per_dim = (log_var.exp() + mu * mu - log_var - 1.0) * 0.5
    if per_dim.ndim > 1:
        return per_dim.sum(axis=-1).mean()
    return per_dim.sum()
