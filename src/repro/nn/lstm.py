"""LSTM cells and sequence layers.

Required by three baselines: FRAS (fuzzy *recurrent* surrogate),
TopoMAD (LSTM + VAE reconstruction) and the LSTM-autoencoder variants
discussed in related work.  Implemented as a fused-gate cell over the
autodiff tensors.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor, stack


class LSTMCell(Module):
    """Single-step LSTM cell with fused gate weights.

    Gate order in the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to one, the standard trick to
    keep memory open early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(
        self,
        x,
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Advance one step; returns ``(h, c)``."""
        x = as_tensor(x)
        batch = x.shape[0] if x.ndim == 2 else None
        if state is None:
            shape = (batch, self.hidden_size) if batch else (self.hidden_size,)
            h = Tensor(np.zeros(shape))
            c = Tensor(np.zeros(shape))
        else:
            h, c = state

        gates = x @ self.w_ih + h @ self.w_hh + self.bias
        hs = self.hidden_size
        i = gates[..., 0 * hs:1 * hs].sigmoid()
        f = gates[..., 1 * hs:2 * hs].sigmoid()
        g = gates[..., 2 * hs:3 * hs].tanh()
        o = gates[..., 3 * hs:4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Run an :class:`LSTMCell` over a sequence.

    Input shape ``(seq_len, features)`` or ``(seq_len, batch, features)``;
    output is the stacked hidden states plus the final ``(h, c)``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(
        self,
        sequence,
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        sequence = as_tensor(sequence)
        outputs = []
        h_c = state
        for t in range(sequence.shape[0]):
            h, c = self.cell(sequence[t], h_c)
            h_c = (h, c)
            outputs.append(h)
        return stack(outputs, axis=0), h_c  # type: ignore[return-value]


class LSTMAutoencoder(Module):
    """Sequence autoencoder: encode to final hidden state, decode back.

    The reconstruction-error baselines (TopoMAD-style detectors and the
    recurrent-autoencoder detectors of related work) wrap this class.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = LSTM(input_size, hidden_size, rng)
        self.decoder = LSTM(input_size, hidden_size, rng)
        from .linear import Linear

        self.head = Linear(hidden_size, input_size, rng, activation_hint="linear")

    def forward(self, sequence) -> Tensor:
        sequence = as_tensor(sequence)
        _, (h, c) = self.encoder(sequence)
        # Decode by feeding zeros, conditioned on the encoder state.
        seq_len = sequence.shape[0]
        zeros = Tensor(np.zeros(sequence.shape))
        hidden, _ = self.decoder(zeros, (h, c))
        reconstructions = [self.head(hidden[t]) for t in range(seq_len)]
        return stack(reconstructions, axis=0)
