"""Weight-initialisation schemes.

All initialisers draw from an explicitly supplied
:class:`numpy.random.Generator` so experiments are reproducible
end-to-end (the simulator, the GON and every baseline thread RNGs
through their configs rather than touching global state).
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "orthogonal"]


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Suitable for tanh/sigmoid layers such as the GON output head.
    """
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He initialisation for ReLU layers (used by the encoders of eq. 3)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (recurrent weights of LSTM baselines)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    a = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    q = q[:rows, :cols] if rows >= cols else q.T[:rows, :cols]
    return gain * q


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolutional kernels: (out, in, k)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
