"""Persist model state dicts as ``.npz`` archives, and export them.

The offline-trained GON is saved once after Algorithm-1 training and
reloaded by CAROL and the experiment harness; baselines use the same
mechanism for their surrogates.

Two read-only export paths back the fleet-scale serving layer
(:mod:`repro.serving`):

* :func:`freeze_state` -- read-only *views* of a state dict, so one
  process's weights can be handed out without risking mutation;
* :func:`pack_state` / :func:`unpack_state` -- flatten a state dict
  into one contiguous buffer plus a picklable manifest, the layout
  published through ``multiprocessing.shared_memory`` so worker
  processes mount zero-copy weight views instead of pickled copies.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import numpy as np

from .module import Module

__all__ = [
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "freeze_state",
    "pack_state",
    "unpack_state",
    "StateManifest",
]

#: Per-array layout entry: (name, shape, dtype string, byte offset).
StateManifest = List[Tuple[str, Tuple[int, ...], str, int]]

#: Byte alignment of packed arrays (8 covers every numeric dtype used).
_ALIGN = 8


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a ``{name: array}`` dict to ``path`` (npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` in place and return it."""
    module.load_state_dict(load_state(path))
    return module


def freeze_state(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Read-only views of ``state`` (zero-copy weight export).

    The returned arrays share memory with the originals but refuse
    writes, so they can be mounted into a model with
    ``load_state_dict(views, copy=False)`` and shared across consumers
    without defensive copies.
    """
    frozen: Dict[str, np.ndarray] = {}
    for name, array in state.items():
        view = np.asarray(array).view()
        view.flags.writeable = False
        frozen[name] = view
    return frozen


def pack_state(
    state: Dict[str, np.ndarray]
) -> Tuple[np.ndarray, StateManifest]:
    """Flatten a state dict into one byte buffer plus its manifest.

    Arrays are laid out back to back (8-byte aligned, C order, sorted
    by name so the layout is a pure function of the state).  The
    manifest is a plain picklable list, cheap to ship to workers; the
    buffer is what gets published into shared memory.
    """
    manifest: StateManifest = []
    offset = 0
    arrays = {name: np.ascontiguousarray(state[name]) for name in sorted(state)}
    for name, array in arrays.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        manifest.append((name, tuple(array.shape), array.dtype.str, offset))
        offset += array.nbytes
    buffer = np.zeros(max(offset, 1), dtype=np.uint8)
    for (name, _shape, _dtype, start), array in zip(manifest, arrays.values()):
        buffer[start:start + array.nbytes] = array.view(np.uint8).reshape(-1)
    return buffer, manifest


def unpack_state(
    buffer, manifest: StateManifest, writeable: bool = False
) -> Dict[str, np.ndarray]:
    """Rebuild ``{name: array}`` views into a packed buffer.

    ``buffer`` may be a ``numpy`` array or any buffer-protocol object
    (e.g. ``multiprocessing.shared_memory.SharedMemory().buf``); the
    returned arrays are zero-copy views, read-only by default.
    """
    state: Dict[str, np.ndarray] = {}
    for name, shape, dtype, offset in manifest:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buffer,
                          offset=offset)
        view.flags.writeable = bool(writeable)
        state[name] = view
    return state
