"""Persist model state dicts as ``.npz`` archives, and export them.

The offline-trained GON is saved once after Algorithm-1 training and
reloaded by CAROL and the experiment harness; baselines use the same
mechanism for their surrogates.

Two read-only export paths back the fleet-scale serving layer
(:mod:`repro.serving`):

* :func:`freeze_state` -- read-only *views* of a state dict, so one
  process's weights can be handed out without risking mutation;
* :func:`pack_state` / :func:`unpack_state` -- flatten a state dict
  into one contiguous buffer plus a picklable manifest, the layout
  published through ``multiprocessing.shared_memory`` so worker
  processes mount zero-copy weight views instead of pickled copies.

A third path backs the graph-free fast inference backend
(:mod:`repro.core.fastscore`):

* :func:`export_inference` -- snapshot a trained module into an
  :class:`InferencePack` of frozen, contiguous arrays plus
  architecture metadata, optionally downcast to ``float32`` for the
  scoring (never training) path;
* :func:`verify_inference_pack` -- the export/verify discipline: the
  pack must name-for-name, shape-for-shape match the module it claims
  to describe, values must round-trip bit-exactly through
  :func:`pack_state`/:func:`unpack_state`, and a ``float64`` pack must
  equal the live parameters exactly.  Backends refuse packs that fail
  verification instead of silently producing wrong scores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .module import Module

__all__ = [
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "freeze_state",
    "pack_state",
    "unpack_state",
    "StateManifest",
    "InferencePack",
    "export_inference",
    "verify_inference_pack",
]

#: Per-array layout entry: (name, shape, dtype string, byte offset).
StateManifest = List[Tuple[str, Tuple[int, ...], str, int]]

#: Byte alignment of packed arrays (8 covers every numeric dtype used).
_ALIGN = 8


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a ``{name: array}`` dict to ``path`` (npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` in place and return it."""
    module.load_state_dict(load_state(path))
    return module


def freeze_state(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Read-only views of ``state`` (zero-copy weight export).

    The returned arrays share memory with the originals but refuse
    writes, so they can be mounted into a model with
    ``load_state_dict(views, copy=False)`` and shared across consumers
    without defensive copies.
    """
    frozen: Dict[str, np.ndarray] = {}
    for name, array in state.items():
        view = np.asarray(array).view()
        view.flags.writeable = False
        frozen[name] = view
    return frozen


def pack_state(
    state: Dict[str, np.ndarray]
) -> Tuple[np.ndarray, StateManifest]:
    """Flatten a state dict into one byte buffer plus its manifest.

    Arrays are laid out back to back (8-byte aligned, C order, sorted
    by name so the layout is a pure function of the state).  The
    manifest is a plain picklable list, cheap to ship to workers; the
    buffer is what gets published into shared memory.
    """
    manifest: StateManifest = []
    offset = 0
    arrays = {name: np.ascontiguousarray(state[name]) for name in sorted(state)}
    for name, array in arrays.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        manifest.append((name, tuple(array.shape), array.dtype.str, offset))
        offset += array.nbytes
    buffer = np.zeros(max(offset, 1), dtype=np.uint8)
    for (name, _shape, _dtype, start), array in zip(manifest, arrays.values()):
        buffer[start:start + array.nbytes] = array.view(np.uint8).reshape(-1)
    return buffer, manifest


#: Dtypes the inference export accepts (training always stays float64).
_INFERENCE_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class InferencePack:
    """Flat, frozen export of a trained module for graph-free inference.

    ``arrays`` holds read-only, C-contiguous copies of every parameter
    in name-sorted order; ``meta`` carries whatever architecture facts
    a backend needs to rebuild the computation without the module graph
    (e.g. hidden width and layer counts for the GON kernels).  Packs
    are picklable and safe to share across threads -- nothing in them
    aliases live training state.
    """

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, object] = field(default_factory=dict)
    dtype: str = "float64"


def export_inference(
    module: Module,
    meta: Dict[str, object] | None = None,
    dtype: str = "float64",
) -> InferencePack:
    """Snapshot ``module`` into an :class:`InferencePack`.

    Parameters are copied (not viewed), cast to ``dtype`` and frozen,
    so later fine-tuning of the live module cannot leak into a backend
    that captured a pack -- backends re-export after every generation
    bump instead.
    """
    if dtype not in _INFERENCE_DTYPES:
        raise ValueError(
            f"unsupported inference dtype {dtype!r}; "
            f"expected one of {_INFERENCE_DTYPES}"
        )
    target = np.dtype(dtype)
    arrays: Dict[str, np.ndarray] = {}
    state = module.state_dict()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name], dtype=target)
        array.flags.writeable = False
        arrays[name] = array
    return InferencePack(arrays=arrays, meta=dict(meta or {}), dtype=dtype)


def verify_inference_pack(pack: InferencePack, module: Module) -> None:
    """Check that ``pack`` faithfully describes ``module`` or raise.

    Raises ``KeyError`` on missing/unexpected array names, ``ValueError``
    on shape or dtype mismatches, and ``AssertionError`` if the arrays
    fail the bit-exact :func:`pack_state`/:func:`unpack_state`
    round-trip or (for float64 packs) differ from the live parameters.
    """
    expected = {name: param.data for name, param in module.named_parameters()}
    missing = sorted(set(expected) - set(pack.arrays))
    unexpected = sorted(set(pack.arrays) - set(expected))
    if missing or unexpected:
        raise KeyError(
            f"inference pack mismatch: missing={missing} "
            f"unexpected={unexpected}"
        )
    if pack.dtype not in _INFERENCE_DTYPES:
        raise ValueError(f"unsupported inference dtype {pack.dtype!r}")
    for name, array in pack.arrays.items():
        if tuple(array.shape) != tuple(expected[name].shape):
            raise ValueError(
                f"inference pack shape mismatch for {name!r}: "
                f"{tuple(array.shape)} != {tuple(expected[name].shape)}"
            )
        if array.dtype != np.dtype(pack.dtype):
            raise ValueError(
                f"inference pack dtype mismatch for {name!r}: "
                f"{array.dtype} != {pack.dtype}"
            )
    # Bit-exact round-trip through the shared-memory pack format: the
    # flat layout must reproduce every array byte for byte.
    buffer, manifest = pack_state(dict(pack.arrays))
    rebuilt = unpack_state(buffer, manifest)
    for name, array in pack.arrays.items():
        assert np.array_equal(rebuilt[name], array), name
    if pack.dtype == "float64":
        for name, array in pack.arrays.items():
            assert np.array_equal(array, expected[name]), name


def unpack_state(
    buffer, manifest: StateManifest, writeable: bool = False
) -> Dict[str, np.ndarray]:
    """Rebuild ``{name: array}`` views into a packed buffer.

    ``buffer`` may be a ``numpy`` array or any buffer-protocol object
    (e.g. ``multiprocessing.shared_memory.SharedMemory().buf``); the
    returned arrays are zero-copy views, read-only by default.
    """
    state: Dict[str, np.ndarray] = {}
    for name, shape, dtype, offset in manifest:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buffer,
                          offset=offset)
        view.flags.writeable = bool(writeable)
        state[name] = view
    return state
