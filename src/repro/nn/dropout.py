"""Inverted dropout.

Used by the LSTM-with-dropout anomaly-detection baselines cited in
related work (§II) and available for regularising any model here.
"""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor, as_tensor


class Dropout(Module):
    """Zero activations with probability ``p`` during training.

    Activations are rescaled by ``1/(1-p)`` so evaluation requires no
    correction (inverted dropout).  The mask is drawn from the module's
    own generator so training runs stay reproducible.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(float) / keep
        return x * Tensor(mask)
