"""Fully-connected layers (the feed-forward blocks of eq. 3 and 5).

Both :class:`Linear` and :class:`FeedForward` are batch-agnostic: the
matmul acts on the trailing axis, so ``[n, F]`` inputs (one sample) and
``[B, n, F]`` stacks (a whole tabu neighbourhood or training minibatch)
run through the same code path, with the weight gradient reduced over
the leading axes by the autodiff engine.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    rng:
        Random generator used for Xavier/He initialisation.
    bias:
        Whether to learn an additive bias (default true).
    activation_hint:
        ``"relu"`` selects He init, anything else Xavier; this mirrors
        how the paper's encoders (ReLU) and head (sigmoid) are set up.

    Accepts inputs of any leading shape ``[..., in_features]``; extra
    axes (batch, node) broadcast through the matmul.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        activation_hint: str = "relu",
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if activation_hint == "relu":
            weight = init.kaiming_uniform((in_features, out_features), rng)
        else:
            weight = init.xavier_uniform((in_features, out_features), rng)
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if x.ndim > 2:
            # Flatten leading axes into one gemm: the stacked form
            # would loop BLAS per slice (and reduce the weight gradient
            # over the batch slice by slice); one [B*n, F] product does
            # forward and both backward products in single BLAS calls.
            #
            # Flat-gemm decision (ROADMAP item, measured by
            # ``benchmarks/bench_surrogate.py`` -> BENCH_surrogate.json
            # "flat_gemm"): the reshape is 4-9x faster than a per-slice
            # loop at the GON's shapes and exact (max|diff| = 0.0) at
            # every benchmarked shape on this BLAS.  In general BLAS
            # only guarantees per-row agreement to the last ulp or two
            # when the leading dimension changes, so the parity
            # tolerance of ``tests/test_batched.py`` (rtol 1e-9) is the
            # contract, and anything needing *bitwise* batch-size
            # invariance must keep stack shapes fixed instead (see
            # ``repro.serving.service`` on why the fleet scorer's exact
            # policy never merges request stacks).
            lead = x.shape[:-1]
            out = (x.reshape(-1, self.in_features) @ self.weight).reshape(
                *lead, self.out_features
            )
        else:
            out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear({self.in_features} -> {self.out_features})"


class FeedForward(Module):
    """Stack of ``Linear`` + activation blocks with a fixed hidden width.

    The paper fixes layer width at 128 and grid-searches layer count
    (§IV-E, Fig. 6b); this class is the unit being swept there.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        hidden: int = 128,
        layers: int = 2,
        activation: str = "relu",
        final_activation: str | None = None,
    ) -> None:
        super().__init__()
        if layers < 1:
            raise ValueError("FeedForward needs at least one layer")
        self.activation = activation
        self.final_activation = final_activation
        dims = [in_features] + [hidden] * (layers - 1) + [out_features]
        self.blocks = [
            Linear(dims[i], dims[i + 1], rng, activation_hint=activation)
            for i in range(layers)
        ]

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        last = len(self.blocks) - 1
        for i, block in enumerate(self.blocks):
            x = block(x)
            if i < last:
                x = _apply_activation(x, self.activation)
            elif self.final_activation is not None:
                x = _apply_activation(x, self.final_activation)
        return x


def _apply_activation(x: Tensor, name: str) -> Tensor:
    if name == "relu":
        return x.relu()
    if name == "tanh":
        return x.tanh()
    if name == "sigmoid":
        return x.sigmoid()
    if name == "identity":
        return x
    raise ValueError(f"unknown activation {name!r}")
