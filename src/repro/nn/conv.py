"""1-D convolution for the StepGAN baseline.

StepGAN (Feng et al., 2021) converts input time series into matrices
and applies convolutions to capture temporal trends; this module gives
it an autodiff-compatible Conv1d plus max pooling.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["Conv1d", "max_pool1d"]


class Conv1d(Module):
    """1-D convolution over inputs shaped ``[channels, length]``.

    Stride 1, explicit zero padding.  Implemented by materialising the
    sliding windows (im2col) so both forward and backward reduce to
    matmuls the autodiff already supports.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        padding: int = 0,
    ) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        self.weight = Parameter(
            init.xavier_uniform((in_channels * kernel_size, out_channels), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 2:
            raise ValueError(f"Conv1d expects [channels, length], got shape {x.shape}")
        channels, length = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")

        if self.padding:
            pad_block = Tensor(np.zeros((channels, self.padding)))
            from .tensor import concatenate

            x = concatenate([pad_block, x, pad_block], axis=1)
            length = length + 2 * self.padding

        out_length = length - self.kernel_size + 1
        if out_length < 1:
            raise ValueError(
                f"input length {length} shorter than kernel {self.kernel_size}"
            )

        # im2col: windows stacked as rows -> [out_length, channels*kernel].
        from .tensor import stack

        windows = [
            x[:, start:start + self.kernel_size].reshape(-1)
            for start in range(out_length)
        ]
        patch_matrix = stack(windows, axis=0)
        out = patch_matrix @ self.weight + self.bias  # [out_length, out_channels]
        return out.transpose()  # [out_channels, out_length]


def max_pool1d(x, window: int) -> Tensor:
    """Non-overlapping max pooling along the last axis.

    Trailing elements that do not fill a window are dropped, matching
    the usual floor-division output size.
    """
    x = as_tensor(x)
    if window < 1:
        raise ValueError("window must be >= 1")
    length = x.shape[-1]
    out_length = length // window
    if out_length == 0:
        raise ValueError(f"input length {length} shorter than pool window {window}")
    from .tensor import stack

    pooled = [
        x[..., i * window:(i + 1) * window].max(axis=-1) for i in range(out_length)
    ]
    return stack(pooled, axis=-1)
