"""The declarative chaos-schedule DSL and its compiled fault model.

A :class:`ChaosSchedule` is a timed, composable perturbation script: a
tuple of frozen :class:`ChaosEvent` records (zone blackouts, link
degradation, node recoveries, federation partitions, arrival surges),
each with a ``start`` interval and a ``duration`` in intervals.  Like
:class:`~repro.scenarios.spec.ScenarioSpec`, schedules validate on
construction and serialise losslessly through ``to_dict`` /
``from_dict``, so a schedule can live in JSON, ride a fuzzer corpus,
or be replayed from ``(seed, schedule_json)`` alone.

``compile()`` turns a schedule into a :class:`ScheduledFaultModel`
sitting behind the existing :class:`~repro.simulator.faults.FaultModel`
``sample`` / ``decay`` / ``arrival_multiplier`` contract.  The
compiled model is **deterministic and RNG-free**: every emitted
:class:`~repro.simulator.faults.AttackEvent` is a pure function of the
interval clock, the schedule, and the live-host set.  Because it never
touches the injector's shared RNG, appending a chaos model to a
scenario's fault-model list cannot perturb the random streams of the
stochastic models sampled before it -- which is what preserves the
serial == pool == fleet bit-identity contract for free (see
``docs/architecture.md``).

Event semantics (intervals are 1-based, windows half-open
``[start, start + duration)``):

* ``zone_blackout`` -- every live host of one contiguous id zone is
  driven over the failure threshold for each interval of the window
  (shared power-feed / top-of-rack failure domain).  Hosts that reboot
  mid-window are hit again: the blackout outlasts individual reboots.
* ``link_degrade`` -- the listed hosts take sub-critical network
  contention for the window: degraded, not necessarily dead.
* ``node_recover`` -- instantaneous (duration 1): the listed hosts'
  active attacks are cleared at ``start``, as if rebooted to a clean
  snapshot; emits record-only events on a non-resource axis.
* ``federation_partition`` -- a fraction of the fleet is severed: the
  cut set is resolved **once**, at ``start``, as the last ``k`` live
  hosts in id order (``k`` clamped to ``[1, live - 1]``), then
  re-asserted every window interval so rebooting severed hosts stay
  cut off until the window closes.
* ``arrival_surge`` -- no host is attacked; the gateway arrival rate
  is multiplied for every interval of the window.

Overlap rule: two events of the **same kind** whose windows intersect
and whose scopes collide (same zone, a shared host, any two
partitions, any two surges) are rejected at construction -- their
composed effect would be ambiguous.  Different kinds compose freely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, FrozenSet, List, Sequence, Tuple, Type

from ..simulator.faults import (
    PARTITION_INTENSITY,
    AttackEvent,
    FaultModel,
    _live_hosts,
)

__all__ = [
    "CHAOS_MODEL_NAME",
    "EVENT_KINDS",
    "register_event_kind",
    "ChaosEvent",
    "ZoneBlackout",
    "LinkDegrade",
    "NodeRecover",
    "FederationPartition",
    "ArrivalSurge",
    "ChaosSchedule",
    "ScheduledFaultModel",
]

#: ``AttackEvent.model`` attribution of every schedule-emitted event.
CHAOS_MODEL_NAME = "chaos"

#: Registered event kinds: ``kind`` string -> event class (the
#: ``from_dict`` dispatch table, mirroring the fault-model registry).
EVENT_KINDS: Dict[str, Type["ChaosEvent"]] = {}


def register_event_kind(cls: Type["ChaosEvent"]) -> Type["ChaosEvent"]:
    """Class decorator: add a :class:`ChaosEvent` subclass by its kind."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} declares no event kind")
    existing = EVENT_KINDS.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"chaos event kind {cls.kind!r} already registered "
            f"by {existing.__name__}"
        )
    EVENT_KINDS[cls.kind] = cls
    return cls


def _attack(
    interval: int,
    target: int,
    kind: str,
    axis: str,
    intensity: float,
    duration: int = 1,
) -> AttackEvent:
    return AttackEvent(
        interval, target, kind, axis, intensity, duration,
        model=CHAOS_MODEL_NAME,
    )


def _host_tuple(value: Sequence[int], kind: str) -> Tuple[int, ...]:
    """Normalise a host list: sorted, deduplicated, non-negative ints."""
    hosts = []
    for host in value:
        if isinstance(host, bool) or not isinstance(host, int):
            raise ValueError(
                f"{kind}: host ids must be integers, got {host!r}"
            )
        if host < 0:
            raise ValueError(f"{kind}: host id {host} must be >= 0")
        hosts.append(int(host))
    if not hosts:
        raise ValueError(f"{kind}: needs at least one host id")
    return tuple(sorted(set(hosts)))


@dataclass(frozen=True)
class ChaosEvent:
    """One timed perturbation: base fields shared by every kind.

    ``start`` is the first interval the event is active (1-based, like
    the engine's interval clock); the window is half-open,
    ``[start, start + duration)``.  Subclasses add their kind-specific
    parameters and implement :meth:`events_for`.
    """

    kind: ClassVar[str] = ""

    start: int
    duration: int

    def __post_init__(self) -> None:
        if not self.kind:
            raise TypeError(
                "ChaosEvent is abstract; construct a registered kind "
                f"({sorted(EVENT_KINDS)})"
            )
        for name in ("start", "duration"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"{self.kind}: {name}={value!r} must be an integer "
                    "number of intervals"
                )
        if self.start < 1:
            raise ValueError(
                f"{self.kind}: start={self.start} must be >= 1 "
                "(the engine's interval clock is 1-based)"
            )
        if self.duration < 1:
            raise ValueError(
                f"{self.kind}: duration={self.duration} must be >= 1 "
                "(a zero-duration event would never fire)"
            )

    # -- window ----------------------------------------------------------
    @property
    def end(self) -> int:
        """One past the last active interval (half-open window)."""
        return self.start + self.duration

    def active(self, interval: int) -> bool:
        return self.start <= interval < self.end

    def overlaps(self, other: "ChaosEvent") -> bool:
        return self.start < other.end and other.start < self.end

    # -- contract for subclasses ----------------------------------------
    def scope(self) -> FrozenSet[object]:
        """Scope atoms; same-kind events sharing one may not overlap."""
        return frozenset()

    def validate_for(self, n_hosts: int) -> None:
        """Raise when the event cannot apply to an ``n_hosts`` fleet."""

    def events_for(
        self, interval: int, live: Sequence[int], injector, state: dict
    ) -> List[AttackEvent]:
        """This interval's emitted attack events (pure; no RNG)."""
        return []

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: ``kind`` discriminator + every field."""
        data: Dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = list(value) if isinstance(value, tuple) else value
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ChaosEvent":
        """Inverse of :meth:`to_dict`, dispatching on ``kind``."""
        kind = data.get("kind")
        cls = EVENT_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown chaos event kind {kind!r}; "
                f"registered: {sorted(EVENT_KINDS)}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known - {"kind"}
        if unknown:
            raise ValueError(
                f"unknown {kind} fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = {key: value for key, value in data.items() if key != "kind"}
        if "hosts" in kwargs:
            kwargs["hosts"] = tuple(kwargs["hosts"])
        return cls(**kwargs)


@register_event_kind
@dataclass(frozen=True)
class ZoneBlackout(ChaosEvent):
    """Contiguous host zone driven over the failure threshold."""

    kind: ClassVar[str] = "zone_blackout"

    #: Zone index; the zone covers host ids
    #: ``[zone * zone_size, (zone + 1) * zone_size)``.
    zone: int = 0
    zone_size: int = 4
    #: Injected load on the blacked-out hosts (>= any sane failure
    #: threshold, so the zone reliably drops out together).
    intensity: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.zone < 0:
            raise ValueError(f"{self.kind}: zone must be >= 0")
        if self.zone_size < 1:
            raise ValueError(f"{self.kind}: zone_size must be >= 1")
        if self.intensity <= 0:
            raise ValueError(f"{self.kind}: intensity must be positive")

    def scope(self) -> FrozenSet[object]:
        lo = self.zone * self.zone_size
        return frozenset(range(lo, lo + self.zone_size))

    def validate_for(self, n_hosts: int) -> None:
        if self.zone * self.zone_size >= n_hosts:
            raise ValueError(
                f"{self.kind}: zone {self.zone} (zone_size "
                f"{self.zone_size}) lies outside a {n_hosts}-host fleet"
            )

    def events_for(self, interval, live, injector, state):
        if not self.active(interval):
            return []
        lo = self.zone * self.zone_size
        hi = lo + self.zone_size
        return [
            _attack(interval, host, self.kind, "cpu", self.intensity)
            for host in live
            if lo <= host < hi
        ]


@register_event_kind
@dataclass(frozen=True)
class LinkDegrade(ChaosEvent):
    """Sub-critical network contention on the listed hosts."""

    kind: ClassVar[str] = "link_degrade"

    hosts: Tuple[int, ...] = ()
    #: Net-axis load; below 1.0 degrades, above it can crash.
    intensity: float = 0.7

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "hosts", _host_tuple(self.hosts, self.kind))
        if self.intensity <= 0:
            raise ValueError(f"{self.kind}: intensity must be positive")

    def scope(self) -> FrozenSet[object]:
        return frozenset(self.hosts)

    def validate_for(self, n_hosts: int) -> None:
        if self.hosts[-1] >= n_hosts:
            raise ValueError(
                f"{self.kind}: host {self.hosts[-1]} out of range for a "
                f"{n_hosts}-host fleet"
            )

    def events_for(self, interval, live, injector, state):
        if not self.active(interval):
            return []
        targets = set(self.hosts)
        return [
            _attack(interval, host, self.kind, "net", self.intensity)
            for host in live
            if host in targets
        ]


@register_event_kind
@dataclass(frozen=True)
class NodeRecover(ChaosEvent):
    """Instantaneous repair: clear the listed hosts' active attacks."""

    kind: ClassVar[str] = "node_recover"

    hosts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "hosts", _host_tuple(self.hosts, self.kind))
        if self.duration != 1:
            raise ValueError(
                f"{self.kind}: duration must be 1 (recovery is "
                "instantaneous; schedule several events to repeat it)"
            )

    def scope(self) -> FrozenSet[object]:
        return frozenset(self.hosts)

    def validate_for(self, n_hosts: int) -> None:
        if self.hosts[-1] >= n_hosts:
            raise ValueError(
                f"{self.kind}: host {self.hosts[-1]} out of range for a "
                f"{n_hosts}-host fleet"
            )

    def events_for(self, interval, live, injector, state):
        if interval != self.start:
            return []
        events = []
        for host in self.hosts:
            injector.clear_host(host)
            # "recover" is not a resource axis, so the injector records
            # the event without registering any load.
            events.append(_attack(interval, host, self.kind, "recover", 0.0))
        return events


@register_event_kind
@dataclass(frozen=True)
class FederationPartition(ChaosEvent):
    """A fraction of the live fleet severed for the window."""

    kind: ClassVar[str] = "federation_partition"

    #: Fraction of the live fleet cut off, in (0, 1); the severed set
    #: is the last ``k`` live hosts in id order, resolved at ``start``.
    fraction: float = 0.35

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"{self.kind}: fraction={self.fraction} must be in (0, 1) "
                "(a partition cuts off part of the fleet, never none or "
                "all of it)"
            )

    def scope(self) -> FrozenSet[object]:
        # Any two overlapping partitions are ambiguous.
        return frozenset({"partition"})

    def events_for(self, interval, live, injector, state):
        if not self.active(interval):
            return []
        severed = state.get(self)
        if severed is None:
            if len(live) < 2:
                severed = ()
            else:
                k = max(
                    1,
                    min(int(round(self.fraction * len(live))), len(live) - 1),
                )
                severed = tuple(sorted(live)[-k:])
            state[self] = severed
        return [
            _attack(interval, host, self.kind, "net", PARTITION_INTENSITY)
            for host in severed
        ]


@register_event_kind
@dataclass(frozen=True)
class ArrivalSurge(ChaosEvent):
    """Gateway arrival rate multiplied for the window; no host attacked."""

    kind: ClassVar[str] = "arrival_surge"

    multiplier: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.multiplier < 1.0:
            raise ValueError(
                f"{self.kind}: multiplier={self.multiplier} must be >= 1 "
                "(a surge amplifies arrivals)"
            )

    def scope(self) -> FrozenSet[object]:
        return frozenset({"surge"})

    def events_for(self, interval, live, injector, state):
        # The multiplier itself is applied by the model's
        # arrival_multiplier(); this is the record-only announcement.
        if interval != self.start:
            return []
        return [
            _attack(
                interval, -1, self.kind, "arrival", self.multiplier,
                duration=self.duration,
            )
        ]


def _event_sort_key(event: ChaosEvent) -> Tuple:
    return (
        event.start,
        event.kind,
        event.duration,
        json.dumps(event.to_dict(), sort_keys=True),
    )


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, validated composition of :class:`ChaosEvent` records.

    Events are canonicalised to a fixed order at construction, so two
    schedules with the same events serialise to the same bytes -- the
    property the fuzzer's content-addressed scenario names and corpus
    deduplication rely on.
    """

    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChaosEvent) or not event.kind:
                raise ValueError(
                    f"schedule entries must be chaos events, got {event!r}"
                )
        events = tuple(sorted(events, key=_event_sort_key))
        object.__setattr__(self, "events", events)
        for index, first in enumerate(events):
            for second in events[index + 1:]:
                if first.kind != second.kind:
                    continue
                if first.overlaps(second) and first.scope() & second.scope():
                    raise ValueError(
                        f"overlapping {first.kind} events: intervals "
                        f"[{first.start}, {first.end}) and "
                        f"[{second.start}, {second.end}) share scope -- "
                        "their composed effect would be ambiguous"
                    )

    def __len__(self) -> int:
        return len(self.events)

    # -- validation ------------------------------------------------------
    def validate_for(self, n_hosts: int) -> None:
        """Check every event against a concrete fleet size."""
        for event in self.events:
            event.validate_for(n_hosts)

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosSchedule":
        unknown = set(data) - {"events"}
        if unknown:
            raise ValueError(
                f"unknown ChaosSchedule fields: {sorted(unknown)}"
            )
        return cls(tuple(
            ChaosEvent.from_dict(entry) for entry in data.get("events", ())
        ))

    def canonical_json(self) -> str:
        """Deterministic JSON text (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 of the canonical JSON: the schedule's identity."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    def short_id(self) -> str:
        """12-hex-char display/naming form of :meth:`content_hash`."""
        return self.content_hash()[:12]

    # -- the FaultConfig embedding --------------------------------------
    def to_rows(self) -> Tuple[Tuple, ...]:
        """Canonical plain-data rows for ``FaultConfig.chaos``.

        Each row is ``(kind, start, duration, ((param, value), ...))``
        with params sorted by name -- hashable, picklable and
        structurally checkable without importing this package (see
        :class:`repro.config.FaultConfig`).
        """
        rows = []
        for event in self.events:
            params = []
            for spec in fields(event):
                if spec.name in ("start", "duration"):
                    continue
                params.append((spec.name, getattr(event, spec.name)))
            rows.append((
                event.kind, event.start, event.duration,
                tuple(sorted(params)),
            ))
        return tuple(rows)

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence]) -> "ChaosSchedule":
        """Inverse of :meth:`to_rows` (validates on construction)."""
        events = []
        for row in rows:
            if len(row) != 4:
                raise ValueError(
                    f"chaos row must be (kind, start, duration, params), "
                    f"got {row!r}"
                )
            kind, start, duration, params = row
            data: Dict[str, Any] = {
                "kind": kind, "start": start, "duration": duration,
            }
            for name, value in params:
                data[str(name)] = value
            events.append(ChaosEvent.from_dict(data))
        return cls(tuple(events))

    # -- compilation -----------------------------------------------------
    def compile(self) -> "ScheduledFaultModel":
        """The deterministic fault model replaying this schedule."""
        return ScheduledFaultModel(self)


class ScheduledFaultModel(FaultModel):
    """Replays a :class:`ChaosSchedule` behind the ``FaultModel`` contract.

    **RNG-free by design**: ``sample`` never touches ``injector.rng``,
    so appending this model to a scenario's list leaves every
    stochastic model's random stream untouched -- chaos schedules
    compose with the existing fault campaigns without perturbing them,
    and the cross-mode bit-identity contract holds unchanged.

    The engine draws interval ``t``'s arrivals *before* sampling
    interval ``t``'s faults, so ``arrival_multiplier`` is evaluated
    for ``last_sampled + 1`` -- exactly the interval whose arrivals
    are about to be drawn.  That makes a surge window ``[start, end)``
    cover precisely the arrivals of those intervals.
    """

    name = CHAOS_MODEL_NAME

    def __init__(self, schedule: ChaosSchedule) -> None:
        self.schedule = schedule
        self._last_sampled = 0
        #: Partition events resolve their severed set once, at their
        #: start interval; resolved sets are cached here per event.
        self._partition_state: Dict[ChaosEvent, Tuple[int, ...]] = {}

    def sample(self, interval, topology, hosts, injector):
        self._last_sampled = interval
        live = _live_hosts(topology, hosts)
        events: List[AttackEvent] = []
        for event in self.schedule.events:
            events.extend(
                event.events_for(interval, live, injector,
                                 self._partition_state)
            )
        return events

    def arrival_multiplier(self) -> float:
        current = self._last_sampled + 1
        factor = 1.0
        for event in self.schedule.events:
            if isinstance(event, ArrivalSurge) and event.active(current):
                factor *= event.multiplier
        return factor
