"""``repro.chaos`` -- declarative chaos schedules and a scenario fuzzer.

Two layers:

* :mod:`repro.chaos.schedule` -- the chaos-schedule DSL: frozen,
  serialisable :class:`ChaosEvent` records composed into a
  :class:`ChaosSchedule` that compiles to a deterministic, RNG-free
  :class:`ScheduledFaultModel` behind the existing
  :class:`~repro.simulator.faults.FaultModel` contract.
* :mod:`repro.chaos.fuzz` / :mod:`~repro.chaos.shrink` /
  :mod:`~repro.chaos.report` -- the seeded scenario fuzzer: sample
  random schedules, evaluate them as campaigns, score QoS deltas
  against the unperturbed baseline and shrink cliffs to 1-minimal
  failing schedules.

The fuzzer names are exported lazily: ``fuzz`` imports the campaign
machinery, which imports the scenario catalog, whose specs import this
package's ``schedule`` module -- eager re-export would close that loop.
"""

from .schedule import (
    CHAOS_MODEL_NAME,
    EVENT_KINDS,
    ArrivalSurge,
    ChaosEvent,
    ChaosSchedule,
    FederationPartition,
    LinkDegrade,
    NodeRecover,
    ScheduledFaultModel,
    ZoneBlackout,
    register_event_kind,
)
from .shrink import shrink_schedule

__all__ = [
    "CHAOS_MODEL_NAME",
    "EVENT_KINDS",
    "register_event_kind",
    "ChaosEvent",
    "ZoneBlackout",
    "LinkDegrade",
    "NodeRecover",
    "FederationPartition",
    "ArrivalSurge",
    "ChaosSchedule",
    "ScheduledFaultModel",
    "shrink_schedule",
    # lazy (see __getattr__):
    "FuzzConfig",
    "FuzzOutcome",
    "FuzzResult",
    "run_fuzz",
    "sample_schedule",
    "format_fuzz_report",
    "write_replay_file",
    "load_replay_file",
]

_LAZY = {
    "FuzzConfig": "fuzz",
    "FuzzOutcome": "fuzz",
    "FuzzResult": "fuzz",
    "run_fuzz": "fuzz",
    "sample_schedule": "fuzz",
    "format_fuzz_report": "report",
    "write_replay_file": "report",
    "load_replay_file": "report",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
