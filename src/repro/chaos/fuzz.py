"""Seeded scenario fuzzer: hunt QoS cliffs with random chaos schedules.

The fuzzer samples random :class:`~repro.chaos.schedule.ChaosSchedule`
instances for a base scenario's fleet composition from a
``SeedSequence``-derived stream, evaluates each one through the
existing campaign machinery (serial, process pool or fleet -- the
fuzzer is mode-agnostic because every evaluation is just a campaign),
scores the QoS delta against the unperturbed baseline, and shrinks any
cliff-triggering schedule to a 1-minimal failing event list via
:func:`repro.chaos.shrink.shrink_schedule`.

Reproducibility contract
------------------------

* The schedule stream is a pure function of ``(seed, budget,
  fleet shape, horizon, max_events)`` -- two invocations with the same
  :class:`FuzzConfig` sample byte-identical schedules.
* Every evaluation is a **single-scenario campaign** with the fuzz
  config's ``(seed, n_seeds)``.  ``plan_tasks`` derives per-cell seeds
  from ``SeedSequence(seed).spawn(n_cells)`` -- independent of the
  scenario *name* -- so the baseline, every candidate and every shrink
  probe run under identical per-seed streams: paired-seed comparisons
  for free.
* Candidate scenarios are **content-addressed**
  (``fuzz/<base>/<schedule-hash>``), making the campaign-store corpus
  sound: re-running a fuzz seed against the same store replays cached
  records instead of re-simulating, and any reported schedule replays
  from ``(seed, schedule_json)`` alone.
* Campaign records are bit-identical across execution modes, so the
  scores -- and therefore the shrunk minimal schedules -- are the same
  whether the fuzzer drove a serial loop or a fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..experiments.campaign import CampaignConfig, run_campaign
from ..scenarios import get_scenario, register, unregister
from ..scenarios.spec import ScenarioSpec
from .schedule import (
    ArrivalSurge,
    ChaosSchedule,
    FederationPartition,
    LinkDegrade,
    NodeRecover,
    ZoneBlackout,
)
from .shrink import shrink_schedule

__all__ = [
    "SCHEDULE_ENTROPY",
    "FuzzConfig",
    "FuzzOutcome",
    "FuzzResult",
    "sample_schedule",
    "fuzz_scenario_name",
    "register_fuzz_scenario",
    "evaluation_campaign_config",
    "cliff_score",
    "run_fuzz",
]

#: Domain-separation constant mixed into the schedule ``SeedSequence``
#: so the fuzzer's stream never collides with campaign cell seeds
#: derived from the same user seed.
SCHEDULE_ENTROPY = 0xC4A05


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing session: base scenario, budget, seeds, execution."""

    #: Base catalog scenario whose fleet the schedules perturb.
    scenario: str = "paper-default"
    #: Resilience model under test.  DYVERSE by default: a cheap
    #: trained-asset-free heuristic, so fuzzing sweeps stay fast.
    model: str = "DYVERSE"
    #: Number of random schedules to sample and evaluate.
    budget: int = 16
    #: Seeds per evaluation cell (paired across all evaluations).
    n_seeds: int = 1
    #: Root seed: schedules AND campaign cell seeds derive from it.
    seed: int = 0
    #: Evaluation horizon; ``None`` uses the scenario's default.
    n_intervals: Optional[int] = None
    #: Maximum events per sampled schedule.
    max_events: int = 4
    #: QoS-delta score at or above which a schedule counts as a cliff.
    threshold: float = 0.05
    #: Shrink cliff-triggering schedules to 1-minimal form.
    shrink: bool = True
    #: Execution plumbing, passed straight to the campaign configs.
    mode: str = "process"
    workers: int = 1
    transport: str = "queue"
    service_addr: str = ""
    scorer_backend: str = "exact"
    auth_token: str = ""
    store: str = "memory"
    store_path: str = ""

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.n_intervals is not None and self.n_intervals < 1:
            raise ValueError("n_intervals must be >= 1")


@dataclass(frozen=True)
class FuzzOutcome:
    """One evaluated schedule: identity, score and (maybe) shrink."""

    index: int
    scenario: str
    schedule: ChaosSchedule
    metrics: Dict[str, float]
    score: float
    cliff: bool
    shrunk: Optional[ChaosSchedule] = None
    shrunk_scenario: str = ""
    shrunk_score: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "index": self.index,
            "scenario": self.scenario,
            "schedule": self.schedule.to_dict(),
            "schedule_hash": self.schedule.content_hash(),
            "metrics": dict(self.metrics),
            "score": self.score,
            "cliff": self.cliff,
        }
        if self.shrunk is not None:
            payload["shrunk"] = {
                "scenario": self.shrunk_scenario,
                "schedule": self.shrunk.to_dict(),
                "schedule_hash": self.shrunk.content_hash(),
                "score": self.shrunk_score,
                "n_events": len(self.shrunk),
            }
        return payload


@dataclass(frozen=True)
class FuzzResult:
    """A full fuzzing session's outcomes, baseline first."""

    config: FuzzConfig
    base_metrics: Dict[str, float]
    outcomes: Tuple[FuzzOutcome, ...]
    #: Oracle evaluations actually simulated (cache misses).
    evaluations: int = 0

    @property
    def cliffs(self) -> List[FuzzOutcome]:
        """Cliff-triggering outcomes, worst first."""
        return sorted(
            (o for o in self.outcomes if o.cliff),
            key=lambda o: (-o.score, o.index),
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "config": {
                "scenario": self.config.scenario,
                "model": self.config.model,
                "budget": self.config.budget,
                "n_seeds": self.config.n_seeds,
                "seed": self.config.seed,
                "n_intervals": self.config.n_intervals,
                "max_events": self.config.max_events,
                "threshold": self.config.threshold,
                "shrink": self.config.shrink,
                "mode": self.config.mode,
                "workers": self.config.workers,
                "transport": self.config.transport,
                # auth_token is intentionally absent: fuzz reports are
                # shared artifacts and must never carry credentials.
            },
            "base_metrics": dict(self.base_metrics),
            "outcomes": [o.to_payload() for o in self.outcomes],
            "n_cliffs": sum(1 for o in self.outcomes if o.cliff),
            "evaluations": self.evaluations,
        }


# ----------------------------------------------------------------------
# Schedule sampling
# ----------------------------------------------------------------------

_KINDS = (
    "zone_blackout",
    "link_degrade",
    "node_recover",
    "federation_partition",
    "arrival_surge",
)


def _sample_event(
    rng: np.random.Generator, kind: str, n_hosts: int, horizon: int
):
    start = int(rng.integers(1, horizon + 1))
    max_duration = max(1, min(horizon // 3, horizon + 1 - start))
    duration = int(rng.integers(1, max_duration + 1))
    if kind == "zone_blackout":
        zone_size = 4 if n_hosts >= 4 else n_hosts
        zone = int(rng.integers(0, max(1, n_hosts // zone_size)))
        return ZoneBlackout(
            start=start, duration=duration, zone=zone, zone_size=zone_size
        )
    if kind == "link_degrade":
        k = int(rng.integers(1, max(2, n_hosts // 2) + 1))
        hosts = tuple(
            int(h) for h in rng.choice(n_hosts, size=k, replace=False)
        )
        intensity = round(float(rng.uniform(0.3, 0.9)), 4)
        return LinkDegrade(
            start=start, duration=duration, hosts=hosts, intensity=intensity
        )
    if kind == "node_recover":
        k = int(rng.integers(1, max(2, n_hosts // 2) + 1))
        hosts = tuple(
            int(h) for h in rng.choice(n_hosts, size=k, replace=False)
        )
        return NodeRecover(start=start, duration=1, hosts=hosts)
    if kind == "federation_partition":
        fraction = round(float(rng.uniform(0.2, 0.6)), 4)
        return FederationPartition(
            start=start, duration=duration, fraction=fraction
        )
    if kind == "arrival_surge":
        multiplier = round(float(rng.uniform(2.0, 6.0)), 4)
        return ArrivalSurge(
            start=start, duration=duration, multiplier=multiplier
        )
    raise ValueError(f"unknown event kind {kind!r}")


def sample_schedule(
    rng: np.random.Generator,
    n_hosts: int,
    horizon: int,
    max_events: int,
) -> ChaosSchedule:
    """Draw one random valid schedule for an ``n_hosts`` fleet.

    Events are drawn one at a time; a draw that would violate the
    schedule invariants (same-kind scope overlap) is discarded, which
    keeps sampling deterministic -- rejection consumes no extra
    randomness beyond the rejected draw itself.
    """
    n_events = int(rng.integers(1, max_events + 1))
    events: List = []
    for _ in range(n_events):
        kind = str(rng.choice(_KINDS))
        candidate = _sample_event(rng, kind, n_hosts, horizon)
        try:
            ChaosSchedule(tuple(events) + (candidate,))
        except ValueError:
            continue
        events.append(candidate)
    if not events:
        # Every draw collided; keep the first alone (always valid).
        events.append(_sample_event(rng, str(rng.choice(_KINDS)),
                                    n_hosts, horizon))
    return ChaosSchedule(tuple(events))


def schedule_stream(config: FuzzConfig, n_hosts: int, horizon: int):
    """The session's schedules, one per budget slot (deterministic)."""
    root = np.random.SeedSequence([int(config.seed), SCHEDULE_ENTROPY])
    return [
        sample_schedule(
            np.random.default_rng(child), n_hosts, horizon, config.max_events
        )
        for child in root.spawn(config.budget)
    ]


# ----------------------------------------------------------------------
# Evaluation oracle
# ----------------------------------------------------------------------

def fuzz_scenario_name(base: str, schedule: ChaosSchedule) -> str:
    """Content-addressed name: same schedule, same identity, any run."""
    return f"fuzz/{base}/{schedule.short_id()}"


def register_fuzz_scenario(
    base_spec: ScenarioSpec, schedule: ChaosSchedule
) -> str:
    """Register (idempotently) the base spec perturbed by ``schedule``."""
    name = fuzz_scenario_name(base_spec.name, schedule)
    register(
        base_spec.with_overrides(
            name=name,
            description=(
                f"fuzzed chaos variant of {base_spec.name!r} "
                f"({len(schedule)} events, {schedule.short_id()})"
            ),
            chaos=schedule,
            tags=tuple(base_spec.tags) + ("fuzz",),
        ),
        overwrite=True,
    )
    return name


def evaluation_campaign_config(
    config: FuzzConfig, scenario: str
) -> CampaignConfig:
    """The single-scenario campaign evaluating one (maybe fuzzed) spec.

    Single-scenario on purpose: per-cell seeds depend only on
    ``(seed, n_cells)``, so every oracle call runs paired seeds.
    """
    return CampaignConfig(
        scenarios=(scenario,),
        models=(config.model,),
        n_seeds=config.n_seeds,
        workers=config.workers,
        seed=config.seed,
        n_intervals=config.n_intervals,
        mode=config.mode,
        transport=config.transport,
        service_addr=config.service_addr,
        shared_assets=(config.mode == "fleet"),
        scorer_backend=config.scorer_backend,
        auth_token=config.auth_token,
        store=config.store,
        store_path=config.store_path,
    )


def cliff_score(
    base: Dict[str, float],
    perturbed: Dict[str, float],
    horizon_seconds: float,
) -> float:
    """Scalar QoS-degradation score of a schedule vs the baseline.

    Additive mix of the three cliff surfaces, each normalised to a
    comparable scale: the SLO-violation-rate delta (already in [0, 1]),
    half the relative response-time regression, and the downtime delta
    as a fraction of total fleet-time.  Zero for a no-op schedule
    (paired seeds make the comparison exact); ``threshold`` cuts cliffs
    out of this score.
    """
    slo = perturbed["slo_violation_rate"] - base["slo_violation_rate"]
    resp = (
        perturbed["response_time_s"] - base["response_time_s"]
    ) / max(base["response_time_s"], 1e-9)
    down = (
        perturbed["downtime_s"] - base["downtime_s"]
    ) / max(horizon_seconds, 1e-9)
    return float(slo + 0.5 * resp + down)


# ----------------------------------------------------------------------
# The fuzzing session
# ----------------------------------------------------------------------

def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Sample, evaluate, score and shrink; returns the full session.

    ``progress`` (e.g. ``print``) receives one line per milestone;
    the function itself never writes to stdout.
    """
    say = progress or (lambda _line: None)
    base_spec = get_scenario(config.scenario)
    horizon = (
        config.n_intervals if config.n_intervals is not None
        else base_spec.n_intervals
    )
    horizon_seconds = horizon * base_spec.interval_seconds

    schedules = schedule_stream(config, base_spec.n_hosts, horizon)

    #: Oracle cache: schedule content hash -> mean metrics.  Makes
    #: repeated shrink probes free and deduplicates identical samples.
    cache: Dict[str, Dict[str, float]] = {}
    counter = {"evaluations": 0}

    def evaluate(schedule: Optional[ChaosSchedule]) -> Dict[str, float]:
        if schedule is None:
            scenario = config.scenario
            key = ""
        else:
            scenario = register_fuzz_scenario(base_spec, schedule)
            key = schedule.content_hash()
        try:
            if key in cache:
                return cache[key]
            counter["evaluations"] += 1
            result = run_campaign(
                evaluation_campaign_config(config, scenario)
            )
            metrics = result.mean_metrics(scenario, config.model)
            cache[key] = metrics
            return metrics
        finally:
            # Ephemeral registrants leave the catalog as they found
            # it; only the campaign run above needs the name resolvable.
            if schedule is not None:
                unregister(scenario)

    base_metrics = evaluate(None)
    say(
        f"baseline {config.scenario!r} x{config.n_seeds} seeds: "
        f"slo={base_metrics['slo_violation_rate']:.4f} "
        f"resp={base_metrics['response_time_s']:.1f}s"
    )

    def fails(schedule: ChaosSchedule) -> bool:
        metrics = evaluate(schedule)
        return (
            cliff_score(base_metrics, metrics, horizon_seconds)
            >= config.threshold
        )

    outcomes: List[FuzzOutcome] = []
    for index, schedule in enumerate(schedules):
        metrics = evaluate(schedule)
        score = cliff_score(base_metrics, metrics, horizon_seconds)
        cliff = score >= config.threshold
        shrunk = None
        shrunk_name = ""
        shrunk_score = 0.0
        say(
            f"[{index + 1}/{config.budget}] "
            f"{fuzz_scenario_name(config.scenario, schedule)} "
            f"events={len(schedule)} score={score:+.4f}"
            f"{' CLIFF' if cliff else ''}"
        )
        if cliff and config.shrink:
            shrunk = shrink_schedule(schedule, fails)
            shrunk_name = fuzz_scenario_name(config.scenario, shrunk)
            shrunk_score = cliff_score(
                base_metrics, evaluate(shrunk), horizon_seconds
            )
            say(
                f"    shrunk {len(schedule)} -> {len(shrunk)} events "
                f"({shrunk_name}, score={shrunk_score:+.4f})"
            )
        outcomes.append(FuzzOutcome(
            index=index,
            scenario=fuzz_scenario_name(config.scenario, schedule),
            schedule=schedule,
            metrics=metrics,
            score=score,
            cliff=cliff,
            shrunk=shrunk,
            shrunk_scenario=shrunk_name,
            shrunk_score=shrunk_score,
        ))

    return FuzzResult(
        config=config,
        base_metrics=base_metrics,
        outcomes=tuple(outcomes),
        evaluations=counter["evaluations"],
    )
