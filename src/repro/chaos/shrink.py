"""Greedy schedule shrinking: minimise a cliff-triggering schedule.

Given a :class:`~repro.chaos.schedule.ChaosSchedule` known to trigger
a QoS cliff and a deterministic ``fails(schedule) -> bool`` oracle,
:func:`shrink_schedule` searches for a smaller schedule that still
fails, property-testing style:

1. **event drop** -- try removing each event, first to last; on
   success restart the scan from the smaller schedule;
2. **duration halving** -- try halving each remaining event's window
   (integer division, never below one interval);
3. repeat both passes until neither makes progress (a fixpoint).

Dropping an event or halving a window can only ever *remove* activity,
so every candidate is a valid schedule whenever the input was (the
same-kind overlap invariant cannot be created by shrinking).  The
result is 1-minimal under these two operations: no single event can be
dropped and no single window halved without the cliff disappearing.

The whole search is deterministic given a deterministic oracle, which
is what lets a fuzzer report be reproduced from ``(seed,
schedule_json)`` alone.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from .schedule import ChaosSchedule

__all__ = ["shrink_schedule"]


def _drop_pass(
    schedule: ChaosSchedule, fails: Callable[[ChaosSchedule], bool]
) -> ChaosSchedule:
    """Drop events while the cliff survives; restart scan on success."""
    progress = True
    while progress and len(schedule) > 1:
        progress = False
        for index in range(len(schedule.events)):
            events = (
                schedule.events[:index] + schedule.events[index + 1:]
            )
            candidate = ChaosSchedule(events)
            if fails(candidate):
                schedule = candidate
                progress = True
                break
    return schedule


def _halve_pass(
    schedule: ChaosSchedule, fails: Callable[[ChaosSchedule], bool]
) -> ChaosSchedule:
    """Halve event windows while the cliff survives."""
    progress = True
    while progress:
        progress = False
        for index, event in enumerate(schedule.events):
            if event.duration <= 1:
                continue
            shorter = replace(event, duration=event.duration // 2)
            events = (
                schedule.events[:index] + (shorter,)
                + schedule.events[index + 1:]
            )
            candidate = ChaosSchedule(events)
            if fails(candidate):
                schedule = candidate
                progress = True
                break
    return schedule


def shrink_schedule(
    schedule: ChaosSchedule,
    fails: Callable[[ChaosSchedule], bool],
) -> ChaosSchedule:
    """Greedy event-drop + duration-halving shrink to a fixpoint.

    ``fails`` must be deterministic (the fuzzer memoises its campaign
    oracle by schedule content hash, so repeated probes are free); the
    input schedule is assumed to fail already.
    """
    while True:
        before = schedule.content_hash()
        schedule = _drop_pass(schedule, fails)
        schedule = _halve_pass(schedule, fails)
        if schedule.content_hash() == before:
            return schedule
