"""Fuzzing-session reports and replay files.

``format_fuzz_report`` renders a worst-N cliff table for the terminal;
``write_replay_file`` / ``load_replay_file`` exchange the minimal
self-contained JSON a third party needs to reproduce one schedule's
records bit-for-bit: the base scenario name, the schedule itself, and
the evaluation knobs.  Replays go through the same single-scenario
campaign oracle the fuzzer used, so a replayed record dump is
comparable with ``benchmarks/compare_records.py`` against any
execution mode.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..experiments.report import format_table
from .fuzz import FuzzConfig, FuzzResult
from .schedule import ChaosSchedule

__all__ = [
    "format_fuzz_report",
    "replay_payload",
    "write_replay_file",
    "load_replay_file",
]


def format_fuzz_report(result: FuzzResult, worst: int = 5) -> str:
    """ASCII summary: session header plus the worst-N cliff table."""
    config = result.config
    lines = [
        f"fuzzed {config.budget} schedules over {config.scenario!r} "
        f"({config.model}, seed={config.seed}, n_seeds={config.n_seeds}, "
        f"mode={config.mode}): {len(result.cliffs)} cliffs, "
        f"{result.evaluations} simulated evaluations",
    ]
    rows = []
    for outcome in result.cliffs[:worst]:
        shrunk_cell = (
            f"{len(outcome.shrunk)} ev {outcome.shrunk.short_id()}"
            if outcome.shrunk is not None else "-"
        )
        rows.append((
            outcome.index,
            outcome.schedule.short_id(),
            len(outcome.schedule),
            f"{outcome.score:+.4f}",
            f"{outcome.metrics['slo_violation_rate']:.4f}",
            f"{outcome.metrics['downtime_s']:.0f}",
            shrunk_cell,
        ))
    if rows:
        lines.append(format_table(
            headers=(
                "idx", "schedule", "events", "score",
                "slo rate", "downtime (s)", "shrunk",
            ),
            rows=rows,
            title=f"-- worst {min(worst, len(result.cliffs))} cliffs --",
        ))
    else:
        lines.append(
            "no cliffs found at threshold "
            f"{config.threshold} (best score may still be positive)"
        )
    return "\n".join(lines)


def replay_payload(
    config: FuzzConfig, schedule: ChaosSchedule
) -> Dict[str, object]:
    """The self-contained JSON body reproducing one schedule's records."""
    return {
        "scenario": config.scenario,
        "model": config.model,
        "seed": config.seed,
        "n_seeds": config.n_seeds,
        "n_intervals": config.n_intervals,
        "schedule": schedule.to_dict(),
        "schedule_hash": schedule.content_hash(),
    }


def write_replay_file(
    path: str, config: FuzzConfig, schedule: ChaosSchedule
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(replay_payload(config, schedule), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def load_replay_file(path: str) -> Dict[str, object]:
    """Parse and structurally check a replay file.

    Returns the payload with ``schedule`` already rebuilt as a
    :class:`ChaosSchedule` (validating it) and the hash cross-checked
    when present -- a corrupted corpus file fails loudly here, not as
    a mysterious metric drift later.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    for key in ("scenario", "schedule"):
        if key not in data:
            raise ValueError(f"replay file {path!r} lacks {key!r}")
    schedule = ChaosSchedule.from_dict(data["schedule"])
    expected: Optional[str] = data.get("schedule_hash")
    if expected is not None and expected != schedule.content_hash():
        raise ValueError(
            f"replay file {path!r}: schedule_hash {expected} does not "
            f"match the schedule's content hash "
            f"{schedule.content_hash()} -- the file has been edited"
        )
    data["schedule"] = schedule
    return data
