"""SQLite campaign store: durable, resumable, crash-safe.

Stdlib ``sqlite3`` only.  The schema mirrors the canonical cell id::

    campaigns(config_hash PRIMARY KEY, grid_json, telemetry_json)
    cells(config_hash, scenario, model, seed_index  -- the cell id
          run_index, record_json,
          PRIMARY KEY (config_hash, scenario, model, seed_index))

Durability and concurrency choices:

* **WAL journal** -- writers never block the readers that poll a live
  campaign (``repro store list`` / the CI resume smoke watch loop),
  and a SIGKILLed writer leaves a consistent database: whatever
  committed before the kill is there after reopen, half-written
  transactions are rolled back by WAL recovery on the next open.
* **Autocommit per record** -- every ``put_record`` is its own
  transaction, so a campaign interrupted at cell *k* resumes with
  exactly *k* cells completed; there is no end-of-run flush to lose.
* **One connection, one lock** -- the fleet collector thread persists
  records while the main thread opened the store, so the connection
  is created with ``check_same_thread=False`` and every statement
  runs under an ``RLock`` (sqlite3 serializes internally too; the
  lock makes read-modify-write sequences atomic).

Records are stored as canonical JSON text; Python's ``json`` writes
floats via ``repr`` so the metric bits survive the text round-trip
exactly (see :mod:`repro.storage.base`).  ``user_version`` pins the
schema: a future incompatible layout bumps it, and opening a store
from the wrong era fails loudly instead of misreading it.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Dict, List, Optional, Set

from .base import (
    CampaignStore,
    CellKey,
    StoredCampaign,
    StoreError,
    canonical_json,
)

__all__ = ["SqliteCampaignStore", "SQLITE_MAGIC"]

#: First 16 bytes of every SQLite database file -- the sniffing key
#: that lets CLIs accept "records JSON or store file" transparently.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Schema era of this module; bump on incompatible layout changes.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    config_hash TEXT PRIMARY KEY,
    grid_json TEXT NOT NULL,
    telemetry_json TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS cells (
    config_hash TEXT NOT NULL,
    scenario TEXT NOT NULL,
    model TEXT NOT NULL,
    seed_index INTEGER NOT NULL,
    run_index INTEGER NOT NULL,
    record_json TEXT NOT NULL,
    PRIMARY KEY (config_hash, scenario, model, seed_index)
);
"""


class SqliteCampaignStore(CampaignStore):
    """One-file durable store keyed by the canonical cell id."""

    kind = "sqlite"

    def __init__(self, path: str) -> None:
        if not path:
            raise StoreError("sqlite store needs a file path")
        self.path = path
        self._lock = threading.RLock()
        # check_same_thread=False: the fleet record collector persists
        # from its drain thread; the RLock serializes our access.
        self._conn = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None
        )
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            version = int(
                self._conn.execute("PRAGMA user_version").fetchone()[0]
            )
            if version == 0:
                self._conn.executescript(_SCHEMA)
                self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            elif version != SCHEMA_VERSION:
                raise StoreError(
                    f"{path}: campaign-store schema version {version} is "
                    f"not the supported {SCHEMA_VERSION}; refusing to "
                    "misread it"
                )
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise StoreError(f"{path}: not a campaign store: {error}") from None
        except StoreError:
            self._conn.close()
            raise

    def register_campaign(
        self, config_hash: str, grid: Dict[str, object]
    ) -> None:
        text = canonical_json(grid)
        with self._lock:
            row = self._conn.execute(
                "SELECT grid_json FROM campaigns WHERE config_hash=?",
                (config_hash,),
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO campaigns (config_hash, grid_json) "
                    "VALUES (?, ?)",
                    (config_hash, text),
                )
            elif canonical_json(json.loads(row[0])) != text:
                raise StoreError(
                    f"{self.path}: campaign {config_hash} is already "
                    "registered with a different grid identity; refusing "
                    "to resume against a mismatched config"
                )

    def campaigns(self) -> List[StoredCampaign]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT c.config_hash, c.grid_json, "
                "  (SELECT COUNT(*) FROM cells WHERE config_hash=c.config_hash) "
                "FROM campaigns c ORDER BY c.config_hash"
            ).fetchall()
        return [
            StoredCampaign(
                config_hash=config_hash,
                grid=json.loads(grid_json),
                cells_completed=int(n_cells),
            )
            for config_hash, grid_json, n_cells in rows
        ]

    def grid(self, config_hash: str) -> Dict[str, object]:
        with self._lock:
            row = self._conn.execute(
                "SELECT grid_json FROM campaigns WHERE config_hash=?",
                (config_hash,),
            ).fetchone()
        if row is None:
            raise StoreError(f"unknown campaign {config_hash!r}")
        return json.loads(row[0])

    def put_record(self, config_hash: str, payload: Dict[str, object]) -> bool:
        scenario, model, seed_index = self._check_cell_payload(payload)
        text = canonical_json(payload)
        with self._lock:
            self.grid(config_hash)  # loud on unregistered campaigns
            existing = self._conn.execute(
                "SELECT record_json FROM cells WHERE config_hash=? AND "
                "scenario=? AND model=? AND seed_index=?",
                (config_hash, scenario, model, seed_index),
            ).fetchone()
            if existing is not None:
                if canonical_json(json.loads(existing[0])) != text:
                    raise StoreError(
                        f"cell {(scenario, model, seed_index)} of campaign "
                        f"{config_hash} already holds a different record; "
                        "records are bit-identical by contract, so the "
                        "store (or the run) is corrupted"
                    )
                return False
            self._conn.execute(
                "INSERT INTO cells (config_hash, scenario, model, "
                "seed_index, run_index, record_json) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    config_hash,
                    scenario,
                    model,
                    seed_index,
                    int(payload.get("run_index", 0)),
                    text,
                ),
            )
            return True

    def get_record(
        self, config_hash: str, scenario: str, model: str, seed_index: int
    ) -> Optional[Dict[str, object]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT record_json FROM cells WHERE config_hash=? AND "
                "scenario=? AND model=? AND seed_index=?",
                (config_hash, str(scenario), str(model), int(seed_index)),
            ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def records(self, config_hash: str) -> List[Dict[str, object]]:
        with self._lock:
            self.grid(config_hash)
            rows = self._conn.execute(
                "SELECT record_json FROM cells WHERE config_hash=? "
                "ORDER BY run_index",
                (config_hash,),
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def completed_cells(self, config_hash: str) -> Set[CellKey]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT scenario, model, seed_index FROM cells "
                "WHERE config_hash=?",
                (config_hash,),
            ).fetchall()
        return {
            (str(scenario), str(model), int(seed_index))
            for scenario, model, seed_index in rows
        }

    def merge_telemetry(self, config_hash: str, snapshot: dict) -> None:
        if not snapshot:
            return
        from ..telemetry import merge_snapshots

        with self._lock:
            self.grid(config_hash)
            row = self._conn.execute(
                "SELECT telemetry_json FROM campaigns WHERE config_hash=?",
                (config_hash,),
            ).fetchone()
            stored = json.loads(row[0]) if row is not None else {}
            merged = (
                merge_snapshots(stored, snapshot) if stored else dict(snapshot)
            )
            self._conn.execute(
                "UPDATE campaigns SET telemetry_json=? WHERE config_hash=?",
                (canonical_json(merged), config_hash),
            )

    def telemetry(self, config_hash: str) -> dict:
        with self._lock:
            self.grid(config_hash)
            row = self._conn.execute(
                "SELECT telemetry_json FROM campaigns WHERE config_hash=?",
                (config_hash,),
            ).fetchone()
        return json.loads(row[0]) if row is not None else {}

    def close(self) -> None:
        with self._lock:
            self._conn.close()
