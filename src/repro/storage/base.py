"""The ``CampaignStore`` contract and its serialization helpers.

A campaign store is a durable map from the canonical cell id to the
cell's finished record.  The **cell id** is::

    (config_hash, scenario, model, seed_index)

where ``config_hash`` is the SHA-256 of the campaign's canonical *grid
identity* -- the :func:`repro.experiments.campaign.
campaign_grid_identity` payload covering every
:class:`~repro.experiments.campaign.CampaignConfig` field that can
change record *content* (scenario/model/seed grid, interval and
offline-training sizes, overrides, scorer backend) and deliberately
excluding pure execution topology (worker count, mode, transport,
timeouts, credentials, the store settings themselves).  Because
campaign records are bit-identical across execution modes, two runs
that agree on the grid identity produce byte-identical records -- so
a stored record can stand in for re-running its cell, which is what
makes resume sound.

Serialization is lossless by construction: records are stored as
canonical JSON, and Python's ``json`` emits floats via ``repr`` (the
shortest round-tripping form), so ``float -> text -> float`` is
bit-exact for every finite value (NaN/Infinity ride the ``json``
module's literal spellings).  The round-trip property -- a restored
:class:`~repro.experiments.campaign.RunRecord` compares equal, metric
bits included, to the record that was stored -- is pinned by
``tests/test_storage.py``.

Write semantics are **first-wins and tamper-loud**:

* registering a campaign whose ``config_hash`` already exists with a
  *different* grid payload raises :class:`StoreError` (a hash
  collision or a corrupted store -- resuming against it would mix
  records from different grids, so the store refuses loudly);
* re-putting an identical record is a counted no-op (fleet zombie
  workers legitimately deliver duplicates);
* putting a *different* record for an already-stored cell raises
  :class:`StoreError` -- bit-identity says that can only happen when
  the store or the run is corrupted.

Only stdlib imports here: benchmarks and external tooling read stores
without importing the nn/simulation stack.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "CampaignStore",
    "StoreError",
    "StoredCampaign",
    "CellKey",
    "canonical_json",
    "hash_payload",
    "short_hash",
]

#: (scenario, model, seed_index) -- the within-campaign half of the
#: canonical cell id; the campaign half is the config hash.
CellKey = Tuple[str, str, int]


class StoreError(RuntimeError):
    """A store invariant was violated (mismatch, corruption, misuse)."""


def canonical_json(payload) -> str:
    """Deterministic JSON text: sorted keys, no whitespace.

    The canonical form is both the hashing surface (two configs hash
    equal iff their grid identities are equal) and the storage format
    (equality of stored text implies equality of restored values).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def hash_payload(payload) -> str:
    """SHA-256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def short_hash(config_hash: str) -> str:
    """Display form of a config hash (12 hex chars, like git)."""
    return config_hash[:12]


@dataclass(frozen=True)
class StoredCampaign:
    """One campaign's summary row (``repro store list``)."""

    config_hash: str
    grid: Dict[str, object]
    cells_completed: int

    @property
    def cells_total(self) -> int:
        """Grid size implied by the identity payload."""
        return (
            len(self.grid.get("scenarios", ()))
            * len(self.grid.get("models", ()))
            * int(self.grid.get("n_seeds", 0))
        )


class CampaignStore(ABC):
    """Durable (or in-memory) map from canonical cell ids to records.

    Record payloads are opaque JSON-safe dicts in the shape of one
    ``campaign --record-json`` records entry (identity columns, metric
    columns, ``run_index``, ``diagnostics``) -- see
    :func:`repro.experiments.campaign.record_to_payload`.  The store
    indexes them by the cell key and never interprets the metrics.
    """

    #: Factory name of the backend ("memory" / "sqlite").
    kind: str = ""

    # -- campaign registry -------------------------------------------------
    @abstractmethod
    def register_campaign(
        self, config_hash: str, grid: Dict[str, object]
    ) -> None:
        """Idempotently register a campaign's grid identity.

        Raises :class:`StoreError` when ``config_hash`` is already
        registered with a *different* grid payload: resuming against a
        mismatched identity would attribute foreign records to this
        campaign, so the store refuses loudly instead.
        """

    @abstractmethod
    def campaigns(self) -> List[StoredCampaign]:
        """Every registered campaign, sorted by config hash."""

    @abstractmethod
    def grid(self, config_hash: str) -> Dict[str, object]:
        """The registered grid identity (raises :class:`StoreError`)."""

    # -- cell records ------------------------------------------------------
    @abstractmethod
    def put_record(self, config_hash: str, payload: Dict[str, object]) -> bool:
        """Store one finished cell's record payload, first-wins.

        Returns True when the record was newly stored, False for a
        byte-identical duplicate.  Raises :class:`StoreError` for an
        unregistered campaign or a *conflicting* record for an
        already-stored cell.
        """

    @abstractmethod
    def get_record(
        self, config_hash: str, scenario: str, model: str, seed_index: int
    ) -> Optional[Dict[str, object]]:
        """One cell's stored payload, or None when not yet completed."""

    @abstractmethod
    def records(self, config_hash: str) -> List[Dict[str, object]]:
        """All stored payloads of a campaign, sorted by ``run_index``."""

    @abstractmethod
    def completed_cells(self, config_hash: str) -> Set[CellKey]:
        """Cell keys that already hold a record (the resume skip set)."""

    # -- telemetry ---------------------------------------------------------
    @abstractmethod
    def merge_telemetry(self, config_hash: str, snapshot: dict) -> None:
        """Fold one execution's merged snapshot into the stored view.

        Uses :func:`repro.telemetry.merge_snapshots` semantics, so the
        stored snapshot accumulates across interrupted runs exactly as
        worker snapshots accumulate within one run.
        """

    @abstractmethod
    def telemetry(self, config_hash: str) -> dict:
        """The accumulated telemetry snapshot (may be empty)."""

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:  # pragma: no cover - trivial default
        """Release backend resources; further use is undefined."""

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- shared conveniences ----------------------------------------------
    def only_campaign(self) -> str:
        """The single registered campaign's hash (raises otherwise)."""
        rows = self.campaigns()
        if len(rows) == 1:
            return rows[0].config_hash
        if not rows:
            raise StoreError("store holds no campaigns")
        raise StoreError(
            "store holds several campaigns; pick one of: "
            + ", ".join(short_hash(row.config_hash) for row in rows)
        )

    def resolve_campaign(self, prefix: str = "") -> str:
        """Resolve a (possibly short) hash prefix to one campaign."""
        if not prefix:
            return self.only_campaign()
        matches = [
            row.config_hash
            for row in self.campaigns()
            if row.config_hash.startswith(prefix)
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise StoreError(f"no campaign matches {prefix!r}")
        raise StoreError(
            f"campaign prefix {prefix!r} is ambiguous: "
            + ", ".join(short_hash(match) for match in matches)
        )

    def export_payload(self, config_hash: str) -> Dict[str, object]:
        """A ``campaign --record-json``-shaped dump of one campaign.

        ``config`` carries the grid identity (plus the hash itself),
        ``records`` the stored cells sorted by ``run_index``, and
        ``telemetry`` the accumulated snapshot -- the exact surface
        ``benchmarks/compare_records.py`` and ``repro telemetry``
        consume, so a store file substitutes for a records JSON
        anywhere downstream.
        """
        return {
            "config": dict(self.grid(config_hash), config_hash=config_hash),
            "records": self.records(config_hash),
            "telemetry": self.telemetry(config_hash),
        }

    @staticmethod
    def _check_cell_payload(payload: Dict[str, object]) -> CellKey:
        """Validate the identity columns; returns the cell key."""
        try:
            return (
                str(payload["scenario"]),
                str(payload["model"]),
                int(payload["seed_index"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(
                f"record payload missing identity columns: {error!r}"
            ) from None
