"""``repro.storage`` -- durable campaign records behind one seam.

Campaigns used to be fire-and-forget: every
:class:`~repro.experiments.campaign.RunRecord` lived in the parent
process and died with it, so an interrupted million-cell campaign
restarted from zero and results stopped being queryable the moment
the summary printed.  This package makes records **assets**:

* a :class:`~repro.storage.base.CampaignStore` interface keyed by the
  canonical cell id ``(config_hash, scenario, model, seed_index)``;
* two backends behind :func:`open_store` -- ``memory`` (the default;
  preserves the historical in-process semantics exactly) and
  ``sqlite`` (stdlib ``sqlite3`` in WAL mode, one row per cell,
  records serialized as canonical JSON so restored metrics round-trip
  bit-identically);
* resume by construction: ``run_campaign`` consults
  ``completed_cells()`` before executing, restored records stand in
  for their cells (bit-identity across execution modes makes that
  sound), and the skip count lands in the ``fleet.cells_resumed``
  telemetry counter.  ``python -m repro serve`` does the same on the
  service side, pre-completing the
  :class:`~repro.serving.coordinator.CellCoordinator` lease queue so
  already-stored cells are never leased to workers.

See ``docs/architecture.md`` ("Cell identity and the config hash")
for what is hashed, what is deliberately excluded, and why changing
the identity invalidates resumes.  The CLI surface is
``campaign --store sqlite --store-path runs.db``, ``serve --store
...`` and the ``repro store list|show|export`` family; downstream,
``benchmarks/compare_records.py`` and ``repro telemetry`` accept a
store file anywhere they accept a records JSON.
"""

from __future__ import annotations

from .base import (
    CampaignStore,
    CellKey,
    StoredCampaign,
    StoreError,
    canonical_json,
    hash_payload,
    short_hash,
)
from .memory import MemoryCampaignStore
from .sqlite import SQLITE_MAGIC, SqliteCampaignStore

__all__ = [
    "CampaignStore",
    "CellKey",
    "MemoryCampaignStore",
    "SqliteCampaignStore",
    "StoreError",
    "StoredCampaign",
    "STORE_KINDS",
    "SQLITE_MAGIC",
    "canonical_json",
    "hash_payload",
    "is_sqlite_store",
    "open_store",
    "short_hash",
]

#: Backend names accepted by :func:`open_store` and
#: ``CampaignConfig.store`` -- one source of truth for validation.
STORE_KINDS = ("memory", "sqlite")


def open_store(kind: str, path: str = "") -> CampaignStore:
    """Factory: one place maps backend names to implementations.

    ``memory`` ignores ``path`` (there is nothing to point at);
    ``sqlite`` requires one and creates the database on first open.
    """
    if kind == "memory":
        return MemoryCampaignStore()
    if kind == "sqlite":
        return SqliteCampaignStore(path)
    raise StoreError(
        f"unknown campaign store {kind!r}; expected one of {STORE_KINDS}"
    )


def is_sqlite_store(path: str) -> bool:
    """Sniff a file's magic: is this a SQLite database?

    The detection key that lets ``repro telemetry``, ``repro store``
    and ``benchmarks/compare_records.py`` accept either a records
    JSON or a store file through the same argument.
    """
    try:
        with open(path, "rb") as probe:
            return probe.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False
