"""In-memory campaign store: today's semantics, behind the seam.

The default backend.  Nothing outlives the process -- a fresh store is
always empty, so no cell is ever skipped and ``run_campaign`` behaves
exactly as it did before the storage seam existed.  Its value is the
shared contract: the memory and sqlite backends pass the same parity
suite (``tests/test_storage.py``), so "works against memory" implies
"works against sqlite" for every put/get/list/skip path.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Set

from .base import (
    CampaignStore,
    CellKey,
    StoredCampaign,
    StoreError,
    canonical_json,
)

__all__ = ["MemoryCampaignStore"]


class _Campaign:
    __slots__ = ("grid", "records", "telemetry")

    def __init__(self, grid: Dict[str, object]) -> None:
        self.grid = grid
        self.records: Dict[CellKey, Dict[str, object]] = {}
        self.telemetry: dict = {}


class MemoryCampaignStore(CampaignStore):
    """Dict-backed store; thread-safe like its sqlite sibling."""

    kind = "memory"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._campaigns: Dict[str, _Campaign] = {}

    def register_campaign(
        self, config_hash: str, grid: Dict[str, object]
    ) -> None:
        with self._lock:
            existing = self._campaigns.get(config_hash)
            if existing is None:
                self._campaigns[config_hash] = _Campaign(dict(grid))
            elif canonical_json(existing.grid) != canonical_json(grid):
                raise StoreError(
                    f"campaign {config_hash} is already registered with a "
                    "different grid identity; refusing to resume against a "
                    "mismatched config"
                )

    def campaigns(self) -> List[StoredCampaign]:
        with self._lock:
            return [
                StoredCampaign(
                    config_hash=config_hash,
                    grid=dict(campaign.grid),
                    cells_completed=len(campaign.records),
                )
                for config_hash, campaign in sorted(self._campaigns.items())
            ]

    def grid(self, config_hash: str) -> Dict[str, object]:
        return dict(self._campaign(config_hash).grid)

    def put_record(self, config_hash: str, payload: Dict[str, object]) -> bool:
        key = self._check_cell_payload(payload)
        text = canonical_json(payload)
        with self._lock:
            campaign = self._campaign(config_hash)
            existing = campaign.records.get(key)
            if existing is not None:
                if canonical_json(existing) != text:
                    raise StoreError(
                        f"cell {key} of campaign {config_hash} already holds "
                        "a different record; records are bit-identical by "
                        "contract, so the store (or the run) is corrupted"
                    )
                return False
            # Round-trip through the canonical text so memory and
            # sqlite return indistinguishable (JSON-shaped) payloads.
            campaign.records[key] = json.loads(text)
            return True

    def get_record(
        self, config_hash: str, scenario: str, model: str, seed_index: int
    ) -> Optional[Dict[str, object]]:
        with self._lock:
            record = self._campaign(config_hash).records.get(
                (str(scenario), str(model), int(seed_index))
            )
            return dict(record) if record is not None else None

    def records(self, config_hash: str) -> List[Dict[str, object]]:
        with self._lock:
            return sorted(
                (dict(r) for r in self._campaign(config_hash).records.values()),
                key=lambda payload: int(payload.get("run_index", 0)),
            )

    def completed_cells(self, config_hash: str) -> Set[CellKey]:
        with self._lock:
            campaign = self._campaigns.get(config_hash)
            return set(campaign.records) if campaign is not None else set()

    def merge_telemetry(self, config_hash: str, snapshot: dict) -> None:
        if not snapshot:
            return
        from ..telemetry import merge_snapshots

        with self._lock:
            campaign = self._campaign(config_hash)
            campaign.telemetry = (
                merge_snapshots(campaign.telemetry, snapshot)
                if campaign.telemetry
                else dict(snapshot)
            )

    def telemetry(self, config_hash: str) -> dict:
        with self._lock:
            return dict(self._campaign(config_hash).telemetry)

    def _campaign(self, config_hash: str) -> _Campaign:
        campaign = self._campaigns.get(config_hash)
        if campaign is None:
            raise StoreError(f"unknown campaign {config_hash!r}")
        return campaign
