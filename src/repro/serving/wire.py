"""Length-prefixed binary framing for the TCP fleet transport.

The socket transport (:mod:`repro.serving.transports`) ships exactly
the dataclasses the queue transport ships -- :class:`AscentRequest`,
:class:`ConfidenceRequest`, :class:`OverlayUpdate`, :class:`ClientDone`
and their replies -- but over a wire format with no pickle anywhere:

``frame := MAGIC(4) | type(1) | header_len(u32) | body_len(u32)
           | header(JSON) | body(packed arrays)``

* the **header** is UTF-8 JSON carrying every scalar field plus the
  body's array manifest (``(name, shape, dtype, offset)`` entries, the
  same layout :func:`repro.nn.serialization.pack_state` produces);
* the **body** is the ``pack_state`` buffer of the message's ndarray
  fields -- raw little-endian bytes, so float64 payloads round-trip
  **bit-exactly** and TCP-scored fleet records can stay bit-identical
  to serial execution.

Every decoding failure raises :class:`WireError` (or its subclass
:class:`ConnectionClosed` for EOF *between* frames): a malformed or
truncated frame is always a loud protocol error, never a hang or a
silently skipped message.  Frames are bounded (``MAX_HEADER_BYTES`` /
``MAX_BODY_BYTES``) so a corrupt length prefix cannot ask the peer to
allocate unbounded memory.
"""

from __future__ import annotations

import json
import struct
import threading
from dataclasses import dataclass, fields
from typing import Dict, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..nn.serialization import pack_state, unpack_state
from .service import (
    AscentReply,
    AscentRequest,
    CellDone,
    ClientDone,
    ConfidenceReply,
    ConfidenceRequest,
    LeaseGrant,
    LeaseRequest,
    OverlayUpdate,
    Ping,
    StatsUpdate,
)

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "WireError",
    "ConnectionClosed",
    "Hello",
    "Welcome",
    "AssetIndexRequest",
    "AssetIndex",
    "AssetRequest",
    "AssetReply",
    "ServiceError",
    "encode_message",
    "decode_payload",
    "send_message",
    "recv_message",
]

MAGIC = b"CRL1"
#: Version 2 added the elastic-fleet frames (LEASE/CELL_DONE/PING) and
#: the pre-shared auth token field in HELLO.  The handshake rejects
#: mismatched versions loudly, so mixed deployments fail fast instead
#: of mis-decoding.
PROTOCOL_VERSION = 2

#: magic, message type code, header length, body length.
_PREFIX = struct.Struct("!4sBII")

MAX_HEADER_BYTES = 1 << 24  # 16 MiB of JSON is already absurd
MAX_BODY_BYTES = 1 << 31  # 2 GiB of packed arrays

# Wire telemetry: frame and byte counters on both directions.  These
# fire from reader threads too; int += is atomic enough under the GIL
# for monitoring purposes.
_FRAMES_SENT = _telemetry.counter("wire.frames_sent")
_BYTES_SENT = _telemetry.counter("wire.bytes_sent")
_FRAMES_RECEIVED = _telemetry.counter("wire.frames_received")
_BYTES_RECEIVED = _telemetry.counter("wire.bytes_received")


class WireError(RuntimeError):
    """A malformed, truncated, or out-of-protocol frame."""


class ConnectionClosed(WireError):
    """EOF at a frame boundary (the peer closed the socket)."""


# ----------------------------------------------------------------------
# Control messages that exist only on the wire
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hello:
    """Client greeting; the server answers with :class:`Welcome`.

    ``token`` is the pre-shared fleet auth token (``serve
    --auth-token`` / ``REPRO_FLEET_TOKEN``).  A mismatch is rejected
    loudly *before* WELCOME assigns a client id; the empty default
    keeps tokenless deployments working unchanged.
    """

    protocol: int = PROTOCOL_VERSION
    token: str = ""


@dataclass(frozen=True)
class Welcome:
    """Server handshake reply assigning the connection's client id."""

    client_id: int
    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class AssetIndexRequest:
    """Ask the service which asset packs (and metadata) it hosts."""


@dataclass(frozen=True)
class AssetIndex:
    """``scenario -> {gon_hidden, gon_layers, seed, gan_seed}``."""

    index: Dict[str, Dict[str, int]]


@dataclass(frozen=True)
class AssetRequest:
    """Fetch one published asset pack by name (e.g. ``"s/weights"``)."""

    pack: str


@dataclass(frozen=True)
class AssetReply:
    """One asset pack: the ``pack_state`` buffer plus its manifest."""

    pack: str
    manifest: Tuple[Tuple[str, Tuple[int, ...], str, int], ...]
    buffer: np.ndarray


@dataclass(frozen=True)
class ServiceError:
    """Server-side fatal error broadcast to clients before teardown."""

    message: str


# ----------------------------------------------------------------------
# Codec registry
# ----------------------------------------------------------------------
#: Message class -> ndarray field names (shipped in the packed body).
_ARRAY_FIELDS = {
    Hello: (),
    Welcome: (),
    AssetIndexRequest: (),
    AssetIndex: (),
    AssetRequest: (),
    AssetReply: ("buffer",),
    ServiceError: (),
    AscentRequest: ("metrics", "schedules", "adjacencies"),
    ConfidenceRequest: ("metrics", "schedules", "adjacencies"),
    OverlayUpdate: ("buffer",),
    ClientDone: (),
    AscentReply: ("metrics", "confidences", "n_steps", "converged"),
    ConfidenceReply: ("confidences",),
    # STATS frame: the telemetry snapshot dict rides in the JSON
    # header (it is JSON-safe by construction), no packed body.
    # Message type codes come from insertion order, so new messages
    # must never reorder the existing entries.
    StatsUpdate: (),
    # Elastic-fleet frames (protocol 2): the lease queue and the
    # heartbeat.  Scalar-only payloads, appended after every protocol-1
    # frame.  (The service-internal WorkerLost notice deliberately has
    # no wire code: it is enqueued locally by transports/watchdogs and
    # must never arrive from a client.)
    LeaseRequest: (),
    LeaseGrant: (),
    CellDone: (),
    Ping: (),
}

#: Replies are consumed by clients that may mutate result arrays (the
#: queue transport hands out private pickled copies); decode these to
#: writable private arrays instead of read-only views.
_COPY_ON_DECODE = (AscentReply, ConfidenceReply)

#: Fields holding a ``pack_state`` manifest: JSON turns the nested
#: tuples into lists, so decoding restores the tuple shape.
_MANIFEST_FIELDS = {OverlayUpdate: ("manifest",), AssetReply: ("manifest",)}

#: Scalar-tuple fields (JSON round-trips them as lists; decoding
#: restores the frozen-dataclass tuple shape).
_INT_TUPLE_FIELDS = {LeaseGrant: ("poisoned",)}

_CODE_BY_CLASS = {cls: code for code, cls in enumerate(_ARRAY_FIELDS, start=1)}
_CLASS_BY_CODE = {code: cls for cls, code in _CODE_BY_CLASS.items()}


def _as_manifest(entries) -> tuple:
    try:
        return tuple(
            (str(name), tuple(int(n) for n in shape), str(dtype), int(offset))
            for name, shape, dtype, offset in entries
        )
    except (TypeError, ValueError) as error:
        raise WireError(f"malformed array manifest in header: {error}") from None


def encode_message(message) -> bytes:
    """One wire frame (bytes) for a protocol dataclass."""
    cls = type(message)
    code = _CODE_BY_CLASS.get(cls)
    if code is None:
        raise WireError(f"{cls.__name__} is not a wire message")
    array_names = _ARRAY_FIELDS[cls]
    header: Dict[str, object] = {}
    for field in fields(cls):
        if field.name in array_names:
            continue
        header[field.name] = getattr(message, field.name)
    if array_names:
        buffer, manifest = pack_state(
            {name: np.asarray(getattr(message, name)) for name in array_names}
        )
        body = buffer.tobytes()
        header["__pack__"] = manifest
    else:
        body = b""
    header_bytes = json.dumps(header).encode("utf-8")
    frame = (
        _PREFIX.pack(MAGIC, code, len(header_bytes), len(body)) + header_bytes + body
    )
    _FRAMES_SENT.inc()
    _BYTES_SENT.add(len(frame))
    return frame


def decode_payload(code: int, header_bytes: bytes, body: bytes):
    """Rebuild the dataclass for one frame's payload (loudly)."""
    cls = _CLASS_BY_CODE.get(code)
    if cls is None:
        raise WireError(f"unknown wire message type {code}")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"malformed {cls.__name__} header: {error}") from None
    if not isinstance(header, dict):
        raise WireError(f"malformed {cls.__name__} header: not an object")

    kwargs: Dict[str, object] = {}
    pack_manifest = header.pop("__pack__", None)
    scalar_names = {
        field.name for field in fields(cls) if field.name not in _ARRAY_FIELDS[cls]
    }
    if set(header) != scalar_names:
        raise WireError(
            f"{cls.__name__} header fields {sorted(header)} != "
            f"expected {sorted(scalar_names)}"
        )
    kwargs.update(header)
    for name in _MANIFEST_FIELDS.get(cls, ()):
        kwargs[name] = _as_manifest(kwargs[name])
    for name in _INT_TUPLE_FIELDS.get(cls, ()):
        try:
            kwargs[name] = tuple(int(value) for value in kwargs[name])
        except (TypeError, ValueError) as error:
            raise WireError(
                f"malformed {cls.__name__}.{name} in header: {error}"
            ) from None

    array_names = _ARRAY_FIELDS[cls]
    if array_names:
        if pack_manifest is None:
            raise WireError(f"{cls.__name__} frame is missing its array pack")
        manifest = _as_manifest(pack_manifest)
        if {entry[0] for entry in manifest} != set(array_names):
            raise WireError(
                f"{cls.__name__} pack carries {[e[0] for e in manifest]}, "
                f"expected {sorted(array_names)}"
            )
        # Array reconstruction trusts nothing from the header: a bogus
        # dtype string, an overflowing shape or a lying offset must
        # all surface as WireError, never as a stray TypeError that a
        # reader thread's except clause misses.
        try:
            end = max(
                offset
                + int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
                for _name, shape, dtype, offset in manifest
            )
            if end > len(body):
                raise WireError(
                    f"{cls.__name__} body holds {len(body)} bytes but the "
                    f"manifest describes {end}: truncated frame"
                )
            views = unpack_state(np.frombuffer(body, dtype=np.uint8), list(manifest))
        except WireError:
            raise
        except Exception as error:
            raise WireError(
                f"{cls.__name__} array manifest is invalid: {error}"
            ) from None
        copy = cls in _COPY_ON_DECODE
        for name in array_names:
            kwargs[name] = np.array(views[name]) if copy else views[name]
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise WireError(f"cannot build {cls.__name__}: {error}") from None


# ----------------------------------------------------------------------
# Socket IO
# ----------------------------------------------------------------------
def _read_exact(sock, n: int, at_boundary: bool) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except TimeoutError:
            # A socket read timeout is a liveness signal, not a frame
            # corruption: let it propagate so the caller can name the
            # configured read timeout in its error.
            raise
        except OSError as error:
            raise WireError(f"socket read failed: {error}") from None
        if not chunk:
            if at_boundary and remaining == n:
                raise ConnectionClosed("peer closed the connection")
            raise WireError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
        at_boundary = False
    return b"".join(chunks)


def recv_message(sock):
    """Read and decode one frame; loud on anything unexpected."""
    prefix = _read_exact(sock, _PREFIX.size, at_boundary=True)
    magic, code, header_len, body_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len > MAX_HEADER_BYTES:
        raise WireError(f"frame header of {header_len} bytes exceeds the protocol cap")
    if body_len > MAX_BODY_BYTES:
        raise WireError(f"frame body of {body_len} bytes exceeds the protocol cap")
    header = _read_exact(sock, header_len, at_boundary=False)
    body = _read_exact(sock, body_len, at_boundary=False) if body_len else b""
    _FRAMES_RECEIVED.inc()
    _BYTES_RECEIVED.add(_PREFIX.size + header_len + body_len)
    return decode_payload(code, header, body)


def send_message(sock, message, lock: "threading.Lock | None" = None) -> None:
    """Encode and write one frame (optionally under a send lock)."""
    frame = encode_message(message)
    try:
        if lock is None:
            sock.sendall(frame)
        else:
            with lock:
                sock.sendall(frame)
    except OSError as error:
        raise WireError(f"socket write failed: {error}") from None
