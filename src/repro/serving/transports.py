"""Pluggable fleet transports: in-machine queues or TCP sockets.

:class:`GONScoringService` is transport-agnostic: it drains *any*
object with the stdlib ``get(timeout)`` surface and replies through
*any* per-client object with ``put``.  A transport bundles those two
endpoints plus the worker-side counterparts:

* :class:`QueueTransport` -- the PR-3/4 single-machine path,
  ``multiprocessing`` queues created in exactly the historical order,
  preserving that mode's behaviour bit-for-bit;
* :class:`TcpTransport` -- the multi-node path.  The service listens on
  a socket; each accepted client gets a dedicated **reader thread**
  that decodes length-prefixed frames (:mod:`repro.serving.wire`) and
  feeds them into the service's single FIFO request queue.  A client's
  socket is read sequentially, so its messages enter the FIFO in send
  order and the overlay protocol's install-before-score guarantee
  survives the network hop; cross-client interleaving is harmless
  because generation > 0 buckets are private per client.

Failure semantics are deliberately loud.  A malformed or truncated
frame, a client vanishing before :class:`ClientDone`, or a reply to a
dead socket all surface as :class:`TransportError` out of
``service.serve`` -- never a hang.  :func:`serve_transport` broadcasts
the failure to every connected client before re-raising, so remote
workers blocked on a reply fail loudly too.

The TCP transport doubles as the asset channel: publish
``pack_state``-packed buffers via ``asset_packs`` and remote workers
fetch each one once at startup (see
:func:`repro.serving.shared.fetch_array_pack`) instead of attaching
``multiprocessing.shared_memory``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import socket
import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from .. import telemetry as _telemetry
from . import wire
from .service import ClientDone, Ping, WorkerLost
from .wire import (
    AssetIndex,
    AssetIndexRequest,
    AssetReply,
    AssetRequest,
    Hello,
    ServiceError,
    Welcome,
)

__all__ = [
    "TransportError",
    "QueueTransport",
    "TcpTransport",
    "TcpWorkerChannel",
    "parse_address",
    "serve_transport",
]


class TransportError(RuntimeError):
    """A fleet transport failure (always loud, never a hang)."""


_AUTH_REJECTIONS = _telemetry.counter("fleet.auth_rejections")
_HANDSHAKE_REJECTIONS = _telemetry.counter("fleet.handshake_rejections")


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"``; loud on anything else."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise TransportError(
            f"malformed service address {address!r}; expected 'host:port'"
        )
    return host, int(port)


# ----------------------------------------------------------------------
# Queue transport (single machine, the historical fleet path)
# ----------------------------------------------------------------------
class QueueTransport:
    """``multiprocessing`` queues: one request FIFO, per-client replies.

    Queue construction order matches the pre-transport fleet runner
    exactly (request queue first, then reply queues 0..N-1), so queue
    campaigns behave bit-for-bit as before the refactor.
    """

    def __init__(self, n_clients: int, ctx=None) -> None:
        ctx = ctx or multiprocessing.get_context()
        self.n_clients = n_clients
        self.request_queue = ctx.Queue()
        self.reply_queues = {i: ctx.Queue() for i in range(n_clients)}

    def start(self) -> None:
        """Queues need no background machinery."""

    def worker_endpoints(self, client_id: int):
        """Picklable ``(request_queue, reply_queue)`` for one worker."""
        return self.request_queue, self.reply_queues[client_id]

    def close(self) -> None:
        """Queues are reclaimed with the processes; nothing to do."""


# ----------------------------------------------------------------------
# TCP transport (service side)
# ----------------------------------------------------------------------
class _Fault:
    def __init__(self, error: BaseException) -> None:
        self.error = error


class _FaultableQueue:
    """A FIFO whose readers can be failed loudly from another thread.

    Reader threads enqueue decoded messages with :meth:`put`; on a
    protocol error they enqueue the exception with :meth:`fail`, and
    the next service-side :meth:`get` raises it -- turning any client
    misbehaviour into a loud ``serve()`` failure instead of a hang.
    """

    def __init__(self) -> None:
        self._queue: "queue_module.Queue" = queue_module.Queue()

    def put(self, item) -> None:
        self._queue.put(item)

    def fail(self, error: BaseException) -> None:
        self._queue.put(_Fault(error))

    def get(self, timeout: Optional[float] = None):
        item = self._queue.get(timeout=timeout)
        if isinstance(item, _Fault):
            raise item.error
        return item


class _TcpReplyWriter:
    """The service's per-client reply endpoint: frames onto the socket."""

    def __init__(self, transport: "TcpTransport", client_id: int) -> None:
        self._transport = transport
        self._client_id = client_id

    def put(self, reply) -> None:
        self._transport.send_to_client(self._client_id, reply)


class TcpTransport:
    """Service side of the socket transport.

    Listens on ``host:port`` (port 0 picks an ephemeral port; read it
    back from :attr:`address`), assigns client ids in accept order via
    the HELLO/WELCOME handshake, and runs one reader thread per client.
    ``asset_packs`` maps pack name to a ``(buffer, manifest)`` pair
    from ``pack_state``; ``asset_index`` is the scenario metadata
    served to :class:`wire.AssetIndexRequest`.

    Membership comes in two flavours:

    * **roster** (``elastic=False``, the legacy default): accept
      exactly ``n_clients`` connections, then stop listening; any
      client death or protocol violation is fatal to the service.
    * **elastic** (``elastic=True``): keep accepting for the lifetime
      of the transport -- late workers join a running campaign and get
      the next id in accept order; ``n_clients`` is only the initially
      expected head-count (status display).  A client that disconnects
      before signing off, spoofs another id, or sends a malformed
      frame is *dropped* -- its socket is closed and a
      :class:`~repro.serving.service.WorkerLost` notice is enqueued so
      the service can revoke its leases -- instead of killing the
      whole fleet.

    ``auth_token`` is the pre-shared fleet secret: a HELLO carrying a
    different token is answered with a :class:`wire.ServiceError` and
    closed *before* WELCOME, without consuming a client id and without
    disturbing the rest of the fleet (counted in
    ``fleet.auth_rejections``).
    """

    def __init__(
        self,
        n_clients: int,
        host: str = "127.0.0.1",
        port: int = 0,
        asset_packs: Optional[Dict[str, Tuple[np.ndarray, list]]] = None,
        asset_index: Optional[Dict[str, Dict[str, int]]] = None,
        auth_token: str = "",
        elastic: bool = False,
    ) -> None:
        self.n_clients = n_clients
        self.elastic = bool(elastic)
        self._auth_token = str(auth_token)
        self._asset_packs = dict(asset_packs or {})
        self._asset_index = {
            name: dict(meta) for name, meta in (asset_index or {}).items()
        }
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.request_queue = _FaultableQueue()
        self.reply_queues: Dict[int, _TcpReplyWriter] = {
            i: _TcpReplyWriter(self, i) for i in range(n_clients)
        }
        self._sockets: Dict[int, socket.socket] = {}
        self._send_locks: Dict[int, threading.Lock] = {}
        self._threads: list = []
        self._closed = threading.Event()
        self.auth_rejections = 0
        #: Monotonic timestamp of the last frame received from any
        #: client (idle-timeout watchdogs key off this).  Heartbeat
        #: :class:`Ping` frames deliberately do *not* refresh it: a
        #: fleet that only ever pings is idle, and ``--max-idle``
        #: should still fire on a wedged worker.
        self.last_activity = time.monotonic()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def n_connected(self) -> int:
        return len(self._sockets)

    # ------------------------------------------------------------------
    def start(self) -> None:
        thread = threading.Thread(
            target=self._accept_loop, name="fleet-tcp-accept", daemon=True
        )
        self._threads.append(thread)
        thread.start()

    def _accept_loop(self) -> None:
        client_id = 0
        try:
            while not self._closed.is_set():
                if not self.elastic and client_id >= self.n_clients:
                    return
                try:
                    conn, _addr = self._listener.accept()
                except OSError:
                    if self._closed.is_set():
                        return
                    raise
                try:
                    accepted = self._handshake(conn, client_id)
                except Exception:
                    if self.elastic:
                        # One garbage connection must not take down a
                        # long-running fleet; reject it and keep
                        # accepting.  Roster mode keeps the legacy
                        # loud-failure contract below.
                        _HANDSHAKE_REJECTIONS.inc()
                        try:
                            conn.close()
                        except OSError:
                            pass
                        continue
                    raise
                if accepted:
                    client_id += 1
        except Exception as error:
            # Any escape here would strand serve() polling an empty
            # queue forever; fault it instead -- loudness over hangs.
            if not self._closed.is_set():
                self.request_queue.fail(
                    TransportError(f"fleet transport handshake failed: {error}")
                )

    def _handshake(self, conn: socket.socket, client_id: int) -> bool:
        """Run HELLO/WELCOME on one accepted connection.

        Returns True when the connection became client ``client_id``;
        False when it was rejected (bad auth token) without consuming
        the id.  Malformed handshakes raise (the accept loop decides
        whether that is fatal).
        """
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = wire.recv_message(conn)
        if not isinstance(hello, Hello):
            raise TransportError(
                f"connection {client_id} opened with "
                f"{type(hello).__name__} instead of Hello"
            )
        if hello.protocol != wire.PROTOCOL_VERSION:
            raise TransportError(
                f"client speaks wire protocol {hello.protocol}, "
                f"service speaks {wire.PROTOCOL_VERSION}"
            )
        if hello.token != self._auth_token:
            # Loud rejection BEFORE Welcome: the client gets a
            # ServiceError naming the problem and the connection
            # closes without a client id.  Never fatal to the fleet.
            self.auth_rejections += 1
            _AUTH_REJECTIONS.inc()
            try:
                wire.send_message(conn, ServiceError(
                    message="authentication failed: fleet auth token "
                    "mismatch (serve --auth-token / REPRO_FLEET_TOKEN)"
                ))
            except wire.WireError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            return False
        self._send_locks[client_id] = threading.Lock()
        self._sockets[client_id] = conn
        self.reply_queues.setdefault(client_id, _TcpReplyWriter(self, client_id))
        self.last_activity = time.monotonic()
        wire.send_message(conn, Welcome(client_id=client_id))
        reader = threading.Thread(
            target=self._reader_loop,
            args=(client_id, conn),
            name=f"fleet-tcp-reader-{client_id}",
            daemon=True,
        )
        self._threads.append(reader)
        reader.start()
        return True

    def _reader_loop(self, client_id: int, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    message = wire.recv_message(conn)
                except wire.ConnectionClosed:
                    raise TransportError(
                        f"client {client_id} disconnected before signing off "
                        "(worker crashed or was killed mid-campaign)"
                    ) from None
                if not isinstance(message, Ping):
                    self.last_activity = time.monotonic()
                if isinstance(message, AssetIndexRequest):
                    self.send_to_client(client_id, AssetIndex(index=self._asset_index))
                    continue
                if isinstance(message, AssetRequest):
                    pack = self._asset_packs.get(message.pack)
                    if pack is None:
                        raise TransportError(
                            f"client {client_id} requested unknown asset pack "
                            f"{message.pack!r}; published: {sorted(self._asset_packs)}"
                        )
                    buffer, manifest = pack
                    self.send_to_client(
                        client_id,
                        AssetReply(
                            pack=message.pack,
                            manifest=tuple(tuple(e) for e in manifest),
                            buffer=buffer,
                        ),
                    )
                    continue
                owner = getattr(message, "client_id", client_id)
                if owner != client_id:
                    raise TransportError(
                        f"client {client_id} sent a {type(message).__name__} "
                        f"claiming client id {owner}"
                    )
                self.request_queue.put(message)
                if isinstance(message, ClientDone):
                    return
        except TransportError as error:
            self._reader_failed(client_id, error)
        except Exception as error:
            # Catch-all for the same reason as the accept loop: a
            # dead reader with no fault enqueued is a silent hang.
            self._reader_failed(
                client_id,
                TransportError(f"client {client_id} protocol error: {error}"),
            )

    def _reader_failed(self, client_id: int, error: TransportError) -> None:
        """A client's reader died: fatal (roster) or a lost worker.

        Roster mode keeps the legacy contract -- the fault propagates
        out of ``serve()``.  Elastic mode converts any single-client
        failure (EOF before sign-off, spoofed id, malformed frame)
        into a :class:`WorkerLost` notice: the service revokes the
        dead client's leases and the campaign keeps running.
        """
        if self._closed.is_set():
            return
        if not self.elastic:
            self.request_queue.fail(error)
            return
        self.close_client(client_id)
        self.request_queue.put(WorkerLost(client_id, reason=str(error)))

    # ------------------------------------------------------------------
    def send_to_client(self, client_id: int, message) -> None:
        conn = self._sockets.get(client_id)
        if conn is None:
            raise TransportError(
                f"no connection for client {client_id} (never connected or gone)"
            )
        try:
            wire.send_message(conn, message, lock=self._send_locks[client_id])
        except wire.WireError as error:
            raise TransportError(
                f"sending {type(message).__name__} to client {client_id} "
                f"failed: {error}"
            ) from None

    def close_client(self, client_id: int) -> None:
        """Tear down one client's socket (idempotent).

        Used by the chaos control plane (``kill_worker``) and by the
        service when it declares a client dead: the reader thread wakes
        with an EOF/OSError and, in elastic mode, enqueues the
        :class:`WorkerLost` notice.
        """
        conn = self._sockets.pop(client_id, None)
        if conn is None:
            return
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - double close
            pass

    def broadcast_error(self, message: str) -> None:
        """Best-effort fatal-error notice so no client blocks forever."""
        for client_id in list(self._sockets):
            try:
                self.send_to_client(client_id, ServiceError(message=message))
            except TransportError:  # pragma: no cover - socket already dead
                pass

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - double close
            pass
        for conn in self._sockets.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - double close
                pass
        self._sockets.clear()


# ----------------------------------------------------------------------
# TCP transport (worker side)
# ----------------------------------------------------------------------
class TcpWorkerChannel:
    """Worker endpoint: one socket, queue-compatible ``put``/``get``.

    Slots directly into :class:`repro.serving.ScoringClient` as both
    its request and reply queue -- requests are framed onto the socket,
    replies are read back off it.  The client id is assigned by the
    service during the HELLO/WELCOME handshake (:attr:`client_id`).
    Connection attempts retry until ``connect_timeout`` so workers may
    start before the service finishes binding; each attempt's socket
    timeout is derived from the remaining connect budget (never a
    hidden hard-coded constant).

    ``read_timeout`` bounds every post-handshake blocking read: 0 (the
    default) waits forever, the historical behaviour; a positive value
    turns a reply that never arrives (dead service, dropped frame)
    into a loud :class:`TransportError` after that many seconds --
    the client-side half of heartbeat-based liveness.  Sends are
    serialized with an internal lock so a heartbeat thread can share
    the socket with the scoring loop.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = 30.0,
        retry_interval: float = 0.2,
        read_timeout: float = 0.0,
        auth_token: str = "",
    ) -> None:
        self.address = address
        self.read_timeout = float(read_timeout)
        self._send_lock = threading.Lock()
        host, port = parse_address(address)
        deadline = time.monotonic() + connect_timeout
        while True:
            remaining = max(deadline - time.monotonic(), 0.05)
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=remaining
                )
                break
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise TransportError(
                        f"could not reach the scoring service at {address} "
                        f"within {connect_timeout:.0f}s: {error}"
                    ) from None
                time.sleep(retry_interval)
        # Keep the timeout through the handshake: a connection sitting
        # unaccepted in the listen backlog (e.g. more workers than a
        # roster-mode service expects) must fail loudly here rather
        # than block on the Welcome forever.
        self._sock.settimeout(connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            wire.send_message(self._sock, Hello(token=auth_token))
            welcome = self._recv()
        except wire.WireError as error:
            raise TransportError(f"handshake with {address} failed: {error}") from None
        except TransportError as error:
            raise TransportError(
                f"handshake with {address} failed (is the service "
                f"expecting this many workers?): {error}"
            ) from None
        if not isinstance(welcome, Welcome):
            raise TransportError(
                f"service at {address} answered Hello with "
                f"{type(welcome).__name__}"
            )
        self.client_id: int = welcome.client_id
        self._sock.settimeout(self.read_timeout if self.read_timeout > 0 else None)

    def _recv(self):
        try:
            message = wire.recv_message(self._sock)
        except socket.timeout:
            raise TransportError(
                f"no frame from the scoring service at {self.address} "
                f"within the {self.read_timeout:.1f}s read timeout"
            ) from None
        except wire.ConnectionClosed:
            raise TransportError(
                f"scoring service at {self.address} closed the connection "
                "(it likely aborted; check the service log)"
            ) from None
        except wire.WireError as error:
            raise TransportError(
                f"bad frame from the scoring service at {self.address}: {error}"
            ) from None
        if isinstance(message, ServiceError):
            raise TransportError(f"scoring service reported: {message.message}")
        return message

    # -- queue surface used by ScoringClient ---------------------------
    def put(self, message) -> None:
        try:
            wire.send_message(self._sock, message, lock=self._send_lock)
        except wire.WireError as error:
            raise TransportError(
                f"sending {type(message).__name__} to {self.address} "
                f"failed: {error}"
            ) from None

    def get(self):
        return self._recv()

    # -- asset fetch path ----------------------------------------------
    def fetch_index(self) -> Dict[str, Dict[str, int]]:
        """The service's scenario metadata (``AssetIndex``)."""
        self.put(AssetIndexRequest())
        reply = self._recv()
        if not isinstance(reply, AssetIndex):
            raise TransportError(
                f"asset index request answered with {type(reply).__name__}"
            )
        return reply.index

    def fetch_pack(self, name: str) -> Tuple[np.ndarray, tuple]:
        """One published pack's ``(buffer, manifest)``, fetched raw."""
        self.put(AssetRequest(pack=name))
        reply = self._recv()
        if not isinstance(reply, AssetReply) or reply.pack != name:
            raise TransportError(
                f"asset request for {name!r} answered with "
                f"{type(reply).__name__}"
            )
        return reply.buffer, reply.manifest

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass


# ----------------------------------------------------------------------
def serve_transport(service, transport, abort=None):
    """Run ``service.serve`` and fail every client loudly on error.

    Whatever kills the scorer loop (protocol violation, stale
    generation, transport fault) is broadcast to connected clients as
    a :class:`wire.ServiceError` before re-raising, so synchronous
    workers blocked on a reply raise instead of hanging.
    """
    try:
        return service.serve(abort=abort)
    except BaseException as error:
        broadcast = getattr(transport, "broadcast_error", None)
        if broadcast is not None:
            broadcast(f"{type(error).__name__}: {error}")
        raise
