"""The chaos-inject control plane behind ``POST /inject``.

The PR-6 status endpoint made a running fleet *observable*; this module
makes it *perturbable*, following the chaos-engine pattern of timed
perturbations posted to a live observe endpoint.  Operators (and the
CI chaos smoke) can exercise exactly the failure paths the elastic
fleet is built to absorb:

* ``kill_worker`` -- tear down a worker's socket server-side.  The
  reader thread sees EOF, the service marks the worker lost, its
  leased cells are revoked and re-queued.  Without an explicit
  ``client_id`` the currently lease-holding worker is targeted (the
  interesting victim -- killing an idle worker proves nothing).
* ``delay_client`` -- add ``seconds`` of latency to every reply sent
  to a client (``seconds: 0`` clears it).
* ``drop_next_reply`` -- silently swallow the client's next reply
  (with a client-side ``read_timeout`` this exercises the full
  timeout -> death -> re-queue path).
* ``requeue_cell`` -- revoke a leased cell without blaming the worker,
  making the old lease-holder a zombie whose late result must be
  deduplicated.

Every injection is appended to a bounded in-memory log (surfaced in
``/status`` under ``fleet.injections``) and counted in the
``fleet.injections`` telemetry counter; the perturbations themselves
land in the fleet counters (``fleet.workers_lost``,
``fleet.cells_requeued``, ...) like organically occurring faults.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from .. import telemetry as _telemetry

_INJECTIONS = _telemetry.counter("fleet.injections")

#: Keep the last N injections in the /status view.
_LOG_LIMIT = 100

ACTIONS = ("kill_worker", "delay_client", "drop_next_reply", "requeue_cell")


class ChaosControl:
    """Dispatch ``/inject`` actions against a running fleet."""

    def __init__(self, service, coordinator, transport=None) -> None:
        self.service = service
        self.coordinator = coordinator
        self.transport = transport
        self._lock = threading.Lock()
        self.injections: List[dict] = []

    # ------------------------------------------------------------------
    def inject(self, action: str, params: Optional[dict] = None) -> dict:
        """Apply one injection; raises ``ValueError`` on bad requests."""
        params = dict(params or {})
        if action not in ACTIONS:
            raise ValueError(
                f"unknown inject action {action!r}; supported: {ACTIONS}"
            )
        result = getattr(self, f"_{action}")(params)
        entry = {"action": action, **result}
        with self._lock:
            self.injections.append(entry)
            del self.injections[:-_LOG_LIMIT]
        _INJECTIONS.inc()
        return entry

    def log(self) -> List[dict]:
        with self._lock:
            return list(self.injections)

    # ------------------------------------------------------------------
    def _target_client(self, params: dict) -> int:
        if "client_id" in params:
            return int(params["client_id"])
        leased = self.coordinator.leased_workers() if self.coordinator else []
        if not leased:
            raise ValueError(
                "no client_id given and no worker currently holds a lease"
            )
        return leased[0]

    def _kill_worker(self, params: dict) -> dict:
        client_id = self._target_client(params)
        if self.transport is None or not hasattr(self.transport, "close_client"):
            raise ValueError("kill_worker needs a TCP transport")
        if client_id not in getattr(self.transport, "_sockets", {}):
            raise ValueError(f"client {client_id} has no open connection")
        self.transport.close_client(client_id)
        return {"client_id": client_id}

    def _delay_client(self, params: dict) -> dict:
        client_id = self._target_client(params)
        seconds = float(params.get("seconds", 1.0))
        self.service.inject_delay(client_id, seconds)
        return {"client_id": client_id, "seconds": seconds}

    def _drop_next_reply(self, params: dict) -> dict:
        client_id = self._target_client(params)
        self.service.inject_drop_next_reply(client_id)
        return {"client_id": client_id}

    def _requeue_cell(self, params: dict) -> dict:
        if "cell_id" in params:
            cell_id = int(params["cell_id"])
        else:
            leases = sorted(self.coordinator.lease_view()) if self.coordinator else []
            if not leases:
                raise ValueError("no cell_id given and no cell is leased")
            cell_id = leases[0]
        if self.coordinator is None:
            raise ValueError("requeue_cell needs a coordinator")
        if not self.coordinator.requeue_cell(cell_id):
            raise ValueError(f"cell {cell_id} is not currently leased")
        return {"cell_id": cell_id}
