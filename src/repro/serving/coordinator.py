"""Lease-based streamed cell queue for elastic fleet campaigns.

The coordinator replaces pre-sharding: instead of handing worker ``k``
the fixed slice ``tasks[k::n_workers]``, the campaign grid lives here
as a FIFO of cell ids (task ``run_index`` values) and workers *pull*
work one lease at a time.  Because every cell is seeded from its own
``SeedSequence.spawn`` child, any worker can run any cell -- in any
order, any number of times -- and the records stay bit-identical to
serial execution, which is exactly what makes work stealing and
re-queue after a worker death safe.

State machine per cell::

    pending --lease--> leased --complete--> completed     (terminal)
       ^                  |
       |                  +--revoke (worker died / operator requeue)
       +------------------+
                          |
                          +--> poisoned   (terminal; failures reached
                                           the retry budget)

* ``lease(worker_id)`` hands out the next pending cell, or reports
  "wait" (queue empty but leases outstanding) or "drained" (every cell
  completed or poisoned -- the worker should sign off).
* ``complete(cell_id, worker_id)`` is idempotent and first-wins: a
  zombie worker whose lease was revoked may still deliver its result;
  the duplicate is counted, never double-stored.  A completion beats a
  poison verdict -- a record in hand un-poisons the cell.
* ``release_worker(worker_id)`` revokes every lease the dead worker
  held.  Each revocation counts as one failure for the cell; a cell
  whose failures reach ``retry_budget`` (i.e. it killed that many
  workers) is quarantined as *poisoned* and reported instead of being
  retried forever -- graceful degradation instead of livelock.
* ``requeue_cell(cell_id)`` is the operator/chaos path: revoke the
  lease without blaming the worker (no failure charged) and put the
  cell back in the queue.

All operations are thread-safe: the scoring service calls in from its
serve loop while ``/status`` and ``POST /inject`` read and perturb
from the HTTP thread.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import telemetry as _telemetry

_LEASES = _telemetry.counter("fleet.leases")
_REQUEUED = _telemetry.counter("fleet.cells_requeued")
_POISONED = _telemetry.counter("fleet.cells_poisoned")
_DUPLICATES = _telemetry.counter("fleet.duplicate_completions")
#: Cells pre-completed from a campaign store instead of leased out --
#: same counter name the campaign parent uses for records it restores.
_RESUMED = _telemetry.counter("fleet.cells_resumed")


class CellCoordinator:
    """Thread-safe lease queue over a campaign's cell ids.

    Cell ids are campaign task ``run_index`` values -- the integer face
    of the canonical cell id ``(config_hash, scenario, model,
    seed_index)``: :func:`repro.experiments.campaign.plan_tasks`
    enumerates the grid in fixed order, so within one campaign the two
    forms are interchangeable (``repro.storage`` keys by the tuple,
    the wire protocol and this queue move the integer).

    ``completed`` pre-completes cells at construction -- the resume
    path of a store-backed ``python -m repro serve``: cells whose
    records the :class:`~repro.storage.CampaignStore` already holds
    are born completed (owner ``-1``, nobody ran them), never enter
    the pending queue, and are counted in ``fleet.cells_resumed``.
    """

    def __init__(
        self,
        cell_ids: Iterable[int],
        retry_budget: int = 3,
        completed: Iterable[int] = (),
    ):
        cells = [int(cell) for cell in cell_ids]
        if len(set(cells)) != len(cells):
            raise ValueError("cell ids must be unique")
        if retry_budget < 1:
            raise ValueError(f"retry_budget must be >= 1, got {retry_budget}")
        resumed = sorted({int(cell) for cell in completed})
        unknown = [cell for cell in resumed if cell not in set(cells)]
        if unknown:
            raise ValueError(
                f"pre-completed cells {unknown} are not in the campaign "
                "grid; the store and the config disagree"
            )
        self.retry_budget = int(retry_budget)
        self._lock = threading.RLock()
        self._all: Tuple[int, ...] = tuple(cells)
        self._pending: deque = deque(
            cell for cell in cells if cell not in set(resumed)
        )
        self._leases: Dict[int, int] = {}  # cell_id -> worker_id
        self._attempts: Dict[int, int] = {cell: 0 for cell in cells}
        self._failures: Dict[int, int] = {cell: 0 for cell in cells}
        self._by_worker: Dict[int, Set[int]] = {}
        #: cell_id -> worker_id (first wins; -1 = restored from a store)
        self.completed: Dict[int, int] = {cell: -1 for cell in resumed}
        #: Cells that were pre-completed at construction (resume view).
        self.resumed: Tuple[int, ...] = tuple(resumed)
        self.poisoned: Set[int] = set()
        self.requeued_total = 0
        self.duplicate_completions = 0
        if resumed:
            _RESUMED.inc(len(resumed))

    # ------------------------------------------------------------------
    # Worker-facing operations
    # ------------------------------------------------------------------
    def lease(self, worker_id: int) -> Tuple[Optional[int], int, bool]:
        """Grant the next cell to ``worker_id``.

        Returns ``(cell_id, attempt, drained)``: a real cell id with its
        1-based attempt number, ``(None, 0, False)`` when the worker
        should wait and poll again, or ``(None, 0, True)`` when the grid
        is fully drained and the worker should sign off.
        """
        with self._lock:
            if self.finished:
                return None, 0, True
            if not self._pending:
                return None, 0, False
            cell = self._pending.popleft()
            self._attempts[cell] += 1
            self._leases[cell] = int(worker_id)
            self._by_worker.setdefault(int(worker_id), set()).add(cell)
            _LEASES.inc()
            return cell, self._attempts[cell], False

    def complete(self, cell_id: int, worker_id: int) -> bool:
        """Record a finished cell; returns False for duplicates/unknowns."""
        cell = int(cell_id)
        with self._lock:
            if cell not in self._attempts:
                return False
            if cell in self.completed:
                self.duplicate_completions += 1
                _DUPLICATES.inc()
                return False
            self.completed[cell] = int(worker_id)
            # A delivered record always beats a poison verdict, and any
            # other lease on this cell becomes a harmless zombie.
            self.poisoned.discard(cell)
            owner = self._leases.pop(cell, None)
            if owner is not None:
                self._by_worker.get(owner, set()).discard(cell)
            try:
                self._pending.remove(cell)
            except ValueError:
                pass
            return True

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def release_worker(self, worker_id: int) -> Tuple[List[int], List[int]]:
        """Revoke every lease held by a dead worker.

        Each revoked cell is charged one failure and either re-queued
        (front of the queue, so retries happen promptly) or poisoned
        once its failures reach the retry budget.  Returns the
        ``(requeued, poisoned)`` cell-id lists.
        """
        requeued: List[int] = []
        poisoned: List[int] = []
        with self._lock:
            cells = sorted(self._by_worker.pop(int(worker_id), set()))
            for cell in cells:
                if self._leases.get(cell) != int(worker_id):
                    continue
                del self._leases[cell]
                self._failures[cell] += 1
                if self._failures[cell] >= self.retry_budget:
                    self.poisoned.add(cell)
                    poisoned.append(cell)
                    _POISONED.inc()
                else:
                    self._pending.appendleft(cell)
                    requeued.append(cell)
                    self.requeued_total += 1
                    _REQUEUED.inc()
        return requeued, poisoned

    def requeue_cell(self, cell_id: int) -> bool:
        """Operator/chaos re-queue: revoke the lease, charge no failure."""
        cell = int(cell_id)
        with self._lock:
            owner = self._leases.pop(cell, None)
            if owner is None:
                return False
            self._by_worker.get(owner, set()).discard(cell)
            self._pending.append(cell)
            self.requeued_total += 1
            _REQUEUED.inc()
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once every cell is completed or quarantined."""
        with self._lock:
            return len(self.completed) + len(self.poisoned) >= len(self._all)

    def lease_view(self) -> Dict[int, Dict[str, int]]:
        with self._lock:
            return {
                cell: {"worker": worker, "attempt": self._attempts[cell]}
                for cell, worker in self._leases.items()
            }

    def leased_workers(self) -> List[int]:
        """Worker ids currently holding at least one lease."""
        with self._lock:
            return sorted({worker for worker in self._leases.values()})

    def status(self) -> dict:
        """JSON-safe snapshot for ``/status``."""
        with self._lock:
            return {
                "total": len(self._all),
                "pending": len(self._pending),
                "leased": len(self._leases),
                "completed": len(self.completed),
                "leases": {
                    str(cell): {"worker": worker, "attempt": self._attempts[cell]}
                    for cell, worker in sorted(self._leases.items())
                },
                "poisoned": sorted(self.poisoned),
                "cells_resumed": len(self.resumed),
                "cells_requeued": self.requeued_total,
                "cells_poisoned": len(self.poisoned),
                "duplicate_completions": self.duplicate_completions,
                "retry_budget": self.retry_budget,
            }
