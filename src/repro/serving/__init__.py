"""``repro.serving`` -- fleet-scale GON scoring infrastructure.

Turns a campaign from "N processes x 1 surrogate each" into "N
lightweight simulation workers feeding one batched GON scorer", the
consolidation that sharing one inference stream across federations
buys (ROADMAP: batched campaign-level inference + shared-memory
fleets).  The request path::

        ┌────────────────────────── parent process ─────────────────────────┐
        │  SharedArrayPack: GON weights + trace stacks, published once      │
        │  GONScoringService: drain -> bucket by (model, n) -> one          │
        │      generate_metrics_batch / forward_batch per bucket -> reply   │
        └──────────▲──────────────────────────────┬─────────────────────────┘
          requests │ (one mp.Queue)               │ replies (one queue per worker)
        ┌──────────┴───────────┐      ┌───────────▼──────────┐
        │ worker k: simulation │      │ FleetScorer: ascents │
        │ + CAROL decision loop│ ───> │ remote @ generation 0,│
        │ (zero-copy weights)  │      │ local after fine-tune │
        └──────────────────────┘      └──────────────────────┘

* :mod:`repro.serving.shared` -- one-copy asset publication over
  ``multiprocessing.shared_memory`` with read-only zero-copy views;
* :mod:`repro.serving.service` -- the micro-batching scorer loop, the
  worker-side :class:`ScoringClient`, and :class:`FleetScorer`, the
  ``repro.core.scoring.SurrogateScorer`` backend CAROL mounts in
  fleet campaigns (see :mod:`repro.experiments.fleet`).
"""

from .service import (
    AscentRequest,
    ClientDone,
    ConfidenceRequest,
    FleetScorer,
    GONScoringService,
    ScoringClient,
    ServiceStats,
)
from .shared import AttachedArrayPack, SharedArrayPack, SharedPackHandle

__all__ = [
    "AscentRequest",
    "ClientDone",
    "ConfidenceRequest",
    "FleetScorer",
    "GONScoringService",
    "ScoringClient",
    "ServiceStats",
    "AttachedArrayPack",
    "SharedArrayPack",
    "SharedPackHandle",
]
