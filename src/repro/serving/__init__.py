"""``repro.serving`` -- fleet-scale GON scoring infrastructure.

Turns a campaign from "N processes x 1 surrogate each" into "N
lightweight simulation workers feeding one batched GON scorer", the
consolidation that sharing one inference stream across federations
buys (ROADMAP: batched campaign-level inference + shared-memory
fleets).  The request path::

        ┌────────────────────────── parent process ─────────────────────────┐
        │  SharedArrayPack: GON weights + trace stacks, published once      │
        │  GONScoringService: drain -> bucket by (model, n) -> one          │
        │      generate_metrics_batch / forward_batch per bucket -> reply   │
        └──────────▲──────────────────────────────┬─────────────────────────┘
          requests │ (one mp.Queue)               │ replies (one queue per worker)
        ┌──────────┴───────────┐      ┌───────────▼──────────┐
        │ worker k: simulation │      │ FleetScorer: ascents │
        │ + CAROL decision loop│ ───> │ remote @ generation 0,│
        │ (zero-copy weights)  │      │ local after fine-tune │
        └──────────────────────┘      └──────────────────────┘

* :mod:`repro.serving.shared` -- one-copy asset publication over
  ``multiprocessing.shared_memory`` with read-only zero-copy views;
* :mod:`repro.serving.service` -- the micro-batching scorer loop, the
  worker-side :class:`ScoringClient`, and :class:`FleetScorer`, the
  ``repro.core.scoring.SurrogateScorer`` backend CAROL mounts in
  fleet campaigns (see :mod:`repro.experiments.fleet`).

The invariants this docstring states in protocol terms -- bit-identity
across transports, the overlay/generation rules, the lease/poison
lifecycle, and the cell-id/config-hash scheme that lets a
:mod:`repro.storage` store pre-complete the coordinator on resume --
are collected with their soundness arguments in
``docs/architecture.md``.

The overlay protocol
--------------------
CAROL fine-tunes its GON whenever the POT confidence gate opens, and a
fine-tuned replica no longer matches the fleet's published weights.
Instead of ejecting such runs to slow worker-local scoring, the
:class:`FleetScorer` ships its packed post-fine-tune state
(``nn/serialization.pack_state``) to the service as an
:class:`OverlayUpdate`; the service installs it as a *copy-on-write
per-client weight overlay* and keeps answering that client's ascents
from the consolidated batched stream.  Three invariants make this
safe and exact:

1. **Ordering** -- overlay installs and scoring requests share one
   FIFO request queue and clients are synchronous, so an install
   always lands before the first request at its generation and no
   request can observe a stale replica.
2. **Isolation** -- bucket keys extend with ``(generation, owner)``:
   generation-0 requests from any client still share (and may merge
   into) the base bucket, while generation > 0 buckets are private to
   the owning client -- two clients at different generations, or two
   diverged clients at the same generation, never share a bucket.
3. **Bit-identity** -- ``pack_state``/``unpack_state`` roundtrips are
   bit-exact and the service runs the same ``generate_metrics_batch``
   on identical stack shapes, so overlay-scored fleet records remain
   bit-identical to serial execution even after fine-tuning; the
   contract `tests/test_fleet.py::TestOverlayLifecycle` asserts.

Overlays are evicted when their owning client signs off
(:class:`ClientDone`).  ``FleetScorer(..., overlays=False)`` restores
the pre-overlay behaviour (local scoring after divergence); that path
counts every degraded ascent in ``diagnostics["local_fallbacks"]``
instead of silently leaving the stream.

Transports and the wire format
------------------------------
The service is transport-agnostic: it drains one FIFO with the stdlib
``get(timeout)`` surface and replies through per-client ``put``
endpoints.  :mod:`repro.serving.transports` provides two bundles of
those endpoints:

* :class:`QueueTransport` -- ``multiprocessing`` queues, the
  single-machine path, bit-for-bit the pre-transport behaviour;
* :class:`TcpTransport` / :class:`TcpWorkerChannel` -- sockets, so one
  service can host workers from many machines
  (``python -m repro serve`` + ``python -m repro campaign --connect``).

The TCP wire format (:mod:`repro.serving.wire`) is pickle-free
length-prefixed binary framing::

    frame := MAGIC(4) | type(1) | header_len(u32) | body_len(u32)
             | header(JSON scalars + array manifest)
             | body(pack_state buffer: raw array bytes)

and it carries exactly the queue transport's dataclasses
(:class:`AscentRequest`, :class:`ConfidenceRequest`,
:class:`OverlayUpdate`, :class:`ClientDone`, the replies) plus a
handshake (HELLO/WELCOME assigns client ids in accept order) and an
asset channel (remote workers fetch each scenario's packed weights and
trace stacks once, cached per process, instead of mapping
``multiprocessing.shared_memory`` -- see
:func:`~repro.serving.shared.fetch_array_pack`).

Transport guarantees, in the same spirit as the overlay invariants:

1. **Ordering** -- each client's socket is read by one dedicated
   reader thread feeding the service's single FIFO, so a client's
   messages enter the queue in send order and install-before-score
   survives the network hop.  Cross-client interleaving is unordered
   and harmless: generation > 0 buckets are private per client.
2. **Bit-identity** -- float64 payloads cross the wire as raw packed
   bytes (no text round-trip), so a TCP fleet campaign on localhost
   produces records bit-identical to serial execution, overlays
   included (asserted by ``tests/test_fleet.py::TestTcpFleetCampaign``).
3. **Loud failure, no hangs** -- malformed or truncated frames,
   clients disconnecting before :class:`ClientDone`, unknown asset
   packs and stale-generation requests all raise
   :class:`~repro.serving.transports.TransportError` out of
   ``serve()``; :func:`~repro.serving.transports.serve_transport`
   broadcasts the failure to every connected client before re-raising,
   so blocked workers raise instead of waiting forever.  Frame sizes
   are bounded, so a corrupt length prefix cannot trigger unbounded
   allocation.

The elastic fleet protocol
--------------------------
Fleet campaigns are no longer pre-sharded batch jobs: the service side
holds the whole ``(scenario, model, seed)`` grid as a lease-based cell
queue (:class:`CellCoordinator`) and workers *pull* work::

    worker                        service (coordinator attached)
    ──────                        ──────────────────────────────
    LeaseRequest(request_id) ──>  lease next queued cell
                             <──  LeaseGrant(cell_id, attempt)
    ... run the cell, ship the record on the results path ...
    CellDone(cell_id)        ──>  mark completed (first-wins)
    LeaseRequest             ──>  ...
                             <──  LeaseGrant(drained=True, poisoned=(...))
    ClientDone               ──>  sign off

Because every cell derives its RNG streams from its own
``SeedSequence.spawn`` child, *which* worker runs a cell -- or how
many times it is retried -- never changes the record; that is what
makes the elasticity below safe:

1. **Liveness** -- workers ping (:class:`Ping`, a daemon heartbeat
   thread) so the service can tell "busy in a long numpy cell" from
   "dead".  A client whose last frame is older than
   ``heartbeat_timeout`` -- or whose socket reader hits EOF, or whose
   process the queue-mode watchdog finds dead -- is declared lost
   (``fleet.workers_lost``); Pings deliberately do not count as
   ``--max-idle`` transport activity.
2. **Re-queue with a bounded budget** -- a lost worker's leased cells
   go back to the *front* of the queue (``fleet.cells_requeued``); a
   cell that has killed ``cell_retry_budget`` distinct attempts is
   quarantined as *poisoned* (``fleet.cells_poisoned``) and reported
   in the drained grant instead of sinking the campaign.  Duplicate
   results from zombie workers (a revoked lease finishing anyway) are
   deduplicated first-wins (``fleet.duplicate_completions`` service
   side, ``fleet.duplicate_records`` at collection).
3. **Elastic membership** -- an elastic :class:`TcpTransport` keeps
   accepting after the expected count (HELLO/WELCOME assigns ids in
   accept order), so late workers join a running campaign and start
   leasing immediately; the campaign ends when the queue is drained
   and every registered worker has signed off or been declared lost.
4. **Authentication** -- ``serve --auth-token`` (or
   ``REPRO_FLEET_TOKEN``) sets a pre-shared token carried in the
   ``Hello`` frame; mismatches are loudly rejected *before* Welcome
   (``fleet.auth_rejections``) and the token never enters record
   dumps.
5. **Chaos control plane** -- ``POST /inject`` on the status server
   (:class:`ChaosControl`) perturbs a live fleet (``kill_worker``,
   ``delay_client``, ``drop_next_reply``, ``requeue_cell``) through
   exactly the code paths organic faults take; injections land in the
   ``fleet.*`` counters and the ``/status`` ``fleet`` section.

The legacy fixed-roster semantics (loud ``TransportError`` on any
disconnect before ClientDone) are fully preserved when no coordinator
is attached -- ``QueueTransport`` campaigns and roster-mode
``TcpTransport`` tests keep their pre-elastic contracts.

Telemetry: STATS frames and the status endpoint
-----------------------------------------------
Every layer of this subsystem is instrumented against the process-wide
:mod:`repro.telemetry` registry (``service.*`` batching counters and
spans, ``wire.*`` frame/byte counters, ``client.round_trip`` latency).
Three pieces tie the distributed picture together:

* **STATS frames** -- after each completed cell a fleet worker ships a
  :class:`StatsUpdate` carrying its registry snapshot (cumulative
  since worker start, JSON-safe by construction; it rides in the frame
  header, no packed body).  The service keeps the *latest* snapshot
  per client -- snapshots are cumulative, so replacement (never
  summation) is the correct merge for a live view.
* **merged view** -- :meth:`GONScoringService.merged_telemetry` folds
  the service-process registry and every worker's latest snapshot into
  one fleet-wide snapshot with
  :func:`repro.telemetry.merge_snapshots`; snapshot reads are
  lock-protected, so the merge is safe mid-``serve()``.
* **status endpoint** -- ``python -m repro serve --status-port N``
  binds :class:`StatusServer` (stdlib ``http.server``, daemon thread,
  read-only) next to the scoring socket.  ``GET /status`` answers one
  JSON object: connected/expected/signed-off workers, cells
  started/completed/in-flight (derived from the merged
  ``campaign.cells_*`` counters), the legacy :class:`ServiceStats`
  view, and the full merged telemetry.  ``GET /metrics`` renders the
  same snapshot in the Prometheus text exposition format
  (``# HELP``/``# TYPE`` metadata, ``le``-labelled histogram buckets)
  for stock scrape jobs; ``GET /metrics?format=flat`` keeps the legacy
  ``name value`` lines.

Telemetry is strictly observational: snapshots never feed back into
scoring, wall-clock only ever appears in telemetry (never in record
rows), and disabling it (``REPRO_TELEMETRY=0``) changes no record --
the bit-identity contract is asserted with telemetry on and off.

Scorer backends on the service
------------------------------
The service accepts ``scorer_backend=`` (``"exact"`` | ``"fast"`` |
``"fast32"``, same contract as :mod:`repro.core.scoring`): ``"exact"``
keeps the autodiff oracle and the historical batching behaviour
bit-for-bit; the fast backends answer each ascent request with one
graph-free fused-kernel call (:mod:`repro.core.fastscore`) over the
request's own stack -- identical batch shapes to the exact policy, so
the backend parity tiers carry over to the service unchanged.  With
``merge_requests`` on, the kernel goes further than the exact merged
policy: same-width ascent requests fuse into one call *across*
gamma/max_steps buckets, since the kernel -- unlike the Tensor-graph
oracle -- takes per-element ascent parameters.  Cross-request fusing
concatenates stacks (a ~1-ulp BLAS effect), which is exactly the
bitwise waiver ``merge_requests`` already opts into.  Fused elements
are counted in ``ServiceStats.fused_elements`` and the
``service.fused_elements`` telemetry counter.  Kernels are cached per
``(model, generation-bucket)`` and invalidated exactly where overlays
are installed or evicted, so a fine-tuned client never scores against
stale fused weights.  The service also adapts its micro-batch flush
window to the observed request inter-arrival EWMA (clamped to
``[window/20, window]``), surfaced as ``ServiceStats.window_seconds``
and the ``service.window_seconds`` gauge.
"""

from .chaos import ChaosControl
from .coordinator import CellCoordinator
from .service import (
    AscentRequest,
    CellDone,
    ClientDone,
    ConfidenceRequest,
    FleetScorer,
    GONScoringService,
    LeaseGrant,
    LeaseRequest,
    OverlayUpdate,
    Ping,
    ScoringClient,
    ServiceStats,
    StatsUpdate,
    WorkerLost,
)
from .status import StatusServer
from .shared import (
    AttachedArrayPack,
    FetchedArrayPack,
    SharedArrayPack,
    SharedPackHandle,
    fetch_array_pack,
)
from .transports import (
    QueueTransport,
    TcpTransport,
    TcpWorkerChannel,
    TransportError,
    parse_address,
    serve_transport,
)

__all__ = [
    "AscentRequest",
    "CellCoordinator",
    "CellDone",
    "ChaosControl",
    "ClientDone",
    "ConfidenceRequest",
    "FleetScorer",
    "GONScoringService",
    "LeaseGrant",
    "LeaseRequest",
    "OverlayUpdate",
    "Ping",
    "ScoringClient",
    "ServiceStats",
    "StatsUpdate",
    "StatusServer",
    "WorkerLost",
    "AttachedArrayPack",
    "FetchedArrayPack",
    "SharedArrayPack",
    "SharedPackHandle",
    "fetch_array_pack",
    "QueueTransport",
    "TcpTransport",
    "TcpWorkerChannel",
    "TransportError",
    "parse_address",
    "serve_transport",
]
