"""Publication of fleet assets (weights, traces): shared memory or wire.

One process packs a dict of named arrays into a single buffer; workers
consume *read-only zero-copy views* of it.  Two distribution paths
share the ``pack_state`` layout:

* **Same machine** (:class:`SharedArrayPack` / :class:`AttachedArrayPack`)
  -- the buffer lives in one ``multiprocessing.shared_memory`` segment
  and every worker maps it, so the GON weight matrices and offline
  trace stacks are materialised exactly once per machine, whatever the
  fleet size.
* **Remote worker** (:func:`fetch_array_pack`) -- a worker on another
  host cannot map the service's memory, so it fetches the packed
  buffer **once** over its scoring socket
  (:meth:`repro.serving.transports.TcpWorkerChannel.fetch_pack`) and
  caches it per process; views are rebuilt over the received bytes.
  The bytes are identical to the shared-memory path's, which is what
  keeps TCP-fleet records bit-identical to serial execution.

Layout and manifests come from :func:`repro.nn.serialization.pack_state`
/ :func:`~repro.nn.serialization.unpack_state`, so anything expressible
as a ``{name: ndarray}`` dict ships the same way.

Lifecycle: the owner keeps the :class:`SharedArrayPack` alive for the
campaign and calls :meth:`SharedArrayPack.unlink` when done; workers
wrap attachment in :class:`AttachedArrayPack` (a context manager) and
merely :meth:`AttachedArrayPack.close` their mapping.  Fetched packs
are plain process-local memory and need no unlink.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..nn.serialization import pack_state, unpack_state

__all__ = [
    "SharedPackHandle",
    "SharedArrayPack",
    "AttachedArrayPack",
    "FetchedArrayPack",
    "fetch_array_pack",
]


@dataclass(frozen=True)
class SharedPackHandle:
    """Picklable pointer to a published pack: segment name + layout."""

    shm_name: str
    nbytes: int
    manifest: Tuple[Tuple[str, Tuple[int, ...], str, int], ...]


class SharedArrayPack:
    """Owner side: publish ``{name: array}`` into one shared segment."""

    def __init__(self, arrays: Mapping[str, np.ndarray],
                 name: Optional[str] = None) -> None:
        buffer, manifest = pack_state(dict(arrays))
        shm_name = name or f"repro-pack-{secrets.token_hex(8)}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=buffer.nbytes, name=shm_name
        )
        # Write straight from the packed array's memory -- no
        # intermediate bytes copy of the (potentially large) pack.
        self._shm.buf[:buffer.nbytes] = buffer.data
        self.handle = SharedPackHandle(
            shm_name=self._shm.name,
            nbytes=buffer.nbytes,
            manifest=tuple(manifest),
        )
        #: Read-only views into the segment (usable by the owner too,
        #: e.g. the scoring service mounts its model from these).
        self.arrays: Dict[str, np.ndarray] = unpack_state(
            self._shm.buf, list(manifest)
        )

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self.arrays = {}
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment system-wide (owner's responsibility)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


class AttachedArrayPack:
    """Worker side: read-only zero-copy views of a published pack."""

    def __init__(self, handle: SharedPackHandle) -> None:
        self.handle = handle
        # Note on the resource tracker: attaching registers the segment
        # too (until 3.13's ``track=False``).  Under the fork start
        # method -- the default on Linux, and what the fleet runner
        # uses -- children share the parent's tracker, so the extra
        # registration is a set no-op and the owner's ``unlink`` keeps
        # working.  Under spawn, a worker's private tracker may unlink
        # the *name* early at worker exit; existing mappings (ours and
        # the parent's) survive, so campaigns still complete.
        self._shm = shared_memory.SharedMemory(name=handle.shm_name)
        self.arrays: Dict[str, np.ndarray] = unpack_state(
            self._shm.buf, list(handle.manifest)
        )

    def __enter__(self) -> "AttachedArrayPack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.arrays = {}
        self._shm.close()


class FetchedArrayPack:
    """Worker side of the network asset path: a pack pulled over TCP.

    ``arrays`` are read-only zero-copy views over the received buffer
    (exactly the views :class:`AttachedArrayPack` exposes over shared
    memory); the buffer is ordinary process memory, so there is no
    segment to unlink.
    """

    def __init__(self, buffer: np.ndarray, manifest) -> None:
        self.arrays: Dict[str, np.ndarray] = unpack_state(buffer, list(manifest))

    def close(self) -> None:
        self.arrays = {}


#: Per-process cache of fetched packs: ``(service address, pack name)``.
_FETCHED_PACKS: Dict[Tuple[str, str], FetchedArrayPack] = {}


def fetch_array_pack(channel, name: str, cache: bool = True) -> FetchedArrayPack:
    """Fetch a published pack over a worker channel, once per process.

    ``channel`` is a :class:`repro.serving.transports.TcpWorkerChannel`
    (anything with ``address`` and ``fetch_pack``).  Repeat calls for
    the same ``(service, pack)`` reuse the cached copy instead of
    re-downloading -- remote workers pay the transfer exactly once,
    mirroring the attach-once discipline of the shared-memory path.
    """
    key = (str(channel.address), name)
    if cache and key in _FETCHED_PACKS:
        return _FETCHED_PACKS[key]
    buffer, manifest = channel.fetch_pack(name)
    pack = FetchedArrayPack(buffer, manifest)
    if cache:
        _FETCHED_PACKS[key] = pack
    return pack
