"""Live HTTP status endpoint for the fleet scoring service.

A stdlib :mod:`http.server` bound next to the scoring socket
(``python -m repro serve --status-port N``) exposing two routes:

``/status``
    One JSON object assembled by the provider callback at request
    time -- connected/expected/signed-off workers, cells completed and
    in flight (derived from the merged ``campaign.cells_*`` counters
    the STATS frames ship), the legacy :class:`~repro.serving.ServiceStats`
    view, and the full merged telemetry snapshot.

``/metrics``
    The merged snapshot in Prometheus text exposition format
    (:func:`repro.telemetry.render_prometheus_text`): ``# HELP`` /
    ``# TYPE`` metadata and ``le``-labelled histogram buckets, so a
    stock Prometheus scrape job ingests it directly.  The legacy flat
    ``name value`` lines remain available as ``/metrics?format=flat``
    (:func:`repro.telemetry.render_metrics_text`).

``POST /inject``
    The chaos control plane (elastic fleets only): a JSON body like
    ``{"action": "kill_worker"}`` or ``{"action": "requeue_cell",
    "cell_id": 3}`` is dispatched to the configured ``inject_handler``
    (normally :meth:`repro.serving.chaos.ChaosControl.inject`).
    Answers 200 with the applied-injection record, 400 on a malformed
    or rejected request, and 405 when no handler is configured (the
    GET routes then stay strictly read-only, the pre-chaos contract).

The server runs on a daemon thread; the provider and inject handler
must be safe to call from another thread mid-``serve()``
(:meth:`GONScoringService.merged_telemetry` takes care of its side).
The GET routes are observation only -- ``/inject`` is the single,
explicit mutation point, and it perturbs *execution*, never record
contents (cells re-run from their own ``SeedSequence.spawn`` seeds,
so results stay bit-identical).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from ..telemetry import render_metrics_text, render_prometheus_text

__all__ = ["StatusServer"]


class _StatusHandler(BaseHTTPRequestHandler):
    server: "_StatusHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/status"
        query = parse_qs(parts.query)
        try:
            if path == "/status":
                payload = json.dumps(
                    self.server.provider(), indent=2, sort_keys=True
                ).encode("utf-8")
                content_type = "application/json"
            elif path == "/metrics":
                status = self.server.provider()
                snap = status.get("telemetry", {})
                fmt = query.get("format", ["prometheus"])[0]
                if fmt == "flat":
                    payload = render_metrics_text(snap).encode("utf-8")
                elif fmt == "prometheus":
                    payload = render_prometheus_text(snap).encode("utf-8")
                else:
                    self.send_error(
                        400, "unknown ?format (try prometheus or flat)"
                    )
                    return
                content_type = "text/plain; charset=utf-8"
            else:
                self.send_error(404, "unknown route (try /status or /metrics)")
                return
        except Exception as error:  # provider failed: loud 500, no hang
            self.send_error(500, f"status provider failed: {error}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/inject":
            self.send_error(404, "unknown POST route (try /inject)")
            return
        handler = self.server.inject_handler
        if handler is None:
            self.send_error(405, "injection is not enabled on this service")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b"{}"
            request = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(request, dict) or "action" not in request:
                raise ValueError('body must be a JSON object with an "action"')
            action = request.pop("action")
            result = handler(action, request)
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as error:
            self.send_error(400, f"bad injection: {error}")
            return
        except Exception as error:  # handler failed: loud 500, no hang
            self.send_error(500, f"injection failed: {error}")
            return
        payload = json.dumps(result, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args) -> None:  # pragma: no cover - quiet
        pass


class _StatusHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    provider: Callable[[], dict]
    inject_handler: Optional[Callable[[str, dict], dict]]


class StatusServer:
    """Serve ``/status`` + ``/metrics`` from a provider callback.

    ``provider`` returns the ``/status`` JSON dict; its ``"telemetry"``
    key (a merged registry snapshot) additionally backs ``/metrics``.
    ``inject_handler`` (``(action, params) -> dict``) enables the
    ``POST /inject`` chaos route; without one, POSTs answer 405.
    Port 0 picks an ephemeral port (read :attr:`port` back).
    """

    def __init__(
        self,
        provider: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
        inject_handler: Optional[Callable[[str, dict], dict]] = None,
    ) -> None:
        self._server = _StatusHTTPServer((host, port), _StatusHandler)
        self._server.provider = provider
        self._server.inject_handler = inject_handler
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="fleet-status-http",
            daemon=True,
        )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "StatusServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
