"""The fleet scoring service: queue -> bucket -> batched GON ascent.

Many lightweight simulation workers feed one scorer::

    worker 0 ──┐                              ┌─> reply queue 0
    worker 1 ──┤   requests    ┌───────────┐  ├─> reply queue 1
       ...     ├─────────────> │  scorer   │──┤      ...
    worker N ──┘  (one queue)  │  loop     │  └─> reply queue N
                               └───────────┘
                 drain up to a micro-batch window,
                 bucket by (model, n_hosts, gamma, steps),
                 one generate_metrics_batch / forward_batch
                 per bucket, replies routed by client id

Each request carries a whole candidate stack (a tabu neighbourhood's
cache misses); the scorer drains the request queue for a short
micro-batching window (bounded by ``max_batch_elements`` so latency
stays bounded), groups compatible requests into buckets and answers
every bucket with batched GON evaluations on the single resident model
replica -- the weights live once in shared memory instead of once per
worker.

Replies are keyed by ``(client, request)``; within a request, results
are positional in the submitted stack.  Two execution policies:

* ``merge_requests=False`` (default): each request's stack runs as its
  own vectorized ascent.  Stack shapes are then *identical* to what an
  in-process scorer would run, which keeps fleet campaign records
  bit-identical to serial execution (BLAS gemm results vary in the
  last ulp with the leading dimension, so merging cannot be bitwise).
* ``merge_requests=True``: all stacks in a bucket concatenate into one
  ascent -- maximum consolidation, scores equal to the exact path
  within ~1e-15 (see ``benchmarks/bench_surrogate.py``); decisions are
  score-argmins, so campaign results almost always still coincide,
  but the bitwise guarantee is waived.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.features import GONInput
from ..core.gon import GONDiscriminator
from ..core.surrogate import SurrogateResult, generate_metrics_batch
from ..core.training import TrainingConfig, fine_tune

__all__ = [
    "AscentRequest",
    "ConfidenceRequest",
    "ClientDone",
    "ServiceStats",
    "GONScoringService",
    "ScoringClient",
    "FleetScorer",
]


@dataclass(frozen=True)
class AscentRequest:
    """One batched eq.-1 ascent over a ``[B, n, F]`` candidate stack."""

    client_id: int
    request_id: int
    model_key: str
    metrics: np.ndarray      # [B, n, n_m_features] warm starts
    schedules: np.ndarray    # [B, n, n_s_features]
    adjacencies: np.ndarray  # [B, n, n]
    gamma: float
    max_steps: int

    @property
    def bucket(self) -> tuple:
        return (
            "ascent", self.model_key, self.metrics.shape[1],
            self.gamma, self.max_steps,
        )

    @property
    def n_elements(self) -> int:
        return int(self.metrics.shape[0])


@dataclass(frozen=True)
class ConfidenceRequest:
    """Plain ``D(M, S, G)`` forward over a sample stack (no ascent)."""

    client_id: int
    request_id: int
    model_key: str
    metrics: np.ndarray
    schedules: np.ndarray
    adjacencies: np.ndarray

    @property
    def bucket(self) -> tuple:
        return ("confidence", self.model_key, self.metrics.shape[1])

    @property
    def n_elements(self) -> int:
        return int(self.metrics.shape[0])


@dataclass(frozen=True)
class ClientDone:
    """A worker signing off; the service exits once every client has."""

    client_id: int


@dataclass(frozen=True)
class AscentReply:
    request_id: int
    metrics: np.ndarray      # [B, n, F] converged M* stack
    confidences: np.ndarray  # [B]
    n_steps: np.ndarray      # [B]
    converged: np.ndarray    # [B] bool


@dataclass(frozen=True)
class ConfidenceReply:
    request_id: int
    confidences: np.ndarray


@dataclass
class ServiceStats:
    """Scorer-side telemetry (read after :meth:`serve` returns)."""

    n_requests: int = 0
    n_elements: int = 0
    n_batches: int = 0
    #: Elements that ran in a batch merged from >= 2 requests.
    merged_elements: int = 0
    #: Per-batch element counts (the consolidation histogram).
    batch_sizes: List[int] = field(default_factory=list)


class GONScoringService:
    """Single-process scorer answering a fleet's GON evaluations.

    Parameters
    ----------
    models:
        ``model_key -> GONDiscriminator`` -- one resident replica per
        published weight set (fleet campaigns use one per scenario).
    request_queue / reply_queues:
        Any queue objects with the stdlib ``get(timeout)/put`` surface
        (``multiprocessing.Queue`` across processes, ``queue.Queue``
        in-process for tests).
    window_seconds:
        Micro-batching window: after the first request arrives, how
        long to keep draining for batch-mates before scoring.
    max_batch_elements:
        Stop draining once this many stacked elements are pending
        (keeps worst-case latency and peak memory bounded).
    merge_requests:
        Concatenate compatible stacks into one ascent per bucket (see
        module docstring for the exactness trade-off).
    """

    def __init__(
        self,
        models: Dict[str, GONDiscriminator],
        request_queue,
        reply_queues: Dict[int, object],
        window_seconds: float = 0.002,
        max_batch_elements: int = 512,
        merge_requests: bool = False,
        poll_seconds: float = 0.5,
    ) -> None:
        self.models = models
        self.request_queue = request_queue
        self.reply_queues = reply_queues
        self.window_seconds = window_seconds
        self.max_batch_elements = max_batch_elements
        self.merge_requests = merge_requests
        self.poll_seconds = poll_seconds
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    def serve(self, abort: Optional[Callable[[], bool]] = None) -> ServiceStats:
        """Score until every registered client has signed off.

        ``abort`` is polled while the queue is idle; returning True
        raises (used to detect dead workers instead of hanging).
        """
        done: set = set()
        while len(done) < len(self.reply_queues):
            try:
                message = self.request_queue.get(timeout=self.poll_seconds)
            except queue_module.Empty:
                if abort is not None and abort():
                    raise RuntimeError(
                        "scoring service aborted: worker died before "
                        "signing off"
                    )
                continue
            pending = [message]
            deadline = time.monotonic() + self.window_seconds
            while self._pending_elements(pending) < self.max_batch_elements:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    pending.append(self.request_queue.get(timeout=remaining))
                except queue_module.Empty:
                    break
            done.update(self._dispatch(pending))
        return self.stats

    @staticmethod
    def _pending_elements(pending: Sequence) -> int:
        return sum(getattr(m, "n_elements", 0) for m in pending)

    # ------------------------------------------------------------------
    def _dispatch(self, pending: Sequence) -> set:
        """Bucket the drained messages, score, reply; returns sign-offs."""
        signed_off: set = set()
        buckets: "Dict[tuple, List]" = {}
        for message in pending:
            if isinstance(message, ClientDone):
                signed_off.add(message.client_id)
                continue
            buckets.setdefault(message.bucket, []).append(message)
            self.stats.n_requests += 1
            self.stats.n_elements += message.n_elements

        for bucket_key, requests in buckets.items():
            kind = bucket_key[0]
            if self.merge_requests and len(requests) > 1:
                self._run_merged(kind, requests)
            else:
                for request in requests:
                    self._run_exact(kind, request)
        return signed_off

    def _reply(self, request, reply) -> None:
        self.reply_queues[request.client_id].put(reply)

    # -- exact policy: one evaluation per request ----------------------
    def _run_exact(self, kind: str, request) -> None:
        self.stats.n_batches += 1
        self.stats.batch_sizes.append(request.n_elements)
        model = self.models[request.model_key]
        if kind == "ascent":
            results = generate_metrics_batch(
                model,
                request.schedules,
                request.adjacencies,
                init_metrics=request.metrics,
                gamma=request.gamma,
                max_steps=request.max_steps,
            )
            self._reply(request, _ascent_reply(request.request_id, results))
        else:
            scores = model.forward_batch(
                request.metrics, request.schedules, request.adjacencies
            ).data.copy()
            self._reply(
                request, ConfidenceReply(request.request_id, scores)
            )

    # -- merged policy: one evaluation per bucket ----------------------
    def _run_merged(self, kind: str, requests: List) -> None:
        self.stats.n_batches += 1
        model = self.models[requests[0].model_key]
        metrics = np.concatenate([r.metrics for r in requests])
        schedules = np.concatenate([r.schedules for r in requests])
        adjacencies = np.concatenate([r.adjacencies for r in requests])
        self.stats.batch_sizes.append(int(metrics.shape[0]))
        self.stats.merged_elements += int(metrics.shape[0])
        if kind == "ascent":
            results = generate_metrics_batch(
                model,
                schedules,
                adjacencies,
                init_metrics=metrics,
                gamma=requests[0].gamma,
                max_steps=requests[0].max_steps,
            )
            start = 0
            for request in requests:
                chunk = results[start:start + request.n_elements]
                start += request.n_elements
                self._reply(request, _ascent_reply(request.request_id, chunk))
        else:
            scores = model.forward_batch(
                metrics, schedules, adjacencies
            ).data.copy()
            start = 0
            for request in requests:
                chunk = scores[start:start + request.n_elements]
                start += request.n_elements
                self._reply(
                    request, ConfidenceReply(request.request_id, chunk)
                )


def _ascent_reply(
    request_id: int, results: Sequence[SurrogateResult]
) -> AscentReply:
    return AscentReply(
        request_id=request_id,
        metrics=np.stack([r.metrics for r in results]),
        confidences=np.array([r.confidence for r in results]),
        n_steps=np.array([r.n_steps for r in results], dtype=int),
        converged=np.array([r.converged for r in results], dtype=bool),
    )


class ScoringClient:
    """Worker-side stub: submit stacks, block for the keyed reply."""

    def __init__(self, client_id: int, model_key: str,
                 request_queue, reply_queue) -> None:
        self.client_id = client_id
        self.model_key = model_key
        self.request_queue = request_queue
        self.reply_queue = reply_queue
        self._next_request = 0

    def _round_trip(self, request):
        self.request_queue.put(request)
        reply = self.reply_queue.get()
        if reply.request_id != request.request_id:  # pragma: no cover
            raise RuntimeError(
                f"reply {reply.request_id} for request "
                f"{request.request_id}: client protocol violated"
            )
        return reply

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
    ) -> List[SurrogateResult]:
        self._next_request += 1
        reply = self._round_trip(AscentRequest(
            client_id=self.client_id,
            request_id=self._next_request,
            model_key=self.model_key,
            metrics=np.asarray(metrics, dtype=float),
            schedules=np.asarray(schedules, dtype=float),
            adjacencies=np.asarray(adjacencies, dtype=float),
            gamma=gamma,
            max_steps=max_steps,
        ))
        return [
            SurrogateResult(
                metrics=reply.metrics[i],
                confidence=float(reply.confidences[i]),
                n_steps=int(reply.n_steps[i]),
                converged=bool(reply.converged[i]),
            )
            for i in range(reply.metrics.shape[0])
        ]

    def confidences(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
    ) -> np.ndarray:
        self._next_request += 1
        reply = self._round_trip(ConfidenceRequest(
            client_id=self.client_id,
            request_id=self._next_request,
            model_key=self.model_key,
            metrics=np.asarray(metrics, dtype=float),
            schedules=np.asarray(schedules, dtype=float),
            adjacencies=np.asarray(adjacencies, dtype=float),
        ))
        return reply.confidences

    def close(self) -> None:
        """Sign off; the service exits once every client has."""
        self.request_queue.put(ClientDone(self.client_id))


class FleetScorer:
    """CAROL scorer routing ascents to the shared scoring service.

    Implements the :class:`repro.core.scoring.SurrogateScorer` surface:

    * **ascent** -- forwarded to the service while this replica still
      equals the published generation-0 weights, so concurrent
      federations consolidate into one batched GON stream;
    * **confidence** -- computed locally on the zero-copy shared
      weight views (a single forward; cheaper than a queue round-trip
      and bitwise-identical to in-process execution);
    * **fine_tune** -- copy-on-write divergence: the read-only shared
      parameters are materialised into private writable arrays, the
      fine-tune runs locally, and every later evaluation stays local
      (the replica no longer matches the fleet's published weights).
    """

    def __init__(self, client: ScoringClient, model: GONDiscriminator) -> None:
        self.client = client
        self.model = model
        self.generation = 0

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
    ) -> List[SurrogateResult]:
        if self.generation == 0:
            return self.client.ascent(
                metrics, schedules, adjacencies, gamma, max_steps
            )
        return generate_metrics_batch(
            self.model,
            schedules,
            adjacencies,
            init_metrics=metrics,
            gamma=gamma,
            max_steps=max_steps,
        )

    def confidence(self, sample: GONInput) -> float:
        return self.model.score(sample)

    def fine_tune(
        self,
        samples: Sequence[GONInput],
        config: Optional[TrainingConfig],
        iterations: int,
        rng: np.random.Generator,
    ) -> float:
        if self.generation == 0:
            # Copy-on-write: shared views are read-only by design.
            for parameter in self.model.parameters():
                parameter.data = np.array(parameter.data)
        loss = fine_tune(
            self.model,
            list(samples),
            config=config,
            iterations=iterations,
            rng=rng,
        )
        self.generation += 1
        return loss
